"""Closed-form sequences: the value domain of generalized induction variables.

The paper represents a polynomial induction variable for loop ``l`` as a
tuple ``(l, s0, s1, ..., sm)`` whose value on iteration ``h`` (0-based basic
loop counter) is ``sum_k s_k * h**k``, and a geometric induction variable by
"the polynomial coefficients followed by the coefficients of each exponential
term": ``sum_k s_k * h**k + sum_b g_b * b**h`` (section 4.3).

:class:`ClosedForm` implements exactly that shape, with symbolic
(:class:`~repro.symbolic.expr.Expr`) coefficients and integer geometric
bases.  The module also implements the paper's coefficient-recovery method --
build the small integer matrix of basis functions evaluated at
``h = 0, 1, ..., n-1``, invert it with exact rational arithmetic, and
multiply by the first ``n`` (symbolically computed) values -- plus the
affine-recurrence solver the classifier uses for SCRs whose cumulative
effect is ``x <- a*x + d(h)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import metrics as _metrics
from repro.resilience.budget import matrix_dim_allowed
from repro.resilience.faultinject import fault_point
from repro.symbolic.expr import Expr, Rat
from repro.symbolic.rational import Matrix, MatrixError


class ClosedFormError(Exception):
    """Raised when a requested closed form cannot be represented."""


def _as_expr(value: Union[Expr, Rat]) -> Expr:
    if isinstance(value, Expr):
        return value
    return Expr.const(value)


_EXPR_ONE = Expr.const(1)


class ClosedForm:
    """``value(h) = sum_k coeffs[k] * h**k + sum_b geo[b] * b**h``.

    ``coeffs`` is a tuple of :class:`Expr` (index = power of ``h``); ``geo``
    maps an integer base ``b`` (with ``b not in (0, 1)``) to its coefficient.
    Instances are immutable and normalized (no trailing zero coefficients,
    no zero geometric terms), so structural equality is semantic equality.
    """

    __slots__ = ("coeffs", "geo")

    def __init__(
        self,
        coeffs: Sequence[Union[Expr, Rat]] = (),
        geo: Optional[Mapping[int, Union[Expr, Rat]]] = None,
    ):
        poly = [_as_expr(c) for c in coeffs]
        while poly and poly[-1].is_zero:
            poly.pop()
        geo_clean: Dict[int, Expr] = {}
        if geo:
            for base, coeff in geo.items():
                if not isinstance(base, int):
                    raise ClosedFormError("geometric base must be an int")
                if base in (0, 1):
                    raise ClosedFormError("geometric base must not be 0 or 1")
                expr = _as_expr(coeff)
                if not expr.is_zero:
                    geo_clean[base] = expr
        self.coeffs: Tuple[Expr, ...] = tuple(poly)
        self.geo: Dict[int, Expr] = geo_clean

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, coeffs: Tuple[Expr, ...], geo: Dict[int, Expr]) -> "ClosedForm":
        """Internal constructor for operands already validated/normalized."""
        form = cls.__new__(cls)
        form.coeffs = coeffs
        form.geo = geo
        return form

    @staticmethod
    def invariant(value: Union[Expr, Rat]) -> "ClosedForm":
        """A sequence that is the same value on every iteration."""
        expr = _as_expr(value)
        if expr.is_zero:
            return ClosedForm._raw((), {})
        return ClosedForm._raw((expr,), {})

    @staticmethod
    def linear(init: Union[Expr, Rat], step: Union[Expr, Rat]) -> "ClosedForm":
        """``init + step*h``: the classical linear induction variable."""
        return ClosedForm([_as_expr(init), _as_expr(step)])

    @staticmethod
    def counter() -> "ClosedForm":
        """The basic loop counter ``h`` itself (initial value 0, step 1)."""
        return ClosedForm.linear(0, 1)

    @staticmethod
    def zero() -> "ClosedForm":
        return ClosedForm()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def is_invariant(self) -> bool:
        return not self.geo and len(self.coeffs) <= 1

    @property
    def is_zero(self) -> bool:
        return not self.coeffs and not self.geo

    @property
    def is_polynomial(self) -> bool:
        return not self.geo

    @property
    def is_linear(self) -> bool:
        return not self.geo and len(self.coeffs) <= 2

    @property
    def degree(self) -> int:
        """Polynomial degree (0 for invariants and pure-geometric forms)."""
        return max(0, len(self.coeffs) - 1)

    @property
    def init(self) -> Expr:
        """Value on iteration ``h = 0``."""
        total = self.coeff(0)
        for coeff in self.geo.values():
            total = total + coeff
        return total

    @property
    def step(self) -> Expr:
        """Step of a linear form; raises for non-linear forms."""
        if not self.is_linear:
            raise ClosedFormError(f"{self} is not linear; it has no single step")
        return self.coeff(1)

    def coeff(self, power: int) -> Expr:
        if 0 <= power < len(self.coeffs):
            return self.coeffs[power]
        return Expr.zero()

    def free_symbols(self) -> frozenset:
        syms = set()
        for coeff in self.coeffs:
            syms |= coeff.free_symbols()
        for coeff in self.geo.values():
            syms |= coeff.free_symbols()
        return frozenset(syms)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def value_at(self, h: Union[int, Expr]) -> Expr:
        """The symbolic value on iteration ``h``.

        ``h`` may be an integer or a symbolic Expr; geometric terms require
        an integer ``h`` (``b**h`` is not polynomial in ``h``).
        """
        if isinstance(h, int):
            if h < 0:
                raise ClosedFormError("iteration number must be non-negative")
            total = Expr.zero()
            for k, coeff in enumerate(self.coeffs):
                total = total + coeff * (Fraction(h) ** k if k else 1)
            for base, coeff in self.geo.items():
                total = total + coeff * (Fraction(base) ** h)
            return total
        if self.geo:
            raise ClosedFormError("cannot evaluate geometric terms at a symbolic iteration")
        h_expr = _as_expr(h)
        total = Expr.zero()
        for k, coeff in enumerate(self.coeffs):
            total = total + coeff * (h_expr**k)
        return total

    def evaluate(self, h: int, env: Mapping[str, Rat]) -> Fraction:
        """Fully numeric evaluation at iteration ``h`` under ``env``."""
        return self.value_at(h).evaluate(env)

    def substitute(self, mapping: Mapping[str, Expr]) -> "ClosedForm":
        """Substitute into every coefficient.

        The substituted expressions must be invariant in the loop this form
        describes (the caller's responsibility, as in the paper's
        outer-to-inner substitution pass).
        """
        return ClosedForm(
            [c.substitute(mapping) for c in self.coeffs],
            {b: c.substitute(mapping) for b, c in self.geo.items()},
        )

    # ------------------------------------------------------------------
    # arithmetic (closed under +, -, scaling; partially under *)
    # ------------------------------------------------------------------
    def __add__(self, other: "ClosedForm") -> "ClosedForm":
        if not isinstance(other, ClosedForm):
            return NotImplemented
        if not other.coeffs and not other.geo:
            return self
        if not self.coeffs and not self.geo:
            return other
        n = max(len(self.coeffs), len(other.coeffs))
        coeffs = [self.coeff(k) + other.coeff(k) for k in range(n)]
        while coeffs and coeffs[-1].is_zero:
            coeffs.pop()
        geo = dict(self.geo)
        for base, coeff in other.geo.items():
            merged = coeff if base not in geo else geo[base] + coeff
            if merged.is_zero:
                geo.pop(base, None)
            else:
                geo[base] = merged
        return ClosedForm._raw(tuple(coeffs), geo)

    def __neg__(self) -> "ClosedForm":
        return ClosedForm([-c for c in self.coeffs], {b: -c for b, c in self.geo.items()})

    def __sub__(self, other: "ClosedForm") -> "ClosedForm":
        if not isinstance(other, ClosedForm):
            return NotImplemented
        return self + (-other)

    def scale(self, factor: Union[Expr, Rat]) -> "ClosedForm":
        f = _as_expr(factor)
        if f == _EXPR_ONE or (not self.coeffs and not self.geo):
            return self
        if f.is_zero:
            return ClosedForm()
        # a product of nonzero Exprs is nonzero (polynomials over Q), so
        # scaling normalized coefficients needs no re-normalization
        return ClosedForm._raw(
            tuple(c * f for c in self.coeffs),
            {b: c * f for b, c in self.geo.items()},
        )

    def try_mul(self, other: "ClosedForm") -> Optional["ClosedForm"]:
        """Product, if representable in the ``poly + geo`` form.

        * poly x poly: polynomial (coefficients convolve).
        * geo x geo: bases multiply pairwise (``b**h * c**h = (bc)**h``).
        * poly(degree 0) x geo and vice versa: scaling.
        * poly(degree >= 1) x geo: would need ``h**k * b**h`` terms, which the
          paper's representation cannot express -- returns ``None`` (the
          classifier then tries the monotonic rules, per section 5.1).
        """
        self_has_poly = any(not c.is_zero for c in self.coeffs[1:])
        other_has_poly = any(not c.is_zero for c in other.coeffs[1:])
        if (self_has_poly and other.geo) or (other_has_poly and self.geo):
            return None
        # polynomial part product
        coeffs: List[Expr] = []
        if self.coeffs and other.coeffs:
            coeffs = [Expr.zero()] * (len(self.coeffs) + len(other.coeffs) - 1)
            for i, a in enumerate(self.coeffs):
                for j, b in enumerate(other.coeffs):
                    coeffs[i + j] = coeffs[i + j] + a * b
        geo: Dict[int, Expr] = {}

        def _accumulate_geo(base: int, coeff: Expr) -> bool:
            if base in (0, 1):
                return False
            geo[base] = geo.get(base, Expr.zero()) + coeff
            return True

        # const-poly x geo cross terms
        for base, coeff in other.geo.items():
            if not _accumulate_geo(base, coeff * self.coeff(0)):
                return None
        for base, coeff in self.geo.items():
            if not _accumulate_geo(base, coeff * other.coeff(0)):
                return None
        # geo x geo
        for b1, c1 in self.geo.items():
            for b2, c2 in other.geo.items():
                if not _accumulate_geo(b1 * b2, c1 * c2):
                    return None
        return ClosedForm(coeffs, geo)

    def shift(self, offset: int) -> "ClosedForm":
        """The sequence ``h -> value(h + offset)``.

        Used for wrap-around variables ("in all but the first iteration, its
        value will be an induction variable", section 4.1): the wrapped inner
        sequence is the carried value delayed by one iteration.
        """
        # polynomial part: binomial expansion of (h + offset)**k
        n = len(self.coeffs)
        coeffs = [Expr.zero()] * n
        for k, coeff in enumerate(self.coeffs):
            # (h + offset)**k = sum_j C(k, j) * offset**(k-j) * h**j
            for j in range(k + 1):
                binom = _binomial(k, j)
                coeffs[j] = coeffs[j] + coeff * (binom * Fraction(offset) ** (k - j))
        geo = {base: coeff * (Fraction(base) ** offset) for base, coeff in self.geo.items()}
        return ClosedForm(coeffs, geo)

    def prefix_sum(self) -> Optional["ClosedForm"]:
        """``S(h) = sum_{t=0}^{h-1} value(t)`` with ``S(0) = 0``.

        This solves the pure accumulation recurrence ``x_{h+1} = x_h + d(h)``
        that produces polynomial induction variables of the next higher
        order (section 4.3).  The polynomial part is fitted with the paper's
        matrix-inversion method; geometric terms sum analytically as
        ``g * (b**h - 1) / (b - 1)``.

        Returns ``None`` when the polynomial fit degrades (singular or
        over-budget coefficient system); the classifier then falls back to
        the monotonic/unknown rules.
        """
        poly_part = ClosedForm(self.coeffs)
        degree = poly_part.degree if poly_part.coeffs else 0
        result = ClosedForm.zero()
        if poly_part.coeffs:
            # S is a polynomial of degree (degree + 1); fit from values.
            npoints = degree + 2
            values: List[Expr] = []
            acc = Expr.zero()
            for h in range(npoints):
                values.append(acc)
                acc = acc + poly_part.value_at(h)
            fitted = ClosedForm.fit_polynomial(values)
            if fitted is None:
                return None
            result = result + fitted
        for base, coeff in self.geo.items():
            scale = Fraction(1, base - 1)
            # sum_{t<h} b**t = (b**h - 1)/(b - 1)
            result = result + ClosedForm([coeff * (-scale)], {base: coeff * scale})
        return result

    # ------------------------------------------------------------------
    # coefficient recovery (the paper's section 4.3 machinery)
    # ------------------------------------------------------------------
    @staticmethod
    def fit_polynomial(values: Sequence[Union[Expr, Rat]]) -> Optional["ClosedForm"]:
        """Fit a degree ``len(values)-1`` polynomial through
        ``value(h) = values[h]`` for ``h = 0 .. n-1``.

        This is precisely the paper's method: invert the integer matrix
        ``a[i][j] = i**j`` and multiply by the first values.

        Returns ``None`` (and counts ``closedform.degraded``) instead of
        raising when the system cannot be solved: the matrix is singular
        or larger than the active budget's ``max_matrix_dim``.  Callers
        fall back to monotonic/unknown classification.
        """
        fault_point("closedform.fit")
        vals = [_as_expr(v) for v in values]
        if not vals:
            raise ClosedFormError("cannot fit a polynomial through no values")
        n = len(vals)
        if not matrix_dim_allowed(n):
            _metrics.inc("closedform.degraded")
            return None
        try:
            inverse = Matrix.vandermonde(range(n), n - 1).inverse()
        except MatrixError:
            _metrics.inc("closedform.degraded")
            return None
        _metrics.inc("closedform.matrix_inversions")
        coeffs = _mat_mul_exprs(inverse, vals)
        return ClosedForm(coeffs)

    @staticmethod
    def fit(
        values: Sequence[Union[Expr, Rat]],
        degree: int,
        bases: Sequence[int],
    ) -> Optional["ClosedForm"]:
        """Fit ``sum_{k<=degree} s_k h**k + sum_b g_b b**h`` through values.

        ``len(values)`` must equal ``degree + 1 + len(bases)``.  Returns
        ``None`` if the basis matrix is singular on the sample points or
        exceeds the active budget's ``max_matrix_dim``.
        """
        fault_point("closedform.fit")
        vals = [_as_expr(v) for v in values]
        nbases = list(bases)
        n = degree + 1 + len(nbases)
        if len(vals) != n:
            raise ClosedFormError("wrong number of sample values for fit")
        if any(b in (0, 1) for b in nbases):
            raise ClosedFormError("geometric base must not be 0 or 1")
        if len(set(nbases)) != len(nbases):
            raise ClosedFormError("duplicate geometric bases")
        if not matrix_dim_allowed(n):
            _metrics.inc("closedform.degraded")
            return None
        rows = []
        for h in range(n):
            row: List[Fraction] = [Fraction(h) ** k for k in range(degree + 1)]
            row.extend(Fraction(b) ** h for b in nbases)
            rows.append(row)
        try:
            inverse = Matrix(rows).inverse()
        except MatrixError:
            _metrics.inc("closedform.degraded")
            return None
        _metrics.inc("closedform.matrix_inversions")
        solution = _mat_mul_exprs(inverse, vals)
        coeffs = solution[: degree + 1]
        geo = {base: solution[degree + 1 + i] for i, base in enumerate(nbases)}
        return ClosedForm(coeffs, geo)

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClosedForm):
            return NotImplemented
        return self.coeffs == other.coeffs and self.geo == other.geo

    def __hash__(self) -> int:
        return hash((self.coeffs, frozenset(self.geo.items())))

    def __repr__(self) -> str:
        return f"ClosedForm({self})"

    def __str__(self) -> str:
        parts = []
        for k, coeff in enumerate(self.coeffs):
            if coeff.is_zero:
                continue
            if k == 0:
                parts.append(str(coeff))
            else:
                h = "h" if k == 1 else f"h^{k}"
                text = str(coeff)
                if coeff == 1:
                    parts.append(h)
                elif coeff == -1:
                    parts.append(f"-{h}")
                elif coeff.is_constant or len(coeff.terms()) == 1:
                    parts.append(f"{text}*{h}")
                else:
                    parts.append(f"({text})*{h}")
        for base in sorted(self.geo):
            coeff = self.geo[base]
            text = str(coeff)
            b = f"{base}^h" if base >= 0 else f"({base})^h"
            if coeff == 1:
                parts.append(b)
            elif coeff == -1:
                parts.append(f"-{b}")
            elif coeff.is_constant or len(coeff.terms()) == 1:
                parts.append(f"{text}*{b}")
            else:
                parts.append(f"({text})*{b}")
        if not parts:
            return "0"
        return " + ".join(parts).replace("+ -", "- ")


def _binomial(n: int, k: int) -> int:
    if k < 0 or k > n:
        return 0
    result = 1
    for i in range(min(k, n - k)):
        result = result * (n - i) // (i + 1)
    return result


def _mat_mul_exprs(matrix: Matrix, values: Sequence[Expr]) -> List[Expr]:
    """Multiply a rational matrix by a vector of symbolic expressions."""
    out: List[Expr] = []
    for i in range(matrix.rows):
        acc = Expr.zero()
        for j in range(matrix.ncols):
            entry = matrix[i, j]
            if entry != 0:
                acc = acc + values[j] * entry
        out.append(acc)
    return out


def solve_affine_recurrence(
    multiplier: int,
    addend: ClosedForm,
    init: Union[Expr, Rat],
) -> Optional[ClosedForm]:
    """Solve ``x_{h+1} = multiplier * x_h + addend(h)`` with ``x_0 = init``.

    Returns the closed form of ``x_h``, or ``None`` when the solution does
    not fit the ``poly + geo`` representation (e.g. resonance between the
    multiplier and one of the addend's geometric bases, which would need an
    ``h * b**h`` term).

    * ``multiplier == 1``: pure accumulation; the order rises by one
      (section 4.3's polynomial rule).
    * ``multiplier == -1`` with an invariant addend is the paper's flip-flop
      case; the closed form here is geometric with base -1, and the
      classifier reports it as periodic with period two.
    * other integer multipliers: geometric induction variables, solved with
      the paper's matrix method (polynomial terms up to ``deg(addend) + 1``
      plus one exponential term per base -- the paper's L14 ``m`` example
      conservatively includes a quadratic term and discovers its coefficient
      is zero; we reproduce exactly that).
    """
    fault_point("closedform.recurrence")
    x0 = _as_expr(init)
    if multiplier == 1:
        summed = addend.prefix_sum()
        if summed is None:
            return None
        return ClosedForm.invariant(x0) + summed
    if multiplier == 0:
        return None
    bases = set(addend.geo)
    if multiplier in bases or multiplier in (0, 1):
        return None
    bases.add(multiplier)
    degree = (addend.degree if addend.coeffs else 0) + 1
    nbases = sorted(bases)
    n = degree + 1 + len(nbases)
    values: List[Expr] = []
    x = x0
    for h in range(n):
        values.append(x)
        x = x * multiplier + addend.value_at(h)
    fitted = ClosedForm.fit(values, degree, nbases)
    if fitted is None:
        return None
    # Validate the fit against one further iterate; the basis functions are
    # linearly independent on all naturals only if this holds (guards against
    # an accidental fit through the sample points).
    if fitted.value_at(n) != x:
        return None
    return fitted
