"""Symbolic polynomial expressions.

Initial values and steps of induction variables are "represented symbolically
if [they] cannot be determined" (paper, section 2).  The symbolic domain used
throughout this reproduction is the ring of multivariate polynomials over
named symbols (SSA value names) with exact rational coefficients.  That is
rich enough for everything the paper does -- linear combinations of invariant
names for linear IVs, rational coefficients from matrix inversion for
polynomial IVs, products for triangular trip counts -- while staying exact.

An :class:`Expr` is immutable and hashable; all operators return new values.
Division is only supported when exact (by a rational constant, or by an
expression that divides every term); anything else must be handled by the
caller (the classifier falls back to ``unknown`` in that case, as the paper's
algebra of types does).

Because expressions are immutable, the hot constructors are **hash-consed**
(zero, one, small integer constants, and single symbols are interned) and
the hot queries are **memoized**: ``free_symbols()`` is computed once per
instance, and ``substitute`` results are cached globally keyed on the
(expression, relevant bindings) pair.  Interning and memoization are
semantically invisible -- they can be switched off with
:func:`set_memoization` (the equivalence tests do exactly that).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.resilience import budget as _budget

Rat = Union[int, Fraction]
# A monomial is a sorted tuple of (symbol, exponent) pairs with exponent >= 1.
Monomial = Tuple[Tuple[str, int], ...]

_ONE_MONO: Monomial = ()


class ExprError(Exception):
    """Raised for unsupported symbolic operations (inexact division, ...)."""


_FRACTION_CACHE: Dict[int, Fraction] = {n: Fraction(n) for n in range(-64, 65)}


def _as_fraction(value: Rat) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        cached = _FRACTION_CACHE.get(value)
        return cached if cached is not None else Fraction(value)
    raise ExprError(f"expected int or Fraction, got {type(value).__name__}")


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: Dict[str, int] = dict(a)
    for sym, exp in b:
        powers[sym] = powers.get(sym, 0) + exp
    return tuple(sorted((s, e) for s, e in powers.items() if e != 0))


def _mono_degree(mono: Monomial) -> int:
    return sum(exp for _, exp in mono)


class Expr:
    """An immutable multivariate polynomial with Fraction coefficients."""

    __slots__ = ("_terms", "_hash", "_free")

    def __init__(self, terms: Optional[Mapping[Monomial, Rat]] = None):
        clean: Dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                frac = _as_fraction(coeff)
                if frac != 0:
                    clean[mono] = frac
        self._terms = clean
        self._hash: Optional[int] = None
        self._free: Optional[frozenset] = None

    @classmethod
    def _raw(cls, terms: Dict[Monomial, Fraction]) -> "Expr":
        """Internal fast constructor: ``terms`` must already be a fresh dict
        of nonzero Fraction coefficients (no validation, no copy)."""
        expr = cls.__new__(cls)
        expr._terms = terms
        expr._hash = None
        expr._free = None
        return expr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def const(value: Rat) -> "Expr":
        """A constant expression."""
        if _MEMO_ENABLED and isinstance(value, int):
            cached = _CONST_CACHE.get(value)
            if cached is not None:
                _STATS["const_hits"] += 1
                return cached
            _STATS["const_misses"] += 1
        return Expr({_ONE_MONO: _as_fraction(value)})

    @staticmethod
    def sym(name: str) -> "Expr":
        """A single symbol (an SSA value name, usually)."""
        if not name:
            raise ExprError("symbol name must be non-empty")
        if _MEMO_ENABLED:
            cached = _SYM_CACHE.get(name)
            if cached is not None:
                _STATS["sym_hits"] += 1
                return cached
            _STATS["sym_misses"] += 1
            if len(_SYM_CACHE) >= _CACHE_LIMIT:
                _SYM_CACHE.clear()
            expr = Expr({((name, 1),): Fraction(1)})
            _SYM_CACHE[name] = expr
            return expr
        return Expr({((name, 1),): Fraction(1)})

    @staticmethod
    def zero() -> "Expr":
        if _MEMO_ENABLED:
            return _ZERO
        return Expr()

    @staticmethod
    def one() -> "Expr":
        return Expr.const(1)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        return not self._terms

    @property
    def is_constant(self) -> bool:
        return all(mono == _ONE_MONO for mono in self._terms)

    def constant_value(self) -> Fraction:
        """The value of a constant expression; raises if symbolic."""
        if not self.is_constant:
            raise ExprError(f"{self} is not constant")
        return self._terms.get(_ONE_MONO, _F0)

    def constant_term(self) -> Fraction:
        """The coefficient of the constant monomial (0 if absent)."""
        return self._terms.get(_ONE_MONO, _F0)

    def as_int(self) -> int:
        """The value of an integer constant expression; raises otherwise."""
        value = self.constant_value()
        if value.denominator != 1:
            raise ExprError(f"{self} is not an integer")
        return value.numerator

    def free_symbols(self) -> frozenset:
        if self._free is None:
            syms = set()
            for mono in self._terms:
                for name, _ in mono:
                    syms.add(name)
            self._free = frozenset(syms)
        return self._free

    def degree(self) -> int:
        """Total degree (0 for constants, including zero)."""
        if not self._terms:
            return 0
        return max(_mono_degree(m) for m in self._terms)

    def degree_in(self, name: str) -> int:
        """Degree in one particular symbol."""
        best = 0
        for mono in self._terms:
            for sym, exp in mono:
                if sym == name:
                    best = max(best, exp)
        return best

    def coefficient(self, name: str, power: int) -> "Expr":
        """The coefficient (an Expr in the remaining symbols) of ``name**power``."""
        if power < 0:
            raise ExprError("power must be non-negative")
        out: Dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            exp_here = 0
            rest = []
            for sym, exp in mono:
                if sym == name:
                    exp_here = exp
                else:
                    rest.append((sym, exp))
            if exp_here == power:
                out[tuple(rest)] = out.get(tuple(rest), Fraction(0)) + coeff
        return Expr(out)

    def as_affine(self) -> Optional[Tuple[Fraction, Dict[str, Fraction]]]:
        """Decompose as ``c0 + sum coeff[s]*s`` if total degree <= 1.

        Returns ``None`` for non-affine expressions.  This is what dependence
        testing consumes (subscripts must be linear combinations of IVs).
        """
        const = Fraction(0)
        coeffs: Dict[str, Fraction] = {}
        for mono, coeff in self._terms.items():
            if mono == _ONE_MONO:
                const = coeff
            elif len(mono) == 1 and mono[0][1] == 1:
                coeffs[mono[0][0]] = coeff
            else:
                return None
        return const, coeffs

    def terms(self) -> Dict[Monomial, Fraction]:
        """A copy of the internal monomial -> coefficient map."""
        return dict(self._terms)

    def iter_terms(self):
        """Iterate ``(monomial, coefficient)`` pairs without copying.

        The hot-path companion of :meth:`terms` -- the returned view must
        not be mutated and must not outlive the expression.
        """
        return self._terms.items()

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Expr", Rat]) -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, (int, Fraction)):
            return Expr.const(other)
        raise ExprError(f"cannot combine Expr with {type(other).__name__}")

    def __add__(self, other: Union["Expr", Rat]) -> "Expr":
        rhs = self._coerce(other)
        if not rhs._terms:
            return self
        if not self._terms:
            return rhs
        out = dict(self._terms)
        for mono, coeff in rhs._terms.items():
            total = out.get(mono, _F0) + coeff
            if total:
                out[mono] = total
            elif mono in out:
                del out[mono]
        return Expr._raw(out)

    __radd__ = __add__

    def __neg__(self) -> "Expr":
        return Expr._raw({mono: -coeff for mono, coeff in self._terms.items()})

    def __sub__(self, other: Union["Expr", Rat]) -> "Expr":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Union["Expr", Rat]) -> "Expr":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Union["Expr", Rat]) -> "Expr":
        rhs = self._coerce(other)
        if not self._terms or not rhs._terms:
            return Expr.zero()
        if rhs._terms == _ONE_TERMS:
            return self
        if self._terms == _ONE_TERMS:
            return rhs
        # scaling by a nonzero constant never cancels terms
        if len(rhs._terms) == 1:
            ((rmono, rcoeff),) = rhs._terms.items()
            if not rmono:
                return Expr._raw({m: c * rcoeff for m, c in self._terms.items()})
        if len(self._terms) == 1:
            ((smono, scoeff),) = self._terms.items()
            if not smono:
                return Expr._raw({m: c * scoeff for m, c in rhs._terms.items()})
        out: Dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in rhs._terms.items():
                mono = _mono_mul(m1, m2)
                total = out.get(mono, _F0) + c1 * c2
                if total:
                    out[mono] = total
                elif mono in out:
                    del out[mono]
        if _budget._EXPR_TERM_CAP is not None:
            _budget.charge_expr_terms(len(out))
        return Expr._raw(out)

    __rmul__ = __mul__

    def __pow__(self, power: int) -> "Expr":
        if not isinstance(power, int) or power < 0:
            raise ExprError("Expr exponent must be a non-negative int")
        if power == 0:
            return Expr.one()
        if power == 1:
            return self
        result = Expr.one()
        base = self
        n = power
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    def __truediv__(self, other: Union["Expr", Rat]) -> "Expr":
        rhs = self._coerce(other)
        if rhs.is_zero:
            raise ExprError("division by zero")
        if rhs.is_constant:
            value = rhs.constant_value()
            return Expr({mono: coeff / value for mono, coeff in self._terms.items()})
        quotient = self.try_div(rhs)
        if quotient is None:
            raise ExprError(f"inexact symbolic division: ({self}) / ({rhs})")
        return quotient

    def try_div(self, divisor: "Expr") -> Optional["Expr"]:
        """Exact polynomial division; ``None`` if the division is inexact.

        Only single-term (monomial) divisors and trial multiplication are
        attempted -- enough for the classifier's needs (e.g. dividing a step
        expression by a constant or a single invariant symbol).
        """
        if divisor.is_zero:
            return None
        if divisor.is_constant:
            return self / divisor.constant_value()
        if len(divisor._terms) == 1:
            (dmono, dcoeff), = divisor._terms.items()
            out: Dict[Monomial, Fraction] = {}
            for mono, coeff in self._terms.items():
                powers = dict(mono)
                for sym, exp in dmono:
                    if powers.get(sym, 0) < exp:
                        return None
                    powers[sym] -= exp
                new_mono = tuple(sorted((s, e) for s, e in powers.items() if e != 0))
                out[new_mono] = out.get(new_mono, Fraction(0)) + coeff / dcoeff
            return Expr(out)
        return None

    # ------------------------------------------------------------------
    # substitution / evaluation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Replace symbols by expressions (simultaneous substitution)."""
        if not mapping:
            return self
        relevant = self.free_symbols() & set(mapping)
        if not relevant:
            return self
        key = None
        if _MEMO_ENABLED:
            key = (self, tuple((sym, mapping[sym]) for sym in sorted(relevant)))
            cached = _SUBST_CACHE.get(key)
            if cached is not None:
                _STATS["subst_hits"] += 1
                return cached
            _STATS["subst_misses"] += 1
        result = Expr.zero()
        for mono, coeff in self._terms.items():
            term = Expr.const(coeff)
            for sym, exp in mono:
                base = mapping.get(sym)
                if base is None:
                    base = Expr.sym(sym)
                term = term * (base**exp)
            result = result + term
        if _budget._EXPR_TERM_CAP is not None:
            _budget.charge_expr_terms(len(result._terms))
        if key is not None:
            if len(_SUBST_CACHE) >= _CACHE_LIMIT:
                _SUBST_CACHE.clear()
            _SUBST_CACHE[key] = result
        return result

    def evaluate(self, env: Mapping[str, Rat]) -> Fraction:
        """Numeric evaluation; every free symbol must be bound in ``env``."""
        total = Fraction(0)
        for mono, coeff in self._terms.items():
            value = coeff
            for sym, exp in mono:
                if sym not in env:
                    raise ExprError(f"unbound symbol {sym!r} in evaluation")
                value *= _as_fraction(env[sym]) ** exp
            total += value
        return total

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        """Rename symbols (a cheap special case of substitute)."""
        out: Dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            new_mono = tuple(sorted((mapping.get(s, s), e) for s, e in mono))
            out[new_mono] = out.get(new_mono, Fraction(0)) + coeff
        return Expr(out)

    # ------------------------------------------------------------------
    # sign reasoning (constants only; conservative elsewhere)
    # ------------------------------------------------------------------
    def known_sign(self) -> Optional[int]:
        """-1, 0 or 1 if the sign is provable; ``None`` otherwise.

        Only constants have a provable sign in this conservative kernel;
        monotonic classification uses this and simply gives up on symbolic
        steps, exactly as a production compiler would without range info.
        """
        if self.is_zero:
            return 0
        if self.is_constant:
            value = self.constant_value()
            return -1 if value < 0 else 1
        return None

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            return self.is_constant and self.constant_value() == other
        if not isinstance(other, Expr):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __bool__(self) -> bool:
        return not self.is_zero

    def __repr__(self) -> str:
        return f"Expr({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in sorted(self._terms.items(), key=lambda kv: (_mono_degree(kv[0]), kv[0])):
            factors = []
            if mono == _ONE_MONO:
                factors.append(str(coeff))
            else:
                if coeff == -1:
                    factors.append("-")
                elif coeff != 1:
                    factors.append(str(coeff) + "*")
                factors.append(
                    "*".join(sym if exp == 1 else f"{sym}^{exp}" for sym, exp in mono)
                )
            parts.append("".join(factors))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


# ----------------------------------------------------------------------
# hash-consing / memoization state
# ----------------------------------------------------------------------
_F0 = Fraction(0)
_ONE_TERMS: Dict[Monomial, Fraction] = {_ONE_MONO: Fraction(1)}

_MEMO_ENABLED = True
_CACHE_LIMIT = 4096

_ZERO = Expr()
_CONST_CACHE: Dict[int, Expr] = {
    n: Expr({_ONE_MONO: Fraction(n)}) for n in range(-64, 65) if n != 0
}
_SYM_CACHE: Dict[str, Expr] = {}
_SUBST_CACHE: Dict[tuple, Expr] = {}

#: hit/miss tallies of the memo tables above, served by :func:`cache_stats`
_STATS: Dict[str, int] = {
    "sym_hits": 0,
    "sym_misses": 0,
    "subst_hits": 0,
    "subst_misses": 0,
    "const_hits": 0,
    "const_misses": 0,
}


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counts of the hash-consing memo tables.

    Returns ``{"sym": {"hits", "misses", "size"}, "subst": {...},
    "const": {...}}``.  Hits and misses accumulate since process start (or
    the last :func:`reset_cache_stats`); ``size`` is the current number of
    interned entries.  The observability layer records per-``analyze``
    deltas of these counters into the metrics registry.
    """
    return {
        "sym": {
            "hits": _STATS["sym_hits"],
            "misses": _STATS["sym_misses"],
            "size": len(_SYM_CACHE),
        },
        "subst": {
            "hits": _STATS["subst_hits"],
            "misses": _STATS["subst_misses"],
            "size": len(_SUBST_CACHE),
        },
        "const": {
            "hits": _STATS["const_hits"],
            "misses": _STATS["const_misses"],
            "size": len(_CONST_CACHE),
        },
    }


def reset_cache_stats() -> None:
    """Zero the hit/miss tallies (the caches themselves are untouched)."""
    for key in _STATS:
        _STATS[key] = 0


def set_memoization(enabled: bool) -> bool:
    """Enable/disable interning and memoization; returns the previous state.

    Memoization never changes results (``Expr`` is immutable and every
    cached operation is pure) -- this switch exists so equivalence tests can
    prove exactly that, and as an escape hatch.  Disabling also clears the
    mutable caches.
    """
    global _MEMO_ENABLED
    previous = _MEMO_ENABLED
    _MEMO_ENABLED = bool(enabled)
    if not _MEMO_ENABLED:
        clear_caches()
    return previous


def clear_caches() -> None:
    """Drop the global symbol/substitution caches (interned constants stay)."""
    _SYM_CACHE.clear()
    _SUBST_CACHE.clear()
