"""Exact rational matrices.

Section 4.3 of the paper recovers the coefficients of polynomial and
geometric induction variables by inverting a small integer matrix: "Since the
entries of the matrix are all integer, the inverse will have only rational
entries."  This module implements that arithmetic exactly, on top of
:class:`fractions.Fraction`, with Gauss-Jordan elimination and partial
pivoting (pivoting only matters for zero pivots here; there is no rounding).

The matrices involved are tiny (order of the polynomial plus one or two), so
no effort is spent on asymptotics.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence, Union

Rat = Union[int, Fraction]


class MatrixError(Exception):
    """Raised for shape mismatches and singular systems."""


def _as_fraction(value: Rat) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise MatrixError(f"matrix entries must be int or Fraction, got {type(value).__name__}")


class Matrix:
    """A dense matrix of :class:`~fractions.Fraction` entries.

    Instances are immutable from the caller's point of view: all operations
    return new matrices.
    """

    __slots__ = ("rows", "ncols", "_data")

    def __init__(self, data: Iterable[Iterable[Rat]]):
        rows: List[List[Fraction]] = [[_as_fraction(x) for x in row] for row in data]
        if not rows:
            raise MatrixError("matrix must have at least one row")
        width = len(rows[0])
        if width == 0:
            raise MatrixError("matrix must have at least one column")
        for row in rows:
            if len(row) != width:
                raise MatrixError("ragged rows in matrix literal")
        self._data = rows
        self.rows = len(rows)
        self.ncols = width

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "Matrix":
        """The ``n x n`` identity matrix."""
        if n <= 0:
            raise MatrixError("identity size must be positive")
        return Matrix([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def vandermonde(points: Sequence[Rat], degree: int) -> "Matrix":
        """Rows ``[1, x, x**2, ..., x**degree]`` for each point ``x``.

        This is the matrix the paper inverts to find polynomial induction
        variable coefficients, with ``points = 0, 1, ..., m``.
        """
        if degree < 0:
            raise MatrixError("degree must be non-negative")
        pts = [_as_fraction(p) for p in points]
        return Matrix([[p**k for k in range(degree + 1)] for p in pts])

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __getitem__(self, index: tuple) -> Fraction:
        i, j = index
        return self._data[i][j]

    def row(self, i: int) -> List[Fraction]:
        return list(self._data[i])

    def col(self, j: int) -> List[Fraction]:
        return [row[j] for row in self._data]

    def tolists(self) -> List[List[Fraction]]:
        return [list(row) for row in self._data]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        return hash(tuple(tuple(row) for row in self._data))

    def __repr__(self) -> str:
        body = "; ".join(" ".join(str(x) for x in row) for row in self._data)
        return f"Matrix[{body}]"

    @property
    def is_square(self) -> bool:
        return self.rows == self.ncols

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Matrix") -> "Matrix":
        if not isinstance(other, Matrix):
            return NotImplemented
        if (self.rows, self.ncols) != (other.rows, other.ncols):
            raise MatrixError("shape mismatch in matrix addition")
        return Matrix(
            [
                [a + b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._data, other._data)
            ]
        )

    def __sub__(self, other: "Matrix") -> "Matrix":
        if not isinstance(other, Matrix):
            return NotImplemented
        if (self.rows, self.ncols) != (other.rows, other.ncols):
            raise MatrixError("shape mismatch in matrix subtraction")
        return Matrix(
            [
                [a - b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._data, other._data)
            ]
        )

    def scale(self, factor: Rat) -> "Matrix":
        f = _as_fraction(factor)
        return Matrix([[f * x for x in row] for row in self._data])

    def __matmul__(self, other: "Matrix") -> "Matrix":
        if not isinstance(other, Matrix):
            return NotImplemented
        if self.ncols != other.rows:
            raise MatrixError("shape mismatch in matrix multiplication")
        out = []
        for i in range(self.rows):
            row = []
            for j in range(other.ncols):
                acc = Fraction(0)
                for k in range(self.ncols):
                    acc += self._data[i][k] * other._data[k][j]
                row.append(acc)
            out.append(row)
        return Matrix(out)

    def mul_vector(self, vector: Sequence[Rat]) -> List[Fraction]:
        """Matrix-vector product, returning a plain list."""
        if len(vector) != self.ncols:
            raise MatrixError("vector length does not match matrix width")
        vec = [_as_fraction(v) for v in vector]
        return [sum((row[k] * vec[k] for k in range(self.ncols)), Fraction(0)) for row in self._data]

    def transpose(self) -> "Matrix":
        return Matrix([[self._data[i][j] for i in range(self.rows)] for j in range(self.ncols)])

    # ------------------------------------------------------------------
    # elimination
    # ------------------------------------------------------------------
    def inverse(self) -> "Matrix":
        """Gauss-Jordan inverse.  Raises :class:`MatrixError` if singular."""
        if not self.is_square:
            raise MatrixError("only square matrices can be inverted")
        n = self.rows
        work = [list(row) + [Fraction(1) if i == j else Fraction(0) for j in range(n)] for i, row in enumerate(self._data)]
        for col in range(n):
            pivot_row = None
            for r in range(col, n):
                if work[r][col] != 0:
                    pivot_row = r
                    break
            if pivot_row is None:
                raise MatrixError("matrix is singular")
            work[col], work[pivot_row] = work[pivot_row], work[col]
            pivot = work[col][col]
            work[col] = [x / pivot for x in work[col]]
            for r in range(n):
                if r != col and work[r][col] != 0:
                    factor = work[r][col]
                    work[r] = [a - factor * b for a, b in zip(work[r], work[col])]
        return Matrix([row[n:] for row in work])

    def solve(self, rhs: Sequence[Rat]) -> List[Fraction]:
        """Solve ``A x = rhs`` for square ``A`` by elimination."""
        if not self.is_square:
            raise MatrixError("solve requires a square matrix")
        if len(rhs) != self.rows:
            raise MatrixError("right-hand side has wrong length")
        n = self.rows
        work = [list(row) + [_as_fraction(rhs[i])] for i, row in enumerate(self._data)]
        for col in range(n):
            pivot_row = None
            for r in range(col, n):
                if work[r][col] != 0:
                    pivot_row = r
                    break
            if pivot_row is None:
                raise MatrixError("matrix is singular")
            work[col], work[pivot_row] = work[pivot_row], work[col]
            pivot = work[col][col]
            work[col] = [x / pivot for x in work[col]]
            for r in range(n):
                if r != col and work[r][col] != 0:
                    factor = work[r][col]
                    work[r] = [a - factor * b for a, b in zip(work[r], work[col])]
        return [work[i][n] for i in range(n)]

    def nullspace(self) -> List[List[Fraction]]:
        """A basis for the right kernel ``{x : A x = 0}``.

        Works for rectangular matrices: reduce to RREF, then read one basis
        vector per free column (the standard back-substitution construction).
        Returns an empty list when the kernel is trivial.
        """
        work = [list(row) for row in self._data]
        nrows, ncols = self.rows, self.ncols
        pivot_cols: List[int] = []
        r = 0
        for col in range(ncols):
            if r >= nrows:
                break
            pivot_row = None
            for i in range(r, nrows):
                if work[i][col] != 0:
                    pivot_row = i
                    break
            if pivot_row is None:
                continue
            work[r], work[pivot_row] = work[pivot_row], work[r]
            pivot = work[r][col]
            work[r] = [x / pivot for x in work[r]]
            for i in range(nrows):
                if i != r and work[i][col] != 0:
                    factor = work[i][col]
                    work[i] = [a - factor * b for a, b in zip(work[i], work[r])]
            pivot_cols.append(col)
            r += 1
        free_cols = [c for c in range(ncols) if c not in pivot_cols]
        basis: List[List[Fraction]] = []
        for free in free_cols:
            vec = [Fraction(0)] * ncols
            vec[free] = Fraction(1)
            for row_idx, col in enumerate(pivot_cols):
                vec[col] = -work[row_idx][free]
            basis.append(vec)
        return basis

    def determinant(self) -> Fraction:
        """Determinant by fraction-free-ish elimination (exact anyway)."""
        if not self.is_square:
            raise MatrixError("determinant requires a square matrix")
        n = self.rows
        work = [list(row) for row in self._data]
        det = Fraction(1)
        for col in range(n):
            pivot_row = None
            for r in range(col, n):
                if work[r][col] != 0:
                    pivot_row = r
                    break
            if pivot_row is None:
                return Fraction(0)
            if pivot_row != col:
                work[col], work[pivot_row] = work[pivot_row], work[col]
                det = -det
            pivot = work[col][col]
            det *= pivot
            for r in range(col + 1, n):
                if work[r][col] != 0:
                    factor = work[r][col] / pivot
                    work[r] = [a - factor * b for a, b in zip(work[r], work[col])]
        return det
