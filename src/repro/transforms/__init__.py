"""Transformations consuming the classification.

* :mod:`repro.transforms.strengthreduce` -- the classical consumer
  ("induction variable recognition is inextricably linked to the strength
  reduction transformation", section 1): multiplications of linear IVs by
  invariants become additive recurrences.
* :mod:`repro.transforms.ivsubst` -- induction variable substitution:
  rewrite IV updates as closed forms of a fresh canonical counter,
  removing cross-iteration scalar recurrences.
* :mod:`repro.transforms.peel` -- first-iteration peeling, "the standard
  compiler trick, once a wrap-around variable is found" (section 4.1);
  after peeling the classifier sees a plain IV.
* :mod:`repro.transforms.normalize` -- loop normalization (section 6.1),
  implemented to demonstrate that the IV-based representation is the same
  whether or not the source loop was normalized.
"""

from repro.transforms.materialize import materialize_expr
from repro.transforms.strengthreduce import strength_reduce
from repro.transforms.ivsubst import substitute_induction_variables
from repro.transforms.peel import peel_first_iteration
from repro.transforms.normalize import normalize_loop
from repro.transforms.licm import hoist_invariants
from repro.transforms.unroll import fully_unroll

__all__ = [
    "hoist_invariants",
    "fully_unroll",
    "materialize_expr",
    "strength_reduce",
    "substitute_induction_variables",
    "peel_first_iteration",
    "normalize_loop",
]
