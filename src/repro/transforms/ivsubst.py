"""Induction variable substitution.

Rewrites every linear-IV definition in a loop as a closed-form computation
``init + step * h`` of one fresh canonical counter ``h = (L, 0, 1)``.
After the pass the only cross-iteration scalar recurrence left is the
counter itself -- which is what lets a parallelizer privatize the rest.
This is the inverse view of strength reduction, and the transformation
the paper's representation ``(L, init, step)`` implicitly performs.

Runs on SSA form; definitions whose init/step cannot be materialized
(opaque invariants, rational coefficients) are left alone.
"""

from __future__ import annotations

from typing import List

from repro.analysis.loops import Loop
from repro.core.classes import InductionVariable
from repro.core.driver import AnalysisResult
from repro.diagnostics.sanitizer import checkpoint
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Phi
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref
from repro.transforms.materialize import MaterializeError, materialize_expr

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@traced("transform.ivsubst")
def substitute_induction_variables(
    function: Function, analysis: AnalysisResult, loop: Loop
) -> List[str]:
    """Rewrite linear IVs of ``loop`` in closed form.  Returns rewritten names."""
    fault_point("transform.ivsubst")
    preheader_label = loop.preheader(function)
    if preheader_label is None or len(loop.latches) != 1:
        return []
    summary = analysis.loops.get(loop.header)
    if summary is None:
        return []
    header = function.block(loop.header)
    latch = function.block(loop.latches[0])

    # candidates first (the counter phi we add must not itself be rewritten);
    # only the loop's own region -- names in nested loops are summarized by
    # exit values in `summary` and must not be rewritten here
    own_blocks = set(loop.body)
    for child in loop.children:
        own_blocks -= child.body
    candidates = []
    for label in sorted(own_blocks):
        block = function.block(label)
        for position, inst in enumerate(block.instructions):
            if inst.result is None:
                continue
            cls = summary.classifications.get(inst.result)
            if not (isinstance(cls, InductionVariable) and cls.is_linear):
                continue
            if isinstance(inst, Phi) and block.label == loop.header:
                continue  # keep loop-header phis: they feed the recurrence
            candidates.append((block, position, inst, cls))
    if not candidates:
        return []

    counter = function.fresh_name(f"{loop.header}.h")
    counter_next = function.fresh_name(f"{loop.header}.hn")
    header.instructions.insert(
        0,
        Phi(counter, {preheader_label: Const(0), latch.label: Ref(counter_next)}),
    )
    latch.append(BinOp(counter_next, BinaryOp.ADD, Ref(counter), 1))

    rewritten: List[str] = []
    for block, position, inst, cls in candidates:
        init = cls.form.coeff(0)
        step = cls.form.coeff(1)
        try:
            # value = init + step * h, inserted in place of the definition
            insert_at = block.instructions.index(inst)
            step_value, nxt = materialize_expr(
                function, block, insert_at, step, hint=f"ivs.{inst.result}.s"
            )
            scaled = function.fresh_name(f"${inst.result}.sh")
            block.instructions.insert(
                nxt, BinOp(scaled, BinaryOp.MUL, step_value, Ref(counter))
            )
            init_value, nxt2 = materialize_expr(
                function, block, nxt + 1, init, hint=f"ivs.{inst.result}.i"
            )
            block.instructions[nxt2] = BinOp(
                inst.result, BinaryOp.ADD, init_value, Ref(scaled)
            )
        except MaterializeError:
            continue
        rewritten.append(inst.result)
    function.dirty()
    if rewritten:
        checkpoint(function, "ivsubst")
    return rewritten
