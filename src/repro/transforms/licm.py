"""Loop-invariant code motion, driven by the classification.

A pure computation classified :class:`~repro.core.classes.Invariant` in a
loop produces the same value on every iteration; if its block executes on
every iteration (dominates the latches) it can be hoisted to the
preheader.  This is the third classical consumer of the analysis (after
strength reduction and IV substitution): the paper's classification gives
the invariance facts for free, no separate reaching-definitions pass.

Loads are hoisted only when the loop provably does not store to the array
(the same condition under which the classifier marked them invariant).
"""

from __future__ import annotations

from typing import List

from repro.analysis.dominators import dominator_tree
from repro.analysis.loops import Loop
from repro.core.classes import Invariant
from repro.core.driver import AnalysisResult
from repro.diagnostics.sanitizer import checkpoint
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Compare, Load, Phi, UnOp
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Ref
from repro.resilience.faultinject import fault_point

from repro.obs.trace import traced


HOISTABLE = (Assign, BinOp, UnOp, Load, Compare)


@traced("transform.licm")
def hoist_invariants(
    function: Function, analysis: AnalysisResult, loop: Loop
) -> List[str]:
    """Hoist invariant computations of ``loop`` into its preheader.

    Returns the hoisted value names (in hoist order).  Runs on SSA form;
    the result remains valid SSA (a hoisted definition dominates strictly
    more of the function than before).
    """
    fault_point("transform.licm")
    preheader_label = loop.preheader(function)
    if preheader_label is None:
        return []
    summary = analysis.loops.get(loop.header)
    if summary is None:
        return []
    preheader = function.block(preheader_label)
    domtree = dominator_tree(function)

    own_blocks = set(loop.body)
    for child in loop.children:
        own_blocks -= child.body

    hoisted: List[str] = []
    moved = set()

    def operands_available(inst) -> bool:
        """All operands must be defined outside the loop or already moved."""
        for value in inst.uses():
            if not isinstance(value, Ref):
                continue
            block = analysis._def_block.get(value.name)
            if block is None or block not in loop.body:
                continue
            if value.name not in moved:
                return False
        return True

    changed = True
    while changed:
        changed = False
        for label in sorted(own_blocks):
            block = function.block(label)
            for inst in list(block.instructions):
                if inst.result is None or inst.result in moved:
                    continue
                if not isinstance(inst, HOISTABLE) or isinstance(inst, Phi):
                    continue
                if isinstance(inst, BinOp) and inst.op in (
                    BinaryOp.DIV,
                    BinaryOp.MOD,
                    BinaryOp.EXP,
                ):
                    # potentially trapping: executing it when the loop would
                    # have run zero iterations changes behaviour
                    continue
                cls = summary.classifications.get(inst.result)
                if not isinstance(cls, Invariant):
                    continue
                # must execute every iteration (else hoisting may introduce
                # a computation -- harmless for our pure ops, but a trapping
                # divide would change behaviour; be uniformly careful)
                if not all(domtree.dominates(label, latch) for latch in loop.latches):
                    continue
                if not operands_available(inst):
                    continue
                block.instructions.remove(inst)
                preheader.instructions.append(inst)
                moved.add(inst.result)
                hoisted.append(inst.result)
                changed = True
    if hoisted:
        # a hoist moves an instruction between blocks without changing the
        # instruction count, which the fingerprint safety net cannot see
        function.dirty()
        checkpoint(function, "licm")
    return hoisted
