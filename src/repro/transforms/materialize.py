"""Materializing symbolic expressions as IR instructions.

The analysis works with :class:`~repro.symbolic.expr.Expr` values over SSA
names; transforms that introduce new computations (strength-reduction
initializers, exit values, normalized bounds) must turn those expressions
back into instructions.  Only expressions with integer coefficients over
plain SSA names can be materialized -- opaque invariants (``$k...``) name
computations whose defining instruction is elsewhere, and rational
coefficients have no integer IR form; both raise.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Instruction
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value
from repro.resilience.faultinject import fault_point
from repro.symbolic.expr import Expr


class MaterializeError(Exception):
    """Raised when an expression has no direct IR encoding."""


def materialize_expr(
    function: Function,
    block: BasicBlock,
    position: int,
    expr: Expr,
    hint: str = "mat",
) -> Tuple[Value, int]:
    """Insert instructions computing ``expr`` at ``block.instructions[position]``.

    Returns ``(value, next_position)``; ``value`` is a Const for constant
    expressions (no instructions emitted).
    """
    fault_point("transform.materialize")
    instructions: List[Instruction] = []

    def fresh() -> str:
        return function.fresh_name(f"${hint}{len(instructions)}")

    def emit(op: BinaryOp, lhs: Value, rhs: Value) -> Value:
        name = fresh()
        instructions.append(BinOp(name, op, lhs, rhs))
        return Ref(name)

    def const_value(fraction) -> Value:
        if fraction.denominator != 1:
            raise MaterializeError(f"non-integer coefficient {fraction} in {expr}")
        return Const(fraction.numerator)

    total: Value = None  # type: ignore[assignment]
    for mono, coeff in sorted(expr.terms().items()):
        # build the monomial product
        term: Value = None  # type: ignore[assignment]
        for sym, power in mono:
            if sym.startswith("$k"):
                raise MaterializeError(f"opaque invariant {sym} cannot be rebuilt")
            for _ in range(power):
                factor: Value = Ref(sym)
                term = factor if term is None else emit(BinaryOp.MUL, term, factor)
        if term is None:
            term = const_value(coeff)
        elif coeff == -1:
            term = emit(BinaryOp.SUB, Const(0), term)
        elif coeff != 1:
            term = emit(BinaryOp.MUL, const_value(coeff), term)
        total = term if total is None else emit(BinaryOp.ADD, total, term)
    if total is None:
        total = Const(0)

    if instructions:
        for offset, inst in enumerate(instructions):
            block.instructions.insert(position + offset, inst)
        function.dirty()
    return total, position + len(instructions)
