"""Loop normalization (section 6.1).

"Loop normalization is a linear transformation on the index set of a for
loop to change the sequence of values of the loop variable to start at zero
... with a step of one."  The paper argues the transformation is largely
obsolete under IV-based analysis (the representation *implicitly*
normalizes); we implement it anyway so the L23/L24 experiment can show
both source forms produce identical classifications.

Operates on the named IR, on loops in the shape the frontend emits for
``for`` statements::

    pre:     v = <init> ; ...
    header:  t = cmp v <= <limit> ; branch t, body, exit
    latch:   v = v + <step-const> ; jump header

and rewrites to ``t0 = 0 ; t0 <= (limit - init) / step ; t0 = t0 + 1`` with
``v`` recomputed as ``init + t0 * step`` at the top of the body.  The
division is emitted as an integer DIV instruction, exactly like the
paper's ``(n-2)/3`` example.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loops import find_loops
from repro.diagnostics.sanitizer import checkpoint
from repro.ir.function import Function, IRError
from repro.ir.instructions import Assign, BinOp, Branch, Compare
from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref, Value

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@traced("transform.normalize")
def normalize_loop(function: Function, header: str) -> Optional[str]:
    """Normalize the counted loop at ``header``; returns the new counter
    variable name, or None if the loop does not match the counted shape."""
    fault_point("transform.normalize")
    nest = find_loops(function)
    loop = nest.loop_of_header(header)
    if loop is None:
        raise IRError(f"no loop headed at {header!r}")
    if len(loop.latches) != 1:
        return None
    preheader_label = loop.preheader(function)
    if preheader_label is None:
        return None

    header_block = function.block(header)
    latch = function.block(loop.latches[0])

    # match the counted-loop shape
    if not (
        len(header_block.instructions) >= 1
        and isinstance(header_block.instructions[-1], Compare)
        and isinstance(header_block.terminator, Branch)
    ):
        return None
    compare = header_block.instructions[-1]
    if compare.relation not in (Relation.LE, Relation.GE):
        return None
    if not isinstance(compare.lhs, Ref):
        return None
    var = compare.lhs.name
    limit = compare.rhs

    increments = [
        inst
        for inst in latch.instructions
        if isinstance(inst, BinOp) and inst.result == var and inst.op is BinaryOp.ADD
    ]
    if len(increments) != 1:
        return None
    increment = increments[0]
    if isinstance(increment.lhs, Ref) and increment.lhs.name == var:
        step_value = increment.rhs
    elif isinstance(increment.rhs, Ref) and increment.rhs.name == var:
        step_value = increment.lhs
    else:
        return None
    if not isinstance(step_value, Const) or step_value.value == 0:
        return None
    step = step_value.value
    if (step > 0) != (compare.relation is Relation.LE):
        return None

    # the initial value: last assignment of `var` in the preheader chain
    init = _initial_value(function, preheader_label, var)
    if init is None:
        return None

    counter = function.fresh_name(f"{header}.norm")
    preheader = function.block(preheader_label)

    # preheader: counter = 0 ; bound = (limit - init) / step, with a
    # zero-trip guard -- integer division truncates toward zero, so a
    # negative difference would otherwise yield bound 0 (one spurious trip)
    bound = function.fresh_name(f"{header}.bound")
    diff = function.fresh_name(f"{header}.diff")
    guard = function.fresh_name(f"{header}.guard")
    preheader.append(Assign(counter, Const(0)))
    preheader.append(BinOp(diff, BinaryOp.SUB, limit, init))
    preheader.append(BinOp(bound, BinaryOp.DIV, diff, Const(step)))
    guard_relation = Relation.LE if step > 0 else Relation.GE
    preheader.append(Compare(guard, guard_relation, init, limit))
    exit_target = (
        header_block.terminator.false_target
        if header_block.terminator.true_target in loop.body
        else header_block.terminator.true_target
    )
    preheader.terminator = Branch(Ref(guard), header, exit_target)

    # header: compare the counter against the normalized bound
    header_block.instructions[-1] = Compare(
        compare.result, Relation.LE, Ref(counter), Ref(bound)
    )

    # body entry: recompute var = init + counter * step
    body_label = header_block.terminator.true_target
    body = function.block(body_label)
    scaled = function.fresh_name(f"{header}.scaled")
    body.instructions.insert(0, BinOp(scaled, BinaryOp.MUL, Ref(counter), Const(step)))
    body.instructions.insert(1, BinOp(var, BinaryOp.ADD, init, Ref(scaled)))

    # latch: advance the counter instead of var
    position = latch.instructions.index(increment)
    latch.instructions[position] = BinOp(counter, BinaryOp.ADD, Ref(counter), Const(1))
    function.dirty()
    checkpoint(function, "normalize", ssa=False)
    return counter


def _initial_value(function: Function, preheader_label: str, var: str) -> Optional[Value]:
    """The value assigned to ``var`` on entry (scanned up the preheader)."""
    label = preheader_label
    visited = set()
    preds = function.predecessors_map()
    while label is not None and label not in visited:
        visited.add(label)
        block = function.block(label)
        for inst in reversed(block.instructions):
            if inst.result == var:
                if isinstance(inst, Assign):
                    return inst.src
                return None
        incoming = preds.get(label, [])
        label = incoming[0] if len(incoming) == 1 else None
    return None
