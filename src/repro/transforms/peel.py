"""First-iteration loop peeling.

"The standard compiler trick, once a wrap-around variable is found, is to
peel off the first iteration of the loop and replace the wrap-around
variable with the appropriate induction variable" (section 4.1).

Runs on the *named* (pre-SSA) IR, where copying blocks needs no phi
surgery: every loop block is cloned with a ``.peel`` suffix; in the clones,
back edges to the header are redirected to the *original* header, and the
preheader enters the clone.  Exits from the clone keep their original
targets, so zero- and one-trip loops remain correct (the cloned exit test
runs first).

After peeling (and re-running the pipeline), a first-order wrap-around's
initial value comes from the peeled iteration and "fits the induction
sequence": the classifier collapses it to a plain IV -- tested in
``tests/transforms/test_peel.py``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.loops import Loop, find_loops
from repro.diagnostics.sanitizer import checkpoint
from repro.ir.clone import _clone_instruction, _clone_terminator
from repro.ir.function import Function, IRError

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@traced("transform.peel")
def peel_first_iteration(function: Function, header: str) -> List[str]:
    """Peel one iteration of the loop headed at ``header`` (named IR).

    Returns the labels of the cloned blocks.  Requires a canonical loop
    (dedicated preheader; run ``simplify_loops`` first).
    """
    fault_point("transform.peel")
    for block in function:
        for inst in block:
            from repro.ir.instructions import Phi

            if isinstance(inst, Phi):
                raise IRError("peel_first_iteration runs on named (pre-SSA) IR")

    nest = find_loops(function)
    loop = nest.loop_of_header(header)
    if loop is None:
        raise IRError(f"no loop headed at {header!r}")
    preheader = loop.preheader(function)
    if preheader is None:
        raise IRError(f"loop {header!r} has no dedicated preheader (run simplify_loops)")

    mapping: Dict[str, str] = {}
    for label in sorted(loop.body):
        mapping[label] = function.fresh_label(f"{label}.peel")

    for label in sorted(loop.body):
        source = function.block(label)
        clone = function.add_block(mapping[label])
        for inst in source:
            clone.append(_clone_instruction(inst))
        clone.terminator = _clone_terminator(source.terminator)
        # redirect: in-loop targets to clones, except the back edge to the
        # header, which enters the original loop (second iteration onward)
        for succ in list(clone.successors()):
            if succ == header:
                continue  # back edge: fall into the original loop
            if succ in mapping:
                clone.terminator.retarget(succ, mapping[succ])

    function.block(preheader).terminator.retarget(header, mapping[header])
    function.dirty()
    checkpoint(function, "peel", ssa=False)
    return [mapping[label] for label in sorted(loop.body)]
