"""Strength reduction of linear induction variable multiplications.

"The most common candidates for strength reduction (and therefore the most
important induction variable candidates) are array address calculations in
inner loops" (section 1).  For each in-loop multiplication ``t = m * c``
where ``m`` is a linear IV of the loop (closed form ``init + step*h`` with
materializable ``init``/``step``) and ``c`` is loop invariant, we create

* in the preheader:  ``t0 = init * c``
* at the header:     ``t.phi = phi(preheader: t0, latch: t.next)``
* in the latch:      ``t.next = t.phi + step * c``

and replace the multiplication by a copy of ``t.phi`` plus the member's
constant offset.  Runs on SSA form; the result stays valid SSA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.loops import Loop
from repro.core.algebra import class_closed_form
from repro.core.classes import InductionVariable, Invariant
from repro.core.driver import AnalysisResult
from repro.diagnostics.sanitizer import checkpoint
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Phi
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value
from repro.symbolic.expr import Expr
from repro.transforms.materialize import MaterializeError, materialize_expr

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@dataclass
class ReducedMultiply:
    """Record of one reduced multiplication."""

    instruction_result: str
    loop: str
    new_phi: str


@traced("transform.strength-reduce")
def strength_reduce(
    function: Function, analysis: AnalysisResult, loop: Loop
) -> List[ReducedMultiply]:
    """Reduce all eligible multiplications in ``loop``.  Returns records."""
    fault_point("transform.strength-reduce")
    preheader_label = loop.preheader(function)
    if preheader_label is None or len(loop.latches) != 1:
        return []
    preheader = function.block(preheader_label)
    latch = function.block(loop.latches[0])
    header = function.block(loop.header)
    summary = analysis.loops.get(loop.header)
    if summary is None:
        return []

    # only the loop's own region: names inside nested loops are summarized
    # by exit values in `summary`, which describe post-loop values, not the
    # per-iteration values a reduction would need
    own_blocks = set(loop.body)
    for child in loop.children:
        own_blocks -= child.body

    reduced: List[ReducedMultiply] = []
    for label in sorted(own_blocks):
        block = function.block(label)
        for position, inst in enumerate(block.instructions):
            if not (isinstance(inst, BinOp) and inst.op is BinaryOp.MUL):
                continue
            candidate = _match(analysis, summary, inst, own_blocks)
            if candidate is None:
                continue
            init_expr, step_expr = candidate
            try:
                record = _reduce_one(
                    function, loop, preheader, header, latch, inst, init_expr, step_expr
                )
            except MaterializeError:
                continue
            block.instructions[position] = Assign(inst.result, Ref(record.new_phi))
            reduced.append(record)
    if reduced:
        function.dirty()
        checkpoint(function, "strengthreduce")
    return reduced


def _match(analysis, summary, inst: BinOp, own_blocks):
    """``iv * invariant``: returns (init*c, step*c) as Exprs, or None."""

    def classify(value: Value):
        if isinstance(value, Const):
            return Invariant(Expr.const(value.value))
        defining = analysis._def_block.get(value.name)
        if defining is not None and defining in own_blocks:
            cls = summary.classifications.get(value.name)
            if cls is not None:
                return cls
            return None
        if defining is not None and defining in summary.loop.body:
            return None  # defined in a nested loop: not invariant here
        return Invariant(Expr.sym(value.name))

    lhs = classify(inst.lhs)
    rhs = classify(inst.rhs)
    if lhs is None or rhs is None:
        return None
    iv, inv = None, None
    if isinstance(lhs, InductionVariable) and isinstance(rhs, Invariant):
        iv, inv = lhs, rhs
    elif isinstance(rhs, InductionVariable) and isinstance(lhs, Invariant):
        iv, inv = rhs, lhs
    if iv is None or not iv.is_linear:
        return None
    return iv.form.coeff(0) * inv.expr, iv.form.coeff(1) * inv.expr


def _reduce_one(
    function: Function,
    loop: Loop,
    preheader,
    header,
    latch,
    inst: BinOp,
    init_expr: Expr,
    step_expr: Expr,
) -> ReducedMultiply:
    base = inst.result
    # initializer in the preheader (before its terminator)
    init_value, _ = materialize_expr(
        function, preheader, len(preheader.instructions), init_expr, hint=f"sr.{base}.i"
    )
    phi_name = function.fresh_name(f"{base}.sr")
    next_name = function.fresh_name(f"{base}.srn")

    # increment in the latch
    step_value, position = materialize_expr(
        function, latch, len(latch.instructions), step_expr, hint=f"sr.{base}.s"
    )
    latch.instructions.insert(position, BinOp(next_name, BinaryOp.ADD, Ref(phi_name), step_value))

    phi = Phi(phi_name, {preheader.label: init_value, latch.label: Ref(next_name)})
    header.instructions.insert(0, phi)
    return ReducedMultiply(base, loop.header, phi_name)
