"""Full loop unrolling for constant trip counts.

Built directly on the analysis: the trip count of section 5.2 says how
many copies to make, and the copies are produced by repeated first-
iteration peeling (each peel advances the loop by one iteration, so ``tc``
peels straight-line the whole execution; the residual loop's exit test
then fails immediately).  A consumer like SCCP folds the residue away.

Unrolling is the classical litmus test for trip-count correctness: the
interpreter must observe identical behaviour, including for the
"early increment" mid-exit loops of Figure 7.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loopsimplify import simplify_loops
from repro.ir.clone import clone_function
from repro.diagnostics.sanitizer import checkpoint
from repro.ir.function import Function, IRError
from repro.resilience.budget import unroll_cap
from repro.resilience.faultinject import fault_point
from repro.transforms.peel import peel_first_iteration

from repro.obs.trace import traced


@traced("transform.unroll")
def fully_unroll(
    function: Function, header: str, max_trips: int = 32
) -> Optional[int]:
    """Unroll the loop at ``header`` completely (named IR, in place).

    Returns the number of peeled iterations, or None when the trip count
    is unknown, inexact, symbolic, or above ``max_trips`` (the function is
    left untouched in that case).  An active
    :class:`~repro.resilience.AnalysisBudget` additionally clamps
    ``max_trips`` to ``max_unroll_trips``, bounding the IR expansion.
    """
    from repro.pipeline import analyze_function

    fault_point("transform.unroll")
    probe = analyze_function(clone_function(function))
    if header not in probe.result.loops:
        raise IRError(f"no loop headed at {header!r}")
    trip = probe.result.trip_count(header)
    count = trip.constant()
    if count is None or not trip.exact or count > unroll_cap(max_trips):
        return None

    for _ in range(count):
        peel_first_iteration(function, header)
        simplify_loops(function)
    checkpoint(function, "unroll", ssa=False)
    return count
