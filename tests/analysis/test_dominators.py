"""Tests for dominator computation."""

import pytest

from repro.analysis.dominators import dominator_tree
from repro.ir.function import IRError
from repro.ir.parser import parse_function

DIAMOND = """
func f(c) {
entry:
  branch %c, left, right
left:
  jump join
right:
  jump join
join:
  return
}
"""

LOOP = """
func f(c) {
entry:
  jump header
header:
  branch %c, body, exit
body:
  jump header
exit:
  return
}
"""

# the classic irreducible-ish / multi-path example
COMPLEX = """
func f(c) {
a:
  branch %c, b, c
b:
  jump d
c:
  branch %c, d, e
d:
  branch %c, e, b
e:
  return
}
"""


class TestDiamond:
    def test_idoms(self):
        f = parse_function(DIAMOND)
        dt = dominator_tree(f)
        assert dt.immediate_dominator("left") == "entry"
        assert dt.immediate_dominator("right") == "entry"
        assert dt.immediate_dominator("join") == "entry"
        assert dt.immediate_dominator("entry") is None

    def test_dominates(self):
        dt = dominator_tree(parse_function(DIAMOND))
        assert dt.dominates("entry", "join")
        assert dt.dominates("join", "join")
        assert not dt.dominates("left", "join")
        assert not dt.strictly_dominates("join", "join")

    def test_dominators_of(self):
        dt = dominator_tree(parse_function(DIAMOND))
        assert dt.dominators_of("join") == ["join", "entry"]


class TestLoop:
    def test_header_dominates_body(self):
        dt = dominator_tree(parse_function(LOOP))
        assert dt.dominates("header", "body")
        assert dt.dominates("header", "exit")
        assert not dt.dominates("body", "exit")


class TestComplex:
    def test_all_dominated_by_entry(self):
        dt = dominator_tree(parse_function(COMPLEX))
        for label in "abcde":
            assert dt.dominates("a", label)

    def test_e_not_dominated_by_intermediates(self):
        dt = dominator_tree(parse_function(COMPLEX))
        assert dt.immediate_dominator("e") == "a"
        assert dt.immediate_dominator("d") == "a"
        assert dt.immediate_dominator("b") == "a"


class TestStructure:
    def test_preorder_starts_at_entry(self):
        dt = dominator_tree(parse_function(COMPLEX))
        order = dt.preorder()
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c", "d", "e"}

    def test_unreachable_blocks_excluded(self):
        f = parse_function(
            "func f() {\nentry:\n  return\ndead:\n  jump dead\n}"
        )
        dt = dominator_tree(f)
        with pytest.raises(IRError):
            dt.dominates("entry", "dead")

    def test_children_partition(self):
        dt = dominator_tree(parse_function(DIAMOND))
        assert sorted(dt.children["entry"]) == ["join", "left", "right"]
