"""Tests for dominance frontiers, natural loops, RPO, liveness, postdom."""

from repro.analysis.domfrontier import dominance_frontiers, iterated_frontier
from repro.analysis.dominators import dominator_tree
from repro.analysis.liveness import live_in_sets
from repro.analysis.loops import find_loops
from repro.analysis.loopsimplify import simplify_loops
from repro.analysis.postdom import VIRTUAL_EXIT, postdominator_tree
from repro.analysis.rpo import postorder, reachable_blocks, reverse_postorder
from repro.frontend.source import compile_source
from repro.ir.parser import parse_function

NESTED = """
func f(c) {
entry:
  jump outer
outer:
  branch %c, inner, exit
inner:
  branch %c, inner, outer_latch
outer_latch:
  jump outer
exit:
  return
}
"""


class TestRPO:
    def test_rpo_topological_for_dag(self):
        f = parse_function(
            "func f(c) {\na:\n  branch %c, b, c\nb:\n  jump d\nc:\n  jump d\nd:\n  return\n}"
        )
        rpo = reverse_postorder(f)
        assert rpo[0] == "a" and rpo[-1] == "d"

    def test_postorder_reverse_relationship(self):
        f = parse_function(NESTED)
        assert list(reversed(postorder(f))) == reverse_postorder(f)

    def test_reachable(self):
        f = parse_function("func f() {\na:\n  return\nzombie:\n  jump zombie\n}")
        assert reachable_blocks(f) == {"a"}


class TestFrontiers:
    def test_diamond_frontier(self):
        f = parse_function(
            "func f(c) {\nentry:\n  branch %c, l, r\nl:\n  jump j\nr:\n  jump j\nj:\n  return\n}"
        )
        dt = dominator_tree(f)
        df = dominance_frontiers(f, dt)
        assert df["l"] == {"j"}
        assert df["r"] == {"j"}
        assert df["entry"] == set()

    def test_loop_header_in_own_frontier(self):
        f = parse_function(NESTED)
        dt = dominator_tree(f)
        df = dominance_frontiers(f, dt)
        assert "outer" in df["outer"]  # back edge makes the header its own frontier
        assert "inner" in df["inner"]

    def test_iterated_frontier(self):
        f = parse_function(NESTED)
        df = dominance_frontiers(f, dominator_tree(f))
        result = iterated_frontier(df, {"inner"})
        assert "inner" in result and "outer" in result


class TestLoops:
    def test_nested_loops_found(self):
        nest = find_loops(parse_function(NESTED))
        assert len(nest) == 2
        outer = nest.loop_of_header("outer")
        inner = nest.loop_of_header("inner")
        assert inner.parent is outer
        assert outer.parent is None
        assert inner.depth == 2

    def test_bodies(self):
        nest = find_loops(parse_function(NESTED))
        outer = nest.loop_of_header("outer")
        assert outer.body == {"outer", "inner", "outer_latch"}
        inner = nest.loop_of_header("inner")
        assert inner.body == {"inner"}

    def test_innermost(self):
        nest = find_loops(parse_function(NESTED))
        assert nest.innermost("inner").header == "inner"
        assert nest.innermost("outer_latch").header == "outer"
        assert nest.innermost("exit") is None

    def test_inner_to_outer_order(self):
        nest = find_loops(parse_function(NESTED))
        order = [l.header for l in nest.inner_to_outer()]
        assert order.index("inner") < order.index("outer")

    def test_exits_and_latches(self):
        f = parse_function(NESTED)
        nest = find_loops(f)
        outer = nest.loop_of_header("outer")
        assert outer.exit_edges(f) == [("outer", "exit")]
        assert outer.latches == ["outer_latch"]

    def test_no_loops(self):
        f = parse_function("func f() {\na:\n  return\n}")
        assert len(find_loops(f)) == 0


class TestLoopSimplify:
    def test_preheader_inserted(self):
        # two entries into the header
        f = parse_function(
            """
func f(c) {
entry:
  branch %c, header, side
side:
  jump header
header:
  branch %c, header, exit
exit:
  return
}
"""
        )
        assert simplify_loops(f)
        nest = find_loops(f)
        loop = nest.loop_of_header("header")
        assert loop.preheader(f) is not None

    def test_latch_merged(self):
        f = parse_function(
            """
func f(c) {
entry:
  jump header
header:
  branch %c, a, exit
a:
  branch %c, header, b
b:
  jump header
exit:
  return
}
"""
        )
        simplify_loops(f)
        nest = find_loops(f)
        loop = nest.loop_of_header("header")
        assert len(loop.latches) == 1

    def test_frontend_output_already_canonical(self):
        f = compile_source(
            "i = 0\nL1: for i = 1 to n do\n  x = i\nendfor"
        )
        assert not simplify_loops(f)  # nothing to do


class TestLiveness:
    def test_live_in(self):
        f = parse_function(
            """
func f(n) {
entry:
  %a = copy 1
  jump next
next:
  %b = add %a, %n
  return %b
}
"""
        )
        live = live_in_sets(f)
        assert "a" in live["next"] and "n" in live["next"]
        assert "a" not in live["entry"]

    def test_loop_carried_liveness(self):
        f = compile_source("i = 0\nL1: loop\n  i = i + 1\n  if i > n then\n    break\n  endif\nendloop")
        live = live_in_sets(f)
        assert "i" in live["L1"]


class TestPostdom:
    def test_virtual_exit_root(self):
        f = parse_function(NESTED)
        pdt = postdominator_tree(f)
        assert pdt.entry == VIRTUAL_EXIT
        assert pdt.dominates(VIRTUAL_EXIT, "entry")

    def test_join_postdominates_branches(self):
        f = parse_function(
            "func f(c) {\nentry:\n  branch %c, l, r\nl:\n  jump j\nr:\n  jump j\nj:\n  return\n}"
        )
        pdt = postdominator_tree(f)
        assert pdt.dominates("j", "l")
        assert pdt.dominates("j", "entry")
        assert not pdt.dominates("l", "entry")


class TestReducibility:
    IRREDUCIBLE = """
func f(c) {
entry:
  branch %c, a, b
a:
  jump b
b:
  branch %c, a, exit
exit:
  return
}
"""

    def test_irreducible_detected(self):
        from repro.analysis.reducibility import irreducible_edges, is_reducible

        f = parse_function(self.IRREDUCIBLE)
        assert not is_reducible(f)
        assert ("b", "a") in irreducible_edges(f)

    def test_reducible_ok(self):
        from repro.analysis.reducibility import is_reducible

        f = compile_source("i = 0\nL1: while i < n do\n  i = i + 1\nendwhile")
        assert is_reducible(f)

    def test_classifier_refuses_irreducible(self):
        import pytest
        from repro.core.driver import classify_function
        from repro.ir.function import IRError

        f = parse_function(self.IRREDUCIBLE)
        with pytest.raises(IRError, match="irreducible"):
            classify_function(f)
