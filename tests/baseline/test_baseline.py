"""Tests for the classical baseline (and its blind spots)."""

from repro.analysis.loops import find_loops
from repro.baseline.classical import classical_induction_variables
from repro.baseline.patterns import find_wraparound_patterns
from repro.frontend.source import compile_source


def run_classical(source, header="L1"):
    f = compile_source(source)
    nest = find_loops(f)
    loop = nest.loop_of_header(header)
    return f, loop, classical_induction_variables(f, loop)


class TestBasicDetection:
    def test_simple_basic_iv(self):
        _, _, result = run_classical(
            "i = 0\nL1: loop\n  i = i + 1\n  if i > n then\n    break\n  endif\nendloop"
        )
        assert "i" in result.basic
        assert result.basic["i"].step == 1

    def test_for_loop_var(self):
        _, _, result = run_classical("L1: for i = 1 to n do\n  x = i\nendfor")
        assert "i" in result.basic

    def test_multiple_increments(self):
        _, _, result = run_classical(
            "i = 0\nL1: loop\n  i = i + 2\n  i = i + 3\n  if i > n then\n    break\n  endif\nendloop"
        )
        assert result.basic["i"].step == 5

    def test_derived_iv(self):
        _, _, result = run_classical(
            "L1: for i = 1 to n do\n  j = 4 * i\n  k = j + 2\n  A[k] = 0\nendfor"
        )
        assert "j" in result.derived
        assert result.derived["j"].factor == 4
        assert "k" in result.derived
        assert result.derived["k"].factor == 4 and result.derived["k"].offset == 2

    def test_derived_chain_needs_iteration(self):
        _, _, result = run_classical(
            "L1: for i = 1 to n do\n  a = i + 1\n  b = a + 1\n  c = b + 1\n  A[c] = 0\nendfor"
        )
        assert {"a", "b", "c"} <= set(result.derived)
        assert result.passes >= 3  # one body pass per chain link + fixpoint

    def test_pass_count_recorded(self):
        _, _, result = run_classical("L1: for i = 1 to n do\n  x = i\nendfor")
        assert result.passes >= 2  # at least one productive + one stabilizing


class TestBlindSpots:
    """Everything the unified SSA algorithm sees and the classical one misses."""

    def test_conditional_equal_increments_missed(self):
        _, _, result = run_classical(
            "i = 0\nL1: for it = 1 to n do\n  if x > 0 then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n  A[i] = 0\nendfor"
        )
        assert "i" not in result.basic  # two defs, not the i=i+c shape

    def test_geometric_missed(self):
        _, _, result = run_classical("l = 1\nL1: for it = 1 to n do\n  l = l * 2 + 1\nendfor")
        assert "l" not in result.all_ivs()

    def test_polynomial_missed(self):
        _, _, result = run_classical(
            "j = 1\nL1: for i = 1 to n do\n  j = j + i\nendfor"
        )
        # j's increment is not invariant: rejected
        assert "j" not in result.all_ivs()

    def test_periodic_missed(self):
        _, _, result = run_classical(
            "j = 1\nk = 2\nL1: for it = 1 to n do\n  t = j\n  j = k\n  k = t\nendfor"
        )
        assert not ({"j", "k"} & set(result.all_ivs()))

    def test_monotonic_missed(self):
        _, _, result = run_classical(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\nendfor"
        )
        assert "k" not in result.all_ivs()


class TestWrapAroundPattern:
    def test_pattern_found(self):
        f, loop, ivs = run_classical(
            "iml = n\nL1: for i = 1 to n do\n  A[i] = A[iml]\n  iml = i\nendfor"
        )
        patterns = find_wraparound_patterns(f, loop, ivs)
        assert len(patterns) == 1
        assert patterns[0].var == "iml" and patterns[0].iv == "i"

    def test_second_order_missed(self):
        """The ad hoc matcher cannot cascade -- the paper's criticism."""
        f, loop, ivs = run_classical(
            "k = a\nj = b\nL1: for i = 1 to n do\n  A[k] = 0\n  k = j\n  j = i\nendfor"
        )
        patterns = find_wraparound_patterns(f, loop, ivs)
        names = {p.var for p in patterns}
        assert "j" in names  # first order found
        assert "k" not in names  # second order missed

    def test_no_false_positives(self):
        f, loop, ivs = run_classical(
            "L1: for i = 1 to n do\n  x = A[i]\n  A[i] = x\nendfor"
        )
        assert find_wraparound_patterns(f, loop, ivs) == []
