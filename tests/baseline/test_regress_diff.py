"""``benchmarks.regress --compare``: wall-time and work-counter deltas."""

from benchmarks.regress import DIFF_COUNTER_PREFIXES, diff_table


def report(pipeline_s, counters):
    return {
        "schema": 5,
        "workloads": {
            "mixed_class_loop/200": {
                "pipeline_s": pipeline_s,
                "classify_s": pipeline_s / 2,
                "counters": counters,
            }
        },
    }


class TestCounterDeltas:
    def test_changed_tracked_counters_get_rows(self):
        old = report(1.0, {"ranges.fixpoint.visits": 100, "expr.cache.sym.hits": 50})
        new = report(0.8, {"ranges.fixpoint.visits": 60, "expr.cache.sym.hits": 50})
        lines = diff_table(old, new)
        (counter_line,) = [l for l in lines if "counter " in l]
        assert "ranges.fixpoint.visits" in counter_line
        assert "100 -> 60" in counter_line
        assert "-40.0%" in counter_line

    def test_unchanged_counters_are_silent(self):
        counters = {"ranges.fixpoint.visits": 100}
        lines = diff_table(report(1.0, counters), report(1.0, dict(counters)))
        assert not any("counter " in l for l in lines)

    def test_untracked_counters_are_ignored(self):
        lines = diff_table(
            report(1.0, {"classify.names": 10}),
            report(1.0, {"classify.names": 99}),
        )
        assert not any("counter " in l for l in lines)

    def test_counter_present_on_one_side_only(self):
        lines = diff_table(
            report(1.0, {}), report(1.0, {"interval.cache.size": 7})
        )
        (counter_line,) = [l for l in lines if "counter " in l]
        assert "None -> 7" in counter_line

    def test_wall_time_row_still_rendered(self):
        lines = diff_table(report(1.0, {}), report(0.5, {}))
        assert any("-50.0%" in l for l in lines)

    def test_tracked_prefixes_cover_the_hot_counters(self):
        for name in (
            "ranges.fixpoint.visits",
            "expr.cache.sym.hits",
            "interval.cache.bound.hits",
            "dependence.pairs",
            "tarjan.nodes",
        ):
            assert any(name.startswith(p) for p in DIFF_COUNTER_PREFIXES)
