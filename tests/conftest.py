"""Shared test helpers.

The central oracle is :func:`assert_closed_forms_match_execution`: every
closed form the classifier produces is checked, value by value, against the
interpreter's recorded history of the same SSA name.  A classifier bug that
produces a *wrong* closed form cannot hide from it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional

import pytest

from repro.core.algebra import class_closed_form
from repro.core.classes import Invariant, Monotonic, Periodic, WrapAround
from repro.ir.interp import Interpreter
from repro.pipeline import AnalyzedProgram, analyze
from repro.symbolic.expr import ExprError


def analyze_src(source: str, **kwargs) -> AnalyzedProgram:
    return analyze(source, **kwargs)


def run_ssa(program: AnalyzedProgram, args: Optional[Dict[str, int]] = None, **kwargs):
    """Interpret the SSA form with history recording."""
    interp = Interpreter(program.ssa, record_history=True, **kwargs)
    return interp.run(args or {})


def classification_by_var(program: AnalyzedProgram, var: str, loop: str):
    """Classification of the loop-header phi of ``var`` at ``loop``."""
    return program.classification(program.ssa_name(var, loop))


def assert_closed_forms_match_execution(
    program: AnalyzedProgram,
    args: Optional[Dict[str, int]] = None,
    skip: Iterable[str] = (),
    min_checked: int = 1,
):
    """Run the program and compare every checkable closed form against the
    recorded value history of its SSA name.

    Checks names classified in *top-level* loops (a nested loop's closed
    form is relative to values that change per outer iteration, which a
    single flat history cannot be segmented against here).  Names whose
    form references opaque invariants are skipped.  Wrap-around and
    periodic classifications are checked through ``value_at``.
    """
    args = args or {}
    result = run_ssa(program, args)
    env: Dict[str, Fraction] = {k: Fraction(v) for k, v in args.items()}
    for name, values in result.value_history.items():
        if len(values) == 1:
            env.setdefault(name, Fraction(values[0]))
    for name, value in result.scalars.items():
        env.setdefault(name, Fraction(value))

    checked = 0
    skip = set(skip)
    for header, summary in program.result.loops.items():
        if summary.loop.parent is not None:
            continue  # only top-level loops: see docstring
        latches = summary.loop.latches
        for name, cls in summary.classifications.items():
            if name in skip or name not in result.value_history:
                continue
            # closed forms are indexed by loop iteration; the recorded
            # history is indexed by *occurrence*: they only align for
            # definitions executed on every iteration
            block = program.result._def_block.get(name)
            if block is None or not all(
                program.domtree.dominates(block, latch) for latch in latches
            ):
                continue
            defining = program.result.defining_loop(name)
            if defining is None or defining.header != summary.label:
                continue  # exit-value view of an inner name
            history = result.value_history[name]
            for h, observed in enumerate(history):
                expected = cls.value_at(h)
                if expected is None:
                    break
                if any(s.startswith("$k") for s in expected.free_symbols()):
                    break
                try:
                    predicted = expected.evaluate(env)
                except ExprError:
                    break
                assert predicted == observed, (
                    f"{name} (classified {cls.describe()}): iteration {h} "
                    f"predicted {predicted}, observed {observed}"
                )
            else:
                if history and cls.value_at(0) is not None:
                    checked += 1

            if isinstance(cls, Monotonic):
                direction = cls.direction
                pairs = zip(history, history[1:])
                for earlier, later in pairs:
                    if direction > 0:
                        assert later >= earlier, f"{name} not non-decreasing"
                        if cls.strict:
                            assert later > earlier, f"{name} not strictly increasing"
                    else:
                        assert later <= earlier, f"{name} not non-increasing"
                        if cls.strict:
                            assert later < earlier, f"{name} not strictly decreasing"
                checked += 1
    assert checked >= min_checked, f"only {checked} closed forms were checkable"
    return result
