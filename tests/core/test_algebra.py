"""Unit tests for the operator algebra (paper section 5.1)."""

from fractions import Fraction

import pytest

from repro.core.algebra import (
    cf_to_class,
    class_closed_form,
    cls_add,
    cls_mul,
    cls_neg,
    cls_scale,
    cls_sub,
    iv_direction,
    iv_is_strict,
)
from repro.core.classes import (
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.symbolic.closedform import ClosedForm
from repro.symbolic.expr import Expr

L = "L1"


def inv(value):
    return Invariant(Expr.const(value) if isinstance(value, int) else Expr.sym(value), loop=L)


def iv(init, step):
    return InductionVariable(L, ClosedForm.linear(init, step))


def wrap(pre, inner):
    return WrapAround(L, 1, inner, (Expr.const(pre),))


def periodic(*values):
    return Periodic(L, tuple(Expr.const(v) for v in values))


def mono(direction=1, strict=False):
    return Monotonic(L, direction, strict, family="k")


class TestAdd:
    def test_inv_plus_inv(self):
        out = cls_add(L, inv(2), inv("n"))
        assert isinstance(out, Invariant)
        assert str(out.expr) == "2 + n"

    def test_iv_plus_inv(self):
        out = cls_add(L, iv(0, 1), inv(5))
        assert out.describe() == "(L1, 5, 1)"

    def test_iv_plus_iv(self):
        out = cls_add(L, iv(0, 1), iv(3, 2))
        assert out.describe() == "(L1, 3, 3)"

    def test_iv_minus_iv_collapses_to_invariant(self):
        out = cls_sub(L, iv(5, 2), iv(1, 2))
        assert isinstance(out, Invariant)
        assert out.expr == 4

    def test_wrap_plus_inv(self):
        out = cls_add(L, wrap(9, iv(-1, 1)), inv(10))
        assert isinstance(out, WrapAround)
        assert out.pre_values[0] == 19
        assert out.inner.describe() == "(L1, 9, 1)"

    def test_wrap_plus_iv(self):
        out = cls_add(L, wrap(9, iv(-1, 1)), iv(0, 2))
        assert isinstance(out, WrapAround)
        assert out.value_at(0) == 9
        assert out.value_at(3) == 2 + 6

    def test_wrap_plus_wrap(self):
        a = wrap(9, iv(-1, 1))
        b = WrapAround(L, 2, inv(0), (Expr.const(1), Expr.const(2)))
        out = cls_add(L, a, b)
        assert isinstance(out, WrapAround)
        assert out.order == 2
        assert out.value_at(0) == 10
        assert out.value_at(1) == 2
        assert out.value_at(5) == 4

    def test_wrap_collapse_after_add(self):
        # a wrap-around whose pre-value fits the inner sequence collapses
        # to the plain IV when the combinators re-simplify
        a = WrapAround(L, 1, iv(-1, 1), (Expr.const(-1),))
        out = cls_add(L, a, inv(1))
        assert isinstance(out, InductionVariable)
        assert out.describe() == "(L1, 0, 1)"

    def test_periodic_plus_inv(self):
        out = cls_add(L, periodic(1, 2), inv(10))
        assert isinstance(out, Periodic)
        assert [v.constant_value() for v in out.values] == [11, 12]

    def test_periodic_plus_periodic_lcm(self):
        out = cls_add(L, periodic(0, 1), periodic(0, 10, 20))
        assert isinstance(out, Periodic)
        assert out.period == 6

    def test_periodic_plus_iv_unknown(self):
        assert isinstance(cls_add(L, periodic(1, 2), iv(0, 1)), Unknown)

    def test_mono_plus_inv(self):
        out = cls_add(L, mono(1, True), inv("n"))
        assert isinstance(out, Monotonic) and out.strict

    def test_mono_plus_mono_same_direction(self):
        out = cls_add(L, mono(1, False), mono(1, True))
        assert isinstance(out, Monotonic) and out.strict

    def test_mono_plus_mono_opposite(self):
        assert isinstance(cls_add(L, mono(1), mono(-1)), Unknown)

    def test_mono_plus_compatible_iv(self):
        out = cls_add(L, mono(1, False), iv(0, 2))
        assert isinstance(out, Monotonic) and out.strict

    def test_mono_plus_opposing_iv(self):
        assert isinstance(cls_add(L, mono(1), iv(0, -1)), Unknown)

    def test_unknown_propagates(self):
        assert isinstance(cls_add(L, Unknown(), iv(0, 1)), Unknown)

    def test_commutes(self):
        # the dispatcher must not care about operand order
        assert not isinstance(cls_add(L, inv(10), wrap(9, iv(-1, 1))), Unknown)
        assert not isinstance(cls_add(L, inv(10), periodic(1, 2)), Unknown)
        assert not isinstance(cls_add(L, inv(10), mono()), Unknown)


class TestScaleMulNeg:
    def test_neg_iv(self):
        assert cls_neg(L, iv(1, 2)).describe() == "(L1, -1, -2)"

    def test_scale_by_zero(self):
        out = cls_scale(L, mono(), Expr.zero())
        assert isinstance(out, Invariant) and out.expr.is_zero

    def test_scale_periodic_symbolic(self):
        out = cls_scale(L, periodic(1, 2), Expr.sym("c"))
        assert isinstance(out, Periodic)
        assert str(out.values[1]) == "2*c"

    def test_scale_mono_negative(self):
        out = cls_scale(L, mono(1, True), Expr.const(-3))
        assert isinstance(out, Monotonic)
        assert out.direction == -1 and out.strict

    def test_scale_mono_symbolic_unknown(self):
        assert isinstance(cls_scale(L, mono(), Expr.sym("c")), Unknown)

    def test_mul_iv_iv_polynomial(self):
        out = cls_mul(L, iv(1, 2), iv(-5, 3))
        assert isinstance(out, InductionVariable)
        assert out.form.degree == 2
        assert out.value_at(2) == 5  # (1+4)(-5+6) = 5

    def test_mul_poly_geo_unknown(self):
        h = InductionVariable(L, ClosedForm.linear(0, 1))
        g = InductionVariable(L, ClosedForm([], {2: 1}))
        assert isinstance(cls_mul(L, h, g), Unknown)

    def test_mul_wrap_by_const(self):
        out = cls_mul(L, inv(2), wrap(9, iv(-1, 1)))
        assert isinstance(out, WrapAround)
        assert out.value_at(0) == 18

    def test_mul_mono_mono_unknown(self):
        assert isinstance(cls_mul(L, mono(), mono()), Unknown)


class TestHelpers:
    def test_cf_to_class(self):
        assert isinstance(cf_to_class(L, ClosedForm.invariant(3)), Invariant)
        assert isinstance(cf_to_class(L, ClosedForm.linear(0, 1)), InductionVariable)

    def test_class_closed_form(self):
        assert class_closed_form(inv(3)) is not None
        assert class_closed_form(mono()) is None
        assert class_closed_form(Unknown()) is None

    def test_iv_direction(self):
        assert iv_direction(iv(0, 2)) == 1
        assert iv_direction(iv(0, -2)) == -1
        assert iv_direction(inv(5)) == 0
        assert iv_direction(mono()) is None

    def test_iv_is_strict(self):
        assert iv_is_strict(iv(0, 1))
        assert not iv_is_strict(iv(0, 0))
        assert not iv_is_strict(inv(5))
