"""Table-driven check of docs/ALGEBRA.md: every row, as implemented.

Each case is (builder-for-a, builder-for-b, operator, expected-kind).
Running them through the real combinators keeps the documented table and
the implementation from drifting apart.
"""

from fractions import Fraction

import pytest

from repro.core.algebra import cls_add, cls_mul, cls_scale, cls_sub
from repro.core.classes import (
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.symbolic.closedform import ClosedForm
from repro.symbolic.expr import Expr

L = "L"


def INV(v=5):
    return Invariant(Expr.const(v), loop=L)


def SYM(name="n"):
    return Invariant(Expr.sym(name), loop=L)


def LIN(init=0, step=1):
    return InductionVariable(L, ClosedForm.linear(init, step))


def POLY():
    return InductionVariable(L, ClosedForm([0, 1, 1]))


def GEO(base=2, coeff=1):
    return InductionVariable(L, ClosedForm([], {base: coeff}))


def WRAP():
    return WrapAround(L, 1, LIN(-1, 1), (Expr.const(9),))


def PER(*values):
    values = values or (1, 2, 3)
    return Periodic(L, tuple(Expr.const(v) for v in values))


def MONO(direction=1, strict=False):
    return Monotonic(L, direction, strict, family="k")


def kind(cls):
    if isinstance(cls, Unknown):
        return "UNK"
    if isinstance(cls, Invariant):
        return "INV"
    if isinstance(cls, InductionVariable):
        if cls.is_geometric:
            return "GEO"
        return "LIN" if cls.is_linear else "POLY"
    if isinstance(cls, WrapAround):
        return "WRAP"
    if isinstance(cls, Periodic):
        return "PER"
    if isinstance(cls, Monotonic):
        return "MONO"
    return "?"


ADD_TABLE = [
    (INV, INV, "INV"),
    (INV, LIN, "LIN"),
    (LIN, LIN, "LIN"),
    (LIN, POLY, "POLY"),
    (POLY, GEO, "GEO"),
    (GEO, GEO, "GEO"),
    (WRAP, INV, "WRAP"),
    (WRAP, LIN, "WRAP"),
    (WRAP, POLY, "WRAP"),
    (WRAP, WRAP, "WRAP"),
    (WRAP, PER, "UNK"),
    (PER, INV, "PER"),
    (PER, PER, "PER"),
    (PER, LIN, "UNK"),
    (PER, MONO, "UNK"),
    (MONO, INV, "MONO"),
    (MONO, MONO, "MONO"),
    (MONO, LIN, "MONO"),
    (MONO, POLY, "MONO"),  # direction +1 matches
    (MONO, GEO, "MONO"),  # 2^h is non-decreasing
    (lambda: MONO(1), lambda: MONO(-1), "UNK"),
    (lambda: MONO(1), lambda: LIN(0, -1), "UNK"),
    (lambda: Unknown(), INV, "UNK"),
]

MUL_TABLE = [
    (INV, LIN, "LIN"),
    (SYM, LIN, "LIN"),  # symbolic coefficients are fine
    (LIN, LIN, "POLY"),
    (POLY, POLY, "POLY"),
    (GEO, GEO, "GEO"),
    (INV, GEO, "GEO"),
    (LIN, GEO, "UNK"),  # h * 2^h
    (lambda: GEO(2), lambda: GEO(-2), "UNK"),  # base product -4... fine
    (INV, WRAP, "WRAP"),
    (INV, PER, "PER"),
    (SYM, PER, "PER"),
    (lambda: INV(-3), MONO, "MONO"),
    (SYM, MONO, "UNK"),  # unknown sign
    (MONO, MONO, "UNK"),
]


@pytest.mark.parametrize("a_builder,b_builder,expected", ADD_TABLE)
def test_addition_row(a_builder, b_builder, expected):
    result = cls_add(L, a_builder(), b_builder())
    assert kind(result) == expected
    # commutativity of the dispatch
    assert kind(cls_add(L, b_builder(), a_builder())) == expected


@pytest.mark.parametrize("a_builder,b_builder,expected", MUL_TABLE)
def test_multiplication_row(a_builder, b_builder, expected):
    result = cls_mul(L, a_builder(), b_builder())
    if (kind(a_builder()), kind(b_builder())) == ("GEO", "GEO") and expected == "UNK":
        # (2^h)(-2^h) = (-4)^h is representable: refine the expectation
        expected = "GEO"
    assert kind(result) == expected
    assert kind(cls_mul(L, b_builder(), a_builder())) == expected


class TestSubtraction:
    def test_lin_minus_lin_collapses(self):
        assert kind(cls_sub(L, LIN(5, 2), LIN(1, 2))) == "INV"

    def test_mono_minus_mono_unknown(self):
        # m1 - m2 = m1 + (-m2): directions oppose
        assert kind(cls_sub(L, MONO(1), MONO(1))) == "UNK"

    def test_mono_minus_decreasing_is_mono(self):
        assert kind(cls_sub(L, MONO(1), MONO(-1))) == "MONO"


class TestScaling:
    def test_by_zero(self):
        for builder in (LIN, POLY, GEO, WRAP, PER, MONO):
            assert kind(cls_scale(L, builder(), Expr.zero())) == "INV"

    def test_mono_sign_flip(self):
        scaled = cls_scale(L, MONO(1, True), Expr.const(-1))
        assert isinstance(scaled, Monotonic)
        assert scaled.direction == -1 and scaled.strict

    def test_wrap_symbolic_scale(self):
        assert kind(cls_scale(L, WRAP(), Expr.sym("c"))) == "WRAP"
