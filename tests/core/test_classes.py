"""Tests for the classification lattice objects."""

from fractions import Fraction

import pytest

from repro.core.classes import (
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
    closedform_sign,
    closedform_strict_sign,
)
from repro.symbolic.closedform import ClosedForm
from repro.symbolic.expr import Expr


def sym(name):
    return Expr.sym(name)


class TestInvariant:
    def test_value_constant_over_h(self):
        inv = Invariant(sym("n"))
        assert inv.value_at(0) == sym("n")
        assert inv.value_at(99) == sym("n")
        assert inv.delayed() is inv


class TestInductionVariable:
    def test_linear_accessors(self):
        iv = InductionVariable("L1", ClosedForm.linear(sym("n"), 2))
        assert iv.is_linear and not iv.is_polynomial and not iv.is_geometric
        assert iv.init == sym("n")
        assert iv.step == 2
        assert iv.describe() == "(L1, n, 2)"

    def test_polynomial_describe(self):
        iv = InductionVariable("L14", ClosedForm([2, Fraction(3, 2), Fraction(1, 2)]))
        assert iv.is_polynomial
        assert iv.describe() == "(L14, 2, 3/2, 1/2)"

    def test_geometric(self):
        iv = InductionVariable("L14", ClosedForm([-1], {2: 4}))
        assert iv.is_geometric
        assert iv.value_at(2) == 15

    def test_delayed_shifts(self):
        iv = InductionVariable("L", ClosedForm.linear(0, 3))
        assert iv.delayed().value_at(5) == iv.value_at(4)

    def test_direction(self):
        assert InductionVariable("L", ClosedForm.linear(0, 3)).direction() == 1
        assert InductionVariable("L", ClosedForm.linear(0, -3)).direction() == -1
        assert InductionVariable("L", ClosedForm.linear(0, sym("s"))).direction() is None
        assert InductionVariable("L", ClosedForm([0, 1, 1])).direction() == 1


class TestWrapAround:
    def make(self, order=1):
        inner = InductionVariable("L", ClosedForm.linear(-1, 1))
        pre = tuple(sym(f"p{k}") for k in range(order))
        return WrapAround("L", order, inner, pre)

    def test_value_at(self):
        w = self.make(2)
        assert w.value_at(0) == sym("p0")
        assert w.value_at(1) == sym("p1")
        assert w.value_at(2) == 1
        assert w.value_at(5) == 4

    def test_simplify_no_collapse(self):
        w = self.make(1)
        assert w.simplify() is w

    def test_simplify_collapses_when_init_fits(self):
        inner = InductionVariable("L", ClosedForm.linear(0, 1))
        w = WrapAround("L", 1, inner, (Expr.zero(),))
        assert w.simplify() is inner

    def test_validation(self):
        inner = Invariant(Expr.zero())
        with pytest.raises(ValueError):
            WrapAround("L", 0, inner, ())
        with pytest.raises(ValueError):
            WrapAround("L", 2, inner, (Expr.zero(),))

    def test_describe(self):
        assert "order 2" in self.make(2).describe()


class TestPeriodic:
    def test_values_cycle(self):
        p = Periodic("L", (sym("a"), sym("b"), sym("c")))
        assert p.period == 3
        assert p.value_at(0) == sym("a")
        assert p.value_at(4) == sym("b")

    def test_delayed_rotates(self):
        p = Periodic("L", (sym("a"), sym("b"), sym("c")))
        d = p.delayed()
        for h in range(1, 7):
            assert d.value_at(h) == p.value_at(h - 1)

    def test_simplify_constant(self):
        p = Periodic("L", (sym("a"), sym("a")))
        assert isinstance(p.simplify(), Invariant)

    def test_needs_period_two(self):
        with pytest.raises(ValueError):
            Periodic("L", (sym("a"),))


class TestMonotonic:
    def test_fields(self):
        m = Monotonic("L", 1, True, family="k.2")
        assert m.direction == 1 and m.strict
        assert "strictly increasing" in m.describe()
        assert Monotonic("L", -1, False).describe().endswith("decreasing)")

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            Monotonic("L", 0, False)

    def test_no_closed_form(self):
        assert Monotonic("L", 1, False).closed_form() is None
        assert Monotonic("L", 1, False).value_at(3) is None

    def test_equality_ignores_family(self):
        assert Monotonic("L", 1, True, family="a") == Monotonic("L", 1, True, family="b")


class TestUnknown:
    def test_bottom(self):
        u = Unknown("why")
        assert u.value_at(0) is None
        assert u == Unknown("other reason")
        assert "why" in u.describe()


class TestSigns:
    def test_closedform_sign(self):
        assert closedform_sign(ClosedForm.zero()) == 0
        assert closedform_sign(ClosedForm([1, 2])) == 1
        assert closedform_sign(ClosedForm([-1, -2])) == -1
        assert closedform_sign(ClosedForm([1, -2])) is None
        assert closedform_sign(ClosedForm([sym("x")])) is None
        assert closedform_sign(ClosedForm([0], {2: 1})) == 1
        # negative base alternates sign: unprovable
        assert closedform_sign(ClosedForm([], {-2: 1})) is None

    def test_strict_sign(self):
        assert closedform_strict_sign(ClosedForm([1, 1])) == 1
        assert closedform_strict_sign(ClosedForm([0, 1])) is None  # zero at h=0
        assert closedform_strict_sign(ClosedForm([-1, -1])) == -1
        assert closedform_strict_sign(ClosedForm.zero()) is None
