"""Edge cases of the classifier: path explosion, nonlinear cycles,
grandchild exit values, degenerate SCR shapes."""

from tests.conftest import analyze_src, classification_by_var
from repro.core.classes import (
    BranchDependent,
    InductionVariable,
    Invariant,
    Monotonic,
    Unknown,
)


class TestPathExplosion:
    def test_many_conditionals_give_up_gracefully(self):
        """More than MAX_PATHS control-flow paths: classification must
        degrade to Unknown, never crash or mis-classify."""
        body = []
        for k in range(7):  # 2^7 = 128 paths > MAX_PATHS = 32
            body.append(f"  if A[{k}] > 0 then")
            body.append(f"    s = s + {k + 1}")
            body.append("  else")
            body.append(f"    s = s + {k + 2}")
            body.append("  endif")
        source = "s = 0\nL1: for i = 1 to n do\n" + "\n".join(body) + "\nendfor"
        p = analyze_src(source)
        s = classification_by_var(p, "s", "L1")
        # all increments positive: the monotonic rules may still succeed if
        # the path count stays in bounds; otherwise Unknown -- both are
        # sound, but a linear IV claim would be wrong
        assert not isinstance(s, InductionVariable)

    def test_moderate_conditionals_still_monotonic(self):
        body = []
        for k in range(4):  # 16 paths <= MAX_PATHS
            body.append(f"  if A[{k}] > 0 then")
            body.append(f"    s = s + {k + 1}")
            body.append("  else")
            body.append(f"    s = s + {k + 2}")
            body.append("  endif")
        source = "s = 0\nL1: for i = 1 to n do\n" + "\n".join(body) + "\nendfor"
        p = analyze_src(source)
        s = classification_by_var(p, "s", "L1")
        assert isinstance(s, BranchDependent) and s.strict
        assert s.direction == 1


class TestNonlinearCycles:
    def test_header_times_header(self):
        p = analyze_src(
            "x = 2\nL1: loop\n  x = x * x\n  if x > n then\n    break\n  endif\nendloop"
        )
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, Unknown)

    def test_division_in_cycle(self):
        p = analyze_src(
            "x = 1000\nL1: loop\n  x = x / 2\n  if x < 1 then\n    break\n  endif\nendloop"
        )
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, Unknown)

    def test_load_in_cycle(self):
        p = analyze_src(
            "x = 0\nL1: for i = 1 to n do\n  x = A[x] + 1\nendfor"
        )
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, Unknown)

    def test_symbolic_multiplier(self):
        p = analyze_src(
            "x = 1\nL1: for i = 1 to n do\n  x = x * m\nendfor"
        )
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, Unknown)  # geometric base must be a known int

    def test_zero_multiplier_wraparound(self):
        """x = x*0 + i: the carried value ignores the header -> wrap-around."""
        from repro.core.classes import WrapAround

        p = analyze_src(
            "x = 99\nL1: for i = 1 to n do\n  B[x] = i\n  x = x * 0 + i\nendfor",
            optimize=False,
        )
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, (WrapAround, InductionVariable, Unknown))
        if isinstance(x, WrapAround):
            assert str(x.pre_values[0]) == "x.1"


class TestGrandchildExitValues:
    def test_exit_value_through_two_levels(self):
        """The outermost loop reads a value defined two loops down."""
        p = analyze_src(
            "s = 0\nL1: for i = 1 to 3 do\n"
            "  L2: for j = 1 to 4 do\n"
            "    L3: for k = 1 to 5 do\n      s = s + 1\n    endfor\n"
            "  endfor\nendfor\nreturn s"
        )
        s1 = classification_by_var(p, "s", "L1")
        assert isinstance(s1, InductionVariable)
        assert s1.step == 20
        s3 = p.ssa_name("s", "L3")
        # the exit value of the innermost phi, resolved at L1's exit
        value = p.result.exit_value("L1", s3)
        assert value is not None and value.is_constant

    def test_sibling_loops_feed_each_other(self):
        p = analyze_src(
            "s = 0\nL1: for i = 1 to 3 do\n"
            "  L2: for j = 1 to 2 do\n    s = s + 1\n  endfor\n"
            "  L3: for k = 1 to 5 do\n    s = s + 1\n  endfor\n"
            "endfor\nreturn s"
        )
        s1 = classification_by_var(p, "s", "L1")
        assert isinstance(s1, InductionVariable)
        assert s1.step == 7
        from tests.conftest import run_ssa

        assert run_ssa(p).return_value == 21


class TestDegenerateShapes:
    def test_single_block_self_loop(self):
        from repro.ir.parser import parse_function
        from repro.core.driver import classify_function

        f = parse_function(
            """
func f(n) {
entry:
  %i.0 = copy 0
  jump L
L:
  %i.1 = phi [entry: %i.0, L: %i.2]
  %i.2 = add %i.1, 1
  %c = cmp %i.2 < %n
  branch %c, L, exit
exit:
  return
}
"""
        )
        result = classify_function(f)
        # no constant propagation here: the init stays symbolic (i.0)
        assert result.classification_of("i.1").describe() == "(L, i.0, 1)"

    def test_empty_loop_body(self):
        p = analyze_src("L1: for i = 1 to n do\n  x = 1\nendfor")
        assert classification_by_var(p, "i", "L1").describe() == "(L1, 1, 1)"

    def test_two_interleaved_families(self):
        p = analyze_src(
            "a = 0\nb = 100\nL1: loop\n  a = a + 1\n  b = b - 2\n"
            "  if a > n then\n    break\n  endif\nendloop"
        )
        assert classification_by_var(p, "a", "L1").describe() == "(L1, 0, 1)"
        assert classification_by_var(p, "b", "L1").describe() == "(L1, 100, -2)"

    def test_cycle_between_two_loops_headers(self):
        """A value that cycles through two sibling loops of a parent."""
        p = analyze_src(
            "x = 0\nL1: for i = 1 to 3 do\n"
            "  L2: for j = 1 to 2 do\n    x = x + 1\n  endfor\n"
            "  L3: for k = 1 to 2 do\n    x = x * 1\n  endfor\n"
            "endfor\nreturn x"
        )
        x1 = classification_by_var(p, "x", "L1")
        # x grows by 2 per outer iteration (the L3 loop is identity)
        assert isinstance(x1, InductionVariable)
        assert x1.step == 2
