"""Linear induction variable detection (paper sections 2-3)."""

import pytest

from tests.conftest import (
    analyze_src,
    assert_closed_forms_match_execution,
    classification_by_var,
)
from repro.core.classes import InductionVariable, Invariant, Unknown


class TestBasicLinear:
    def test_simple_counter(self):
        p = analyze_src("i = 0\nL1: while i < n do\n  i = i + 1\nendwhile")
        iv = classification_by_var(p, "i", "L1")
        assert isinstance(iv, InductionVariable)
        assert iv.describe() == "(L1, 0, 1)"
        assert_closed_forms_match_execution(p, {"n": 10})

    def test_decrement(self):
        p = analyze_src("i = n\nL1: while i > 0 do\n  i = i - 2\nendwhile")
        iv = classification_by_var(p, "i", "L1")
        assert iv.step == -2

    def test_symbolic_init_and_step(self):
        p = analyze_src("i = n0\nL1: while i < n do\n  i = i + s\nendwhile")
        iv = classification_by_var(p, "i", "L1")
        assert str(iv.init) == "n0"
        assert str(iv.step) == "s"

    def test_mutual_family_fig1(self):
        """Figure 1 (loop L7): i = j + c; j = i + k."""
        p = analyze_src(
            "j = jn\nL7: loop\n  i = j + c\n  j = i + k\n  if j > x then\n    break\n  endif\nendloop"
        )
        j2 = classification_by_var(p, "j", "L7")
        assert j2.describe() == "(L7, jn, c + k)"
        i = p.classification(p.ssa_names("i")[0])
        assert str(i.init) == "c + jn"
        assert str(i.step) == "c + k"

    def test_multiple_increments_accumulate(self):
        p = analyze_src(
            "i = 0\nL1: loop\n  i = i + 1\n  i = i + 2\n  i = i + 3\n  if i > n then\n    break\n  endif\nendloop"
        )
        iv = classification_by_var(p, "i", "L1")
        assert iv.step == 6
        assert_closed_forms_match_execution(p, {"n": 30})

    def test_subtraction_of_invariant(self):
        p = analyze_src("i = 100\nL1: while i > 0 do\n  i = i - k\nendwhile")
        iv = classification_by_var(p, "i", "L1")
        assert str(iv.step) == "-k"

    def test_n_minus_i_is_not_linear(self):
        """The paper's exclusion: 'no i = n - i assignments'."""
        p = analyze_src(
            "i = 0\nc = 0\nL1: loop\n  i = n - i\n  c = c + 1\n  if c > m then\n    break\n  endif\nendloop"
        )
        iv = classification_by_var(p, "i", "L1")
        assert not isinstance(iv, InductionVariable)

    def test_fig3_equal_offsets_through_branches(self):
        """Figure 3 (loop L8): both arms add 2 -> still a linear family."""
        p = analyze_src(
            "i = 1\nL8: loop\n  if x > 0 then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n"
            "  if i > 100 then\n    break\n  endif\nendloop"
        )
        header = classification_by_var(p, "i", "L8")
        assert header.describe() == "(L8, 1, 2)"
        # the endif phi and both arms are members with init 3
        members = [p.classification(n) for n in p.ssa_names("i")]
        member_inits = {
            str(m.init) for m in members if isinstance(m, InductionVariable)
        }
        assert member_inits == {"1", "3"}
        assert_closed_forms_match_execution(p, {"x": 1})

    def test_unequal_offsets_not_linear(self):
        p = analyze_src(
            "i = 1\nL8: loop\n  if x > 0 then\n    i = i + 2\n  else\n    i = i + 3\n  endif\n"
            "  if i > 100 then\n    break\n  endif\nendloop"
        )
        header = classification_by_var(p, "i", "L8")
        assert not isinstance(header, InductionVariable)

    def test_for_loop_var(self):
        p = analyze_src("L1: for i = 5 to n by 3 do\n  x = i\nendfor")
        iv = classification_by_var(p, "i", "L1")
        assert iv.describe() == "(L1, 5, 3)"

    def test_downto(self):
        p = analyze_src("L1: for i = n downto 1 do\n  x = i\nendfor")
        iv = classification_by_var(p, "i", "L1")
        assert str(iv.init) == "n"
        assert iv.step == -1


class TestDerivedLinear:
    def test_affine_of_iv(self):
        p = analyze_src("L1: for i = 0 to n do\n  j = 3 * i + 7\n  A[j] = 0\nendfor")
        j = p.classification(p.ssa_names("j")[0])
        assert isinstance(j, InductionVariable)
        assert j.describe() == "(L1, 7, 3)"

    def test_difference_of_ivs(self):
        p = analyze_src(
            "L1: for i = 0 to n do\n  j = 2 * i\n  k = j - i\n  A[k] = 0\nendfor"
        )
        k = p.classification(p.ssa_names("k")[0])
        assert k.describe() == "(L1, 0, 1)"

    def test_iv_minus_itself_invariant(self):
        p = analyze_src("L1: for i = 0 to n do\n  z = i - i\n  A[z] = 0\nendfor")
        z = p.classification(p.ssa_names("z")[0])
        assert isinstance(z, Invariant)
        assert z.expr == 0

    def test_negation(self):
        p = analyze_src("L1: for i = 0 to n do\n  j = -i\n  A[j] = 0\nendfor")
        j = p.classification(p.ssa_names("j")[0])
        assert j.describe() == "(L1, 0, -1)"

    def test_scaled_by_symbolic_invariant(self):
        p = analyze_src("L1: for i = 0 to n do\n  j = s * i\n  A[j] = 0\nendfor")
        j = p.classification(p.ssa_names("j")[0])
        assert isinstance(j, InductionVariable)
        assert str(j.step) == "s"


class TestInvariants:
    def test_loop_invariant_value(self):
        p = analyze_src("L1: for i = 0 to n do\n  x = a + b\n  A[x] = i\nendfor")
        x = p.classification(p.ssa_names("x")[0])
        assert isinstance(x, Invariant)
        assert str(x.expr) == "a + b"

    def test_conditional_reset_needs_constant_propagation(self):
        """x reset to its own initial value: the SCR analysis alone cannot
        see the equality (the reset path is independent of the header phi);
        the paper's answer is to run constant propagation first, after
        which the merge folds away entirely."""
        source = (
            "x = 5\nL1: for i = 0 to n do\n  if c > 0 then\n    x = 5\n  endif\n  A[x] = i\nendfor"
        )
        unoptimized = analyze_src(source, optimize=False)
        x = classification_by_var(unoptimized, "x", "L1")
        assert isinstance(x, Unknown)

        optimized = analyze_src(source)
        # after SCCP + simplification the phi for x is gone: the store
        # subscript is the literal 5
        from repro.ir.instructions import Store
        from repro.ir.values import Const

        stores = [
            inst for b in optimized.ssa for inst in b if isinstance(inst, Store)
        ]
        assert stores[0].indices == [Const(5)]

    def test_pure_copy_cycle_is_invariant(self):
        """x = phi(init, x) exactly (unconditional self-copy)."""
        p = analyze_src(
            "x = v\nL1: for i = 0 to n do\n  x = x + 0\n  A[x] = i\nendfor",
            optimize=False,
        )
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, (Invariant, InductionVariable))
        if isinstance(x, InductionVariable):
            assert x.step == 0
