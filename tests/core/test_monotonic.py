"""Monotonic variable detection (paper section 4.4, Figure 10)."""

from tests.conftest import analyze_src, assert_closed_forms_match_execution, classification_by_var
from repro.core.classes import BranchDependent, Monotonic, Unknown


class TestBasicMonotonic:
    def test_conditional_increment_pack(self):
        """The pack idiom of loop L15: k incremented under a condition."""
        p = analyze_src(
            "k = 0\nL15: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n    B[k] = A[i]\n  endif\nendfor"
        )
        k = classification_by_var(p, "k", "L15")
        assert isinstance(k, BranchDependent)
        assert k.direction == 1 and not k.strict
        assert (k.min_step(), k.max_step()) == (0, 1)

    def test_figure6_strictly_increasing(self):
        """Figure 6 (loop L16): +1 or +2 on every path -> strictly."""
        p = analyze_src(
            "k = 0\nL16: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  else\n    k = k + 2\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L16")
        assert isinstance(k, BranchDependent)
        assert k.strict
        assert (k.min_step(), k.max_step()) == (1, 2)
        assert_closed_forms_match_execution(p, {"n": 6})

    def test_figure10_member_strictness(self):
        """k3 strictly increasing; k2, k4 merely non-decreasing."""
        p = analyze_src(
            "k = 0\nL15: for i = 1 to n do\n  F[k] = A[i]\n  if A[i] > 0 then\n"
            "    k = k + 1\n    B[k] = A[i]\n  endif\n  G[i] = F[k]\nendfor"
        )
        classes = {n: p.classification(n) for n in p.ssa_names("k")}
        by_strict = {
            name: cls.strict
            for name, cls in classes.items()
            if isinstance(cls, (Monotonic, BranchDependent))
        }
        assert sum(by_strict.values()) == 1  # exactly k3
        assert len(by_strict) == 3
        # all in one family
        families = {
            cls.family
            for cls in classes.values()
            if isinstance(cls, (Monotonic, BranchDependent))
        }
        assert len(families) == 1

    def test_decreasing(self):
        p = analyze_src(
            "k = 100\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k - 2\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert isinstance(k, BranchDependent)
        assert k.direction == -1 and not k.strict
        assert (k.min_step(), k.max_step()) == (-2, 0)

    def test_strictly_decreasing(self):
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k - 1\n  else\n    k = k - 3\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert k.direction == -1 and k.strict
        assert_closed_forms_match_execution(p, {"n": 5})

    def test_mixed_signs_branch_dependent(self):
        """+1 or -1: not monotonic, but the step set is still known."""
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  else\n    k = k - 1\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert isinstance(k, BranchDependent)
        assert k.direction is None and not k.strict
        assert (k.min_step(), k.max_step()) == (-1, 1)

    def test_symbolic_increment_no_direction(self):
        """Without sign information on s, no direction -- but the per-path
        step set {0, s} is still recorded."""
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + s\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert isinstance(k, BranchDependent)
        assert k.direction is None
        assert k.min_step() is None  # symbolic step: no numeric bound

    def test_increment_by_iv(self):
        """k += i with i a non-negative IV: monotonic (step varies)."""
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + i\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert isinstance(k, Monotonic)
        assert k.direction == 1


class TestMultiplicative:
    def test_doubling_under_condition(self):
        """'Multiply operations can also be allowed, such as 2*i+i, as long
        as the initial value of i is known.'"""
        p = analyze_src(
            "k = 1\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k * 2 + k\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert isinstance(k, Monotonic)
        assert k.direction == 1

    def test_multiplicative_with_unknown_init(self):
        p = analyze_src(
            "k = k0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k * 3\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert isinstance(k, Unknown)

    def test_execution_check(self):
        p = analyze_src(
            "k = 1\nL1: for i = 1 to n do\n  if i % 3 == 0 then\n    k = k * 2\n  endif\n  B[k] = i\nendfor"
        )
        k = classification_by_var(p, "k", "L1")
        assert isinstance(k, Monotonic)
        assert_closed_forms_match_execution(p, {"n": 9})


class TestAlgebraCombinations:
    def test_monotonic_plus_invariant(self):
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\n  j = k + 5\n  B[j] = i\nendfor"
        )
        j = p.classification(p.ssa_names("j")[0])
        assert isinstance(j, Monotonic) and j.direction == 1

    def test_monotonic_plus_iv(self):
        """'adding a monotonic variable to an induction variable to get
        another monotonic variable' (section 5.1)."""
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\n  j = k + i\n  B[j] = i\nendfor"
        )
        j = p.classification(p.ssa_names("j")[0])
        assert isinstance(j, Monotonic)
        assert j.strict  # the IV part is strictly increasing

    def test_monotonic_times_negative_const(self):
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\n  j = k * -1\n  B[j] = i\nendfor"
        )
        j = p.classification(p.ssa_names("j")[0])
        assert isinstance(j, Monotonic) and j.direction == -1

    def test_monotonic_plus_opposing_iv_unknown(self):
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\n  j = k - i\n  B[j] = i\nendfor"
        )
        j = p.classification(p.ssa_names("j")[0])
        assert isinstance(j, Unknown)

    def test_unconditional_member_of_conditional_cycle_not_strict(self):
        """An unconditional computation that GVN reuses as a conditional
        phi input joins the cycle SCR -- but it is observed on *every*
        iteration, including those whose carried path bypasses it, so it
        must not inherit the conditional path's strictness.

        Here ``a = b + 2`` (every iteration) is the same value number as
        the conditional ``b = b + 2``; ``a`` stays constant whenever the
        branch is not taken, so it is increasing but NOT strictly.
        """
        p = analyze_src(
            "a = 0\nb = 0\nL1: for i = 1 to n do\n  a = b + 2\n"
            "  if i % 3 == 2 then\n    b = b + 2\n  endif\nendfor"
        )
        classes = [p.classification(name) for name in p.ssa_names("a")]
        monotonics = [cls for cls in classes if isinstance(cls, Monotonic)]
        assert monotonics, "in-loop a should classify as monotonic"
        for cls in monotonics:
            assert cls.direction == 1
            assert not cls.strict

    def test_arithmetic_drops_family(self):
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\n  j = k + 5\n  B[j] = i\nendfor"
        )
        j = p.classification(p.ssa_names("j")[0])
        assert j.family is None
