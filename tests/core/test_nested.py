"""Nested induction variables (paper section 5.3, Figures 7-9)."""

from fractions import Fraction

from tests.conftest import analyze_src, classification_by_var
from repro.core.classes import InductionVariable, Invariant, Unknown


class TestMultiLoop:
    def test_paper_section2_multiloop(self):
        """Section 2: i=(L5,2,2), j=(L6, i+1, 1), nested (L6,(L5,...),1)."""
        p = analyze_src(
            "i = 0\nL5: loop\n  i = i + 2\n  j = i\n  L6: loop\n    j = j + 1\n"
            "    if j > i + 10 then\n      break\n    endif\n  endloop\n"
            "  if i > n then\n    break\n  endif\nendloop"
        )
        i3 = p.classification([n for n in p.ssa_names("i") if n != p.ssa_name("i", "L5")][1 - 1])
        j2 = classification_by_var(p, "j", "L6")
        assert isinstance(j2, InductionVariable) and j2.is_linear
        assert j2.step == 1
        nested = p.result.nested_describe(p.ssa_name("j", "L6"))
        assert nested == "(L6, (L5, 2, 2), 1)"

    def test_inner_initial_value_varies_outer(self):
        p = analyze_src(
            "L1: for i = 1 to n do\n  L2: for j = i to n do\n    A[j] = i\n  endfor\nendfor"
        )
        j2 = classification_by_var(p, "j", "L2")
        assert isinstance(j2, InductionVariable)
        assert str(j2.init) == p.ssa_name("i", "L1")
        assert "(L1, 1, 1)" in p.result.nested_describe(p.ssa_name("j", "L2"))


class TestFig7and8:
    SOURCE = (
        "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n"
        "    if i > 100 then\n      break\n    endif\n    i = i + 1\n  endloop\n"
        "  k = k + 2\n  if k > 1000000 then\n    break\n  endif\nendloop"
    )

    def test_outer_family(self):
        p = analyze_src(self.SOURCE)
        k2 = classification_by_var(p, "k", "L17")
        assert k2.describe() == "(L17, 0, 204)"
        outer_members = {
            n: p.classification(n)
            for n in p.ssa_names("k")
            if p.result.defining_loop(n) and p.result.defining_loop(n).header == "L17"
        }
        inits = sorted(
            int(c.init.constant_value())
            for c in outer_members.values()
            if isinstance(c, InductionVariable)
        )
        assert inits == [0, 204]  # k2 and k5 (the paper also lists k6 = 202)

    def test_exitval_view_is_papers_k6(self):
        """The L17 summary holds the synthetic k6 = (L17, 202, 204)."""
        p = analyze_src(self.SOURCE)
        summary = p.result.loops["L17"]
        k_views = {
            name: cls
            for name, cls in summary.classifications.items()
            if name.startswith("k")
        }
        descriptions = {cls.describe() for cls in k_views.values()}
        assert "(L17, 202, 204)" in descriptions  # k4's exit value = paper's k6

    def test_inner_nested_tuple(self):
        p = analyze_src(self.SOURCE)
        assert p.result.nested_describe(p.ssa_name("k", "L18")) == "(L18, (L17, 0, 204), 2)"


class TestFig9Triangular:
    """The triangular nest that [EHLP92] found difficult."""

    SOURCE = (
        "j = 0\nL19: for i = 1 to n do\n  j = j + i\n"
        "  L20: for kk = 1 to i do\n    j = j + 1\n  endfor\nendfor"
    )

    def test_outer_quadratic_family(self):
        p = analyze_src(self.SOURCE)
        j2 = classification_by_var(p, "j", "L19")
        assert isinstance(j2, InductionVariable)
        # j2(h) = h^2 + h: 0, 2, 6, 12 ...
        assert j2.describe() == "(L19, 0, 1, 1)"
        j3 = p.classification(
            [
                n
                for n in p.ssa_names("j")
                if p.result.defining_loop(n)
                and p.result.defining_loop(n).header == "L19"
                and n != p.ssa_name("j", "L19")
            ][0]
        )
        # j3 = j2 + i = (h+1)^2: init 1 (the paper's j3 init is 1)
        assert j3.describe() == "(L19, 1, 2, 1)"

    def test_exit_value_is_quadratic_j6(self):
        p = analyze_src(self.SOURCE)
        summary = p.result.loops["L19"]
        descriptions = {
            cls.describe()
            for name, cls in summary.classifications.items()
            if name.startswith("j")
        }
        # the paper's j6 has initial value 2
        assert "(L19, 2, 3, 1)" in descriptions

    def test_inner_linear_with_quadratic_init(self):
        p = analyze_src(self.SOURCE)
        j4 = classification_by_var(p, "j", "L20")
        assert isinstance(j4, InductionVariable) and j4.is_linear
        assert j4.step == 1
        nested = p.result.nested_describe(p.ssa_name("j", "L20"))
        assert nested == "(L20, (L19, 1, 2, 1), 1)"

    def test_values_against_execution(self):
        """Gold standard: simulate and compare the quadratic closed form."""
        from tests.conftest import run_ssa

        p = analyze_src(self.SOURCE)
        result = run_ssa(p, {"n": 7})
        j2_name = p.ssa_name("j", "L19")
        j2 = p.classification(j2_name)
        history = result.value_history[j2_name]
        for h, observed in enumerate(history):
            assert j2.value_at(h).constant_value() == observed

    def test_pure_triangular_sum(self):
        """Without the j = j + i statement: j2 = (L19, 0, 1/2, 1/2)."""
        p = analyze_src(
            "j = 0\nL19: for i = 1 to n do\n  L20: for kk = 1 to i do\n    j = j + 1\n  endfor\nendfor"
        )
        j2 = classification_by_var(p, "j", "L19")
        assert j2.describe() == "(L19, 0, 1/2, 1/2)"


class TestUncountableInner:
    def test_unknown_inner_exit_poisons_outer(self):
        """'These must correspond to ... induction variables for which the
        exit value is unknown; the value can be treated as an unknown.'"""
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  L2: loop\n    k = k + 1\n"
            "    if A[k] > 0 then\n      break\n    endif\n  endloop\nendfor"
        )
        k_outer = classification_by_var(p, "k", "L1")
        assert isinstance(k_outer, Unknown)

    def test_countable_inner_with_geometric_value(self):
        """Exit values of geometric IVs with constant trips work too."""
        p = analyze_src(
            "x = 1\nL1: for i = 1 to n do\n  L2: for j = 1 to 3 do\n    x = x * 2\n  endfor\nendfor"
        )
        x_outer = classification_by_var(p, "x", "L1")
        assert isinstance(x_outer, InductionVariable)
        # per outer iteration x multiplies by 8
        assert x_outer.is_geometric
        assert [x_outer.value_at(h).constant_value() for h in range(3)] == [1, 8, 64]

    def test_geometric_inner_symbolic_trips_unknown(self):
        p = analyze_src(
            "x = 1\nL1: for i = 1 to n do\n  L2: for j = 1 to m do\n    x = x * 2\n  endfor\nendfor"
        )
        x_outer = classification_by_var(p, "x", "L1")
        # 2^m per iteration: the exit value needs b**m, unrepresentable
        assert isinstance(x_outer, Unknown)


class TestDeepNesting:
    def test_three_levels(self):
        p = analyze_src(
            "s = 0\nL1: for i = 1 to 4 do\n  L2: for j = 1 to 5 do\n"
            "    L3: for k = 1 to 6 do\n      s = s + 1\n    endfor\n  endfor\nendfor\nreturn s"
        )
        s_outer = classification_by_var(p, "s", "L1")
        assert isinstance(s_outer, InductionVariable)
        assert s_outer.step == 30
        from tests.conftest import run_ssa

        assert run_ssa(p).return_value == 120

    def test_triangular_three_levels(self):
        p = analyze_src(
            "s = 0\nL1: for i = 1 to n do\n  L2: for j = 1 to i do\n"
            "    L3: for k = 1 to j do\n      s = s + 1\n    endfor\n  endfor\nendfor\nreturn s"
        )
        s_outer = classification_by_var(p, "s", "L1")
        assert isinstance(s_outer, InductionVariable)
        # tetrahedral numbers: degree 3
        assert s_outer.form.degree == 3
        from tests.conftest import run_ssa

        # C(n+2, 3) for n = 6 -> C(8,3) = 56
        assert run_ssa(p, {"n": 6}).return_value == 56


class TestAssumptions:
    def test_symbolic_exit_values_carry_assumptions(self):
        """Paper-faithful caveat: a symbolic trip count like `n` assumes the
        loop actually runs max(0, n) times; the recorded assumption makes
        the validity condition explicit."""
        p = analyze_src(
            "s = 0\nL1: for i = 1 to n do\n  s = s + 2\nendfor\nreturn s"
        )
        assumptions = p.result.all_assumptions()
        assert "L1" in assumptions
        assert any("n" in a for a in assumptions["L1"])
        # the exit value 2*n is exactly right for n >= 0...
        s2 = p.ssa_name("s", "L1")
        assert str(p.result.exit_value("L1", s2)) == "2*n"
        # ...and the interpreter confirms the boundary of validity
        from tests.conftest import run_ssa

        assert run_ssa(p, {"n": 5}).return_value == 10
        assert run_ssa(p, {"n": 0}).return_value == 0   # 2*0: still fine
        assert run_ssa(p, {"n": -4}).return_value == 0  # NOT 2*(-4): assumption violated

    def test_constant_trip_loops_have_no_assumptions(self):
        p = analyze_src("s = 0\nL1: for i = 1 to 7 do\n  s = s + 2\nendfor")
        assert "L1" not in p.result.all_assumptions()
