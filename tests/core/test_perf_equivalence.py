"""Caching must never change results.

The performance layer (cached ``Function`` definition indexes, interned /
memoized ``Expr``) is semantically invisible: this test runs every program
it can find -- all string-literal programs embedded in ``examples/`` plus
the benchmark workload generators -- through ``classify_function`` with the
caches disabled and enabled, and asserts the ``describe()`` /
``nested_describe()`` output of every classified name is identical.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from benchmarks.workloads import (
    deep_chain_loop,
    dependence_workload,
    mixed_class_loop,
    straightline_iv_loop,
)
from repro.ir import function as function_module
from repro.pipeline import analyze
from repro.symbolic import expr as expr_module

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _looks_like_program(text: str) -> bool:
    return any(kw in text for kw in ("loop", "for ", "while ")) and "\n" in text


def example_programs() -> List[Tuple[str, str]]:
    """Every string literal in examples/*.py that parses as a program."""
    programs: List[Tuple[str, str]] = []
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                text = node.value
                if not _looks_like_program(text):
                    continue
                try:
                    analyze(text)
                except Exception:
                    continue  # not a source program (docstring etc.)
                programs.append((f"{path.name}:{node.lineno}", text))
    return programs


def workload_programs() -> List[Tuple[str, str]]:
    programs = [
        ("straightline_iv_loop/32", straightline_iv_loop(32)),
        ("deep_chain_loop/32", deep_chain_loop(32)),
        ("mixed_class_loop/60", mixed_class_loop(7, 60)),
    ]
    for kind in ("periodic", "monotonic", "wraparound", "linear"):
        programs.append((f"dependence_workload/{kind}", dependence_workload(kind)))
    return programs


def snapshot(source: str) -> Dict[str, Tuple[str, str]]:
    """name -> (describe, nested_describe) for every classified name."""
    program = analyze(source)
    out: Dict[str, Tuple[str, str]] = {}
    for summary in program.result.loops.values():
        for name in summary.classifications:
            out[name] = (
                program.result.describe(name),
                program.result.nested_describe(name),
            )
    return out


def uncached_snapshot(source: str) -> Dict[str, Tuple[str, str]]:
    prior_fn = function_module.set_caching(False)
    prior_expr = expr_module.set_memoization(False)
    try:
        return snapshot(source)
    finally:
        function_module.set_caching(prior_fn)
        expr_module.set_memoization(prior_expr)


ALL_PROGRAMS = example_programs() + workload_programs()


def test_corpus_nonempty():
    # the extraction must actually find the example programs
    assert len(example_programs()) >= 10
    assert len(ALL_PROGRAMS) >= 14


@pytest.mark.parametrize("label,source", ALL_PROGRAMS, ids=[l for l, _ in ALL_PROGRAMS])
def test_cached_equals_uncached(label, source):
    cached = snapshot(source)
    uncached = uncached_snapshot(source)
    assert cached == uncached, f"caching changed classifications for {label}"


def test_toggles_restore():
    assert function_module._CACHING_ENABLED
    assert expr_module._MEMO_ENABLED
