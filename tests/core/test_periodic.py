"""Periodic and flip-flop variable detection (paper section 4.2)."""

from tests.conftest import analyze_src, assert_closed_forms_match_execution, classification_by_var
from repro.core.classes import Periodic, Unknown


class TestFlipFlop:
    def test_swap_form_l11(self):
        """Loop L11: jtemp = jold; jold = j; j = jtemp."""
        p = analyze_src(
            "j = 1\njold = 2\nL11: for it = 1 to n do\n  A[j] = A[jold]\n"
            "  jtemp = jold\n  jold = j\n  j = jtemp\nendfor"
        )
        j = classification_by_var(p, "j", "L11")
        jold = classification_by_var(p, "jold", "L11")
        assert isinstance(j, Periodic) and j.period == 2
        assert isinstance(jold, Periodic) and jold.period == 2
        assert [j.value_at(h).constant_value() for h in range(4)] == [1, 2, 1, 2]
        assert [jold.value_at(h).constant_value() for h in range(4)] == [2, 1, 2, 1]
        assert_closed_forms_match_execution(p, {"n": 7})

    def test_arithmetic_form_l12(self):
        """Loop L12: j = 3 - j (the '3-j' trick)."""
        p = analyze_src(
            "j = 1\njold = 2\nL12: for it = 1 to n do\n  A[j] = A[jold]\n"
            "  j = 3 - j\n  jold = 3 - jold\nendfor"
        )
        j = classification_by_var(p, "j", "L12")
        assert isinstance(j, Periodic)
        assert [j.value_at(h).constant_value() for h in range(4)] == [1, 2, 1, 2]
        assert_closed_forms_match_execution(p, {"n": 5})

    def test_symbolic_flip_flop(self):
        p = analyze_src(
            "j = a\nL12: for it = 1 to n do\n  A[j] = 0\n  j = s - j\nendfor"
        )
        j = classification_by_var(p, "j", "L12")
        assert isinstance(j, Periodic)
        assert str(j.value_at(0)) == "a"
        assert str(j.value_at(1)) == "-a + s"

    def test_degenerate_flip_flop_is_invariant(self):
        # j = 4 - j with j0 = 2: always 2.  SCCP folds it completely --
        # the store subscript becomes the literal 2 and no phi remains.
        from repro.ir.instructions import Store
        from repro.ir.values import Const

        p = analyze_src("j = 2\nL1: for it = 1 to n do\n  A[j] = 0\n  j = 4 - j\nendfor")
        stores = [i for b in p.ssa for i in b if isinstance(i, Store)]
        assert stores[0].indices == [Const(2)]
        # the Periodic.simplify path is covered without SCCP's help too
        from repro.core.classes import Invariant, Periodic as P
        from repro.symbolic.expr import Expr

        assert isinstance(P("L", (Expr.const(2), Expr.const(2))).simplify(), Invariant)


class TestRotations:
    def test_period_three_fig5(self):
        """Figure 5 (loop L13): (j, k, l) rotate; t is outside the SCR."""
        p = analyze_src(
            "j = 1\nk = 2\nl = 3\nL13: for it = 1 to n do\n  A[j] = A[k] + A[l]\n"
            "  t = j\n  j = k\n  k = l\n  l = t\nendfor"
        )
        j = classification_by_var(p, "j", "L13")
        k = classification_by_var(p, "k", "L13")
        l = classification_by_var(p, "l", "L13")
        for cls in (j, k, l):
            assert isinstance(cls, Periodic) and cls.period == 3
        assert [j.value_at(h).constant_value() for h in range(3)] == [1, 2, 3]
        assert [k.value_at(h).constant_value() for h in range(3)] == [2, 3, 1]
        assert [l.value_at(h).constant_value() for h in range(3)] == [3, 1, 2]
        assert_closed_forms_match_execution(p, {"n": 9})

    def test_t2_is_wraparound_of_periodic(self):
        """'Note that t2 does not appear in the strongly connected region
        with the other variables' -- it wraps the periodic value."""
        from repro.core.classes import WrapAround

        p = analyze_src(
            "t = 0\nj = 1\nk = 2\nl = 3\nL13: for it = 1 to n do\n  A[t] = 0\n"
            "  t = j\n  j = k\n  k = l\n  l = t\nendfor"
        )
        # here t IS in the rotation (l = t): period 4... use a real temp:
        p = analyze_src(
            "t = 0\nj = 1\nk = 2\nL13: for it = 1 to n do\n  A[t] = 0\n"
            "  t = j\n  jt = j\n  j = k\n  k = jt\nendfor"
        )
        t = classification_by_var(p, "t", "L13")
        assert isinstance(t, WrapAround)
        assert isinstance(t.inner, Periodic)

    def test_rotation_of_four(self):
        p = analyze_src(
            "a = 1\nb = 2\nc = 3\nd = 4\nL1: for it = 1 to n do\n"
            "  A[a] = 0\n  t = a\n  a = b\n  b = c\n  c = d\n  d = t\nendfor"
        )
        a = classification_by_var(p, "a", "L1")
        assert isinstance(a, Periodic) and a.period == 4
        assert_closed_forms_match_execution(p, {"n": 11})

    def test_two_independent_flip_flops(self):
        p = analyze_src(
            "a = 1\nb = 2\nx = 8\ny = 9\nL1: for it = 1 to n do\n"
            "  A[a] = x\n  t = a\n  a = b\n  b = t\n  u = x\n  x = y\n  y = u\nendfor"
        )
        a = classification_by_var(p, "a", "L1")
        x = classification_by_var(p, "x", "L1")
        assert isinstance(a, Periodic) and a.period == 2
        assert isinstance(x, Periodic) and x.period == 2
        assert x.value_at(0) == 8


class TestNonPeriodic:
    def test_rotation_with_arithmetic_is_not_periodic(self):
        """'no arithmetic and no other phi-functions' in the SCR."""
        p = analyze_src(
            "a = 1\nb = 2\nL1: for it = 1 to n do\n  A[a] = 0\n"
            "  t = a\n  a = b + 1\n  b = t\nendfor"
        )
        a = classification_by_var(p, "a", "L1")
        assert not isinstance(a, Periodic)

    def test_conditional_rotation_not_periodic(self):
        p = analyze_src(
            "a = 1\nb = 2\nL1: for it = 1 to n do\n  A[a] = 0\n"
            "  if x > 0 then\n    t = a\n    a = b\n    b = t\n  endif\nendfor"
        )
        a = classification_by_var(p, "a", "L1")
        assert isinstance(a, Unknown)

    def test_mod_two_counter_is_periodic(self):
        """Extension: (0 + h) mod 2 recognized as periodic via the algebra."""
        p = analyze_src(
            "L1: for i = 0 to n do\n  par = i % 2\n  A[par] = i\nendfor"
        )
        par = p.classification(p.ssa_names("par")[0])
        assert isinstance(par, Periodic)
        assert par.period == 2
        assert [par.value_at(h).constant_value() for h in range(2)] == [0, 1]

    def test_mod_with_step_gcd(self):
        p = analyze_src(
            "L1: for i = 0 to n by 2 do\n  r = i % 6\n  A[r] = i\nendfor"
        )
        r = p.classification(p.ssa_names("r")[0])
        assert isinstance(r, Periodic)
        assert r.period == 3
        assert [r.value_at(h).constant_value() for h in range(3)] == [0, 2, 4]


class TestFamilyMembers:
    def test_flip_flop_member_with_multiplier(self):
        """Members of a flip-flop SCR scaled by the cycle multiplier."""
        from tests.conftest import analyze_src, classification_by_var

        p = analyze_src(
            "j = 1\nL1: for it = 1 to n do\n  A[j] = 0\n  j = 6 - j\nendfor"
        )
        j2 = classification_by_var(p, "j", "L1")
        assert isinstance(j2, Periodic)
        assert [v.constant_value() for v in j2.values] == [1, 5]
        # the post-assignment member is the rotation
        members = [p.classification(n) for n in p.ssa_names("j")]
        rotated = [
            m for m in members
            if isinstance(m, Periodic) and [v.constant_value() for v in m.values] == [5, 1]
        ]
        assert rotated

    def test_geometric_family_members(self):
        from tests.conftest import analyze_src

        p = analyze_src(
            "x = 1\nL1: for i = 1 to n do\n  x = x * 3\n  y = x + 5\n  A[y] = i\nendfor"
        )
        y = p.classification(p.ssa_names("y")[0])
        assert y.is_geometric
        assert [y.value_at(h).constant_value() for h in range(3)] == [8, 14, 32]
