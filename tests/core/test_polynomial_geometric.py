"""Polynomial and geometric induction variables (paper section 4.3)."""

from fractions import Fraction

from tests.conftest import analyze_src, assert_closed_forms_match_execution, classification_by_var
from repro.core.classes import InductionVariable, Monotonic, Unknown


class TestL14:
    """The paper's table of closed forms for loop L14."""

    SOURCE = (
        "j = 1\nk = 1\nl = 1\nm = 0\n"
        "L14: for i = 1 to n do\n"
        "  j = j + i\n"
        "  k = k + j + 1\n"
        "  l = l * 2 + 1\n"
        "  m = 3 * m + 2 * i + 1\n"
        "endfor\nreturn j + k + l + m"
    )

    def analyze(self):
        return analyze_src(self.SOURCE)

    def _post_assignment(self, p, var, loop="L14"):
        """The classification of the post-assignment member (x.3 name)."""
        header = p.ssa_name(var, loop)
        others = [n for n in p.ssa_names(var) if n != header]
        in_loop = [
            n for n in others
            if p.result.defining_loop(n) is not None
        ]
        assert len(in_loop) == 1
        return p.classification(in_loop[0])

    def test_j_quadratic(self):
        p = self.analyze()
        j3 = self._post_assignment(p, "j")
        # (h^2 + 3h + 4) / 2
        assert j3.describe() == "(L14, 2, 3/2, 1/2)"
        assert [j3.value_at(h).constant_value() for h in range(4)] == [2, 4, 7, 11]

    def test_k_cubic(self):
        p = self.analyze()
        k3 = self._post_assignment(p, "k")
        # (h^3 + 6h^2 + 23h + 24) / 6
        assert k3.describe() == "(L14, 4, 23/6, 1, 1/6)"
        assert [k3.value_at(h).constant_value() for h in range(4)] == [4, 9, 17, 29]

    def test_l_geometric(self):
        p = self.analyze()
        l3 = self._post_assignment(p, "l")
        assert isinstance(l3, InductionVariable) and l3.is_geometric
        # 2^(h+2) - 1
        assert [l3.value_at(h).constant_value() for h in range(4)] == [3, 7, 15, 31]

    def test_m_mixed_geometric(self):
        """The paper's garbled closed form is 6*3^h - h - 3; the quadratic
        term it conservatively allowed comes out zero."""
        p = self.analyze()
        m3 = self._post_assignment(p, "m")
        assert isinstance(m3, InductionVariable) and m3.is_geometric
        assert m3.form.coeff(2).is_zero
        assert [m3.value_at(h).constant_value() for h in range(4)] == [3, 14, 49, 156]
        assert m3.value_at(5) == 6 * 3**5 - 5 - 3

    def test_against_execution(self):
        assert_closed_forms_match_execution(self.analyze(), {"n": 8})


class TestPolynomialOrders:
    def test_order_four(self):
        p = analyze_src(
            "a = 0\nb = 0\nc = 0\nd = 0\nL1: for i = 1 to n do\n"
            "  a = a + 1\n  b = b + a\n  c = c + b\n  d = d + c\nendfor\nreturn d"
        )
        d = classification_by_var(p, "d", "L1")
        assert isinstance(d, InductionVariable)
        assert d.form.degree == 4
        assert_closed_forms_match_execution(p, {"n": 7})

    def test_triangular_numbers(self):
        p = analyze_src("t = 0\nL1: for i = 1 to n do\n  t = t + i\nendfor\nreturn t")
        t = classification_by_var(p, "t", "L1")
        # t(h) = sum_{u<h} (u+1) = h(h+1)/2: the triangular numbers
        assert t.describe() == "(L1, 0, 1/2, 1/2)"
        assert [t.value_at(h).constant_value() for h in range(5)] == [0, 1, 3, 6, 10]

    def test_symbolic_coefficients(self):
        p = analyze_src(
            "j = j0\nL1: for i = 0 to n do\n  j = j + i\n  j = j + c\nendfor\nreturn j"
        )
        j = classification_by_var(p, "j", "L1")
        assert isinstance(j, InductionVariable)
        assert "j0" in str(j.form.coeff(0))

    def test_incrementing_by_quadratic_gives_cubic(self):
        p = analyze_src(
            "sq = 0\ncu = 0\nL1: for i = 0 to n do\n  sq = sq + 2 * i + 1\n  cu = cu + sq\nendfor\nreturn cu"
        )
        sq = classification_by_var(p, "sq", "L1")
        cu = classification_by_var(p, "cu", "L1")
        assert sq.form.degree == 2
        assert cu.form.degree == 3
        assert_closed_forms_match_execution(p, {"n": 6})


class TestGeometric:
    def test_pure_doubling(self):
        p = analyze_src("x = 1\nL1: for i = 1 to n do\n  x = x * 2\nendfor\nreturn x")
        x = classification_by_var(p, "x", "L1")
        assert x.is_geometric
        assert [x.value_at(h).constant_value() for h in range(5)] == [1, 2, 4, 8, 16]

    def test_negative_multiplier(self):
        p = analyze_src("x = 1\nL1: for i = 1 to n do\n  x = x * -2 + 1\nendfor\nreturn x")
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, InductionVariable)
        assert_closed_forms_match_execution(p, {"n": 6})

    def test_symbolic_initial_value(self):
        p = analyze_src("x = x0\nL1: for i = 1 to n do\n  x = x * 3\nendfor\nreturn x")
        x = classification_by_var(p, "x", "L1")
        assert x.is_geometric
        assert str(x.value_at(2)) == "9*x0"

    def test_exponentiation_of_iv(self):
        """2 ** i recognized as geometric via the operator algebra."""
        p = analyze_src("L1: for i = 0 to n do\n  g = 2 ** i\n  A[g] = 0\nendfor")
        g = p.classification(p.ssa_names("g")[0])
        assert isinstance(g, InductionVariable) and g.is_geometric
        assert [g.value_at(h).constant_value() for h in range(4)] == [1, 2, 4, 8]

    def test_exponentiation_with_step(self):
        p = analyze_src("L1: for i = 0 to n by 2 do\n  g = 3 ** i\n  A[g] = 0\nendfor")
        g = p.classification(p.ssa_names("g")[0])
        assert g.is_geometric
        assert [g.value_at(h).constant_value() for h in range(3)] == [1, 9, 81]

    def test_iv_squared_polynomial(self):
        p = analyze_src("L1: for i = 0 to n do\n  s = i ** 2\n  A[s] = 0\nendfor")
        s = p.classification(p.ssa_names("s")[0])
        assert isinstance(s, InductionVariable)
        assert s.form.degree == 2

    def test_product_of_two_ivs(self):
        """(2i+1)(3i-5): the paper's section 5.1 example of IV * IV."""
        p = analyze_src(
            "L1: for i = 0 to n do\n  a = 2 * i + 1\n  b = 3 * i - 5\n  c = a * b\n  A[c] = 0\nendfor"
        )
        c = p.classification(p.ssa_names("c")[0])
        assert isinstance(c, InductionVariable)
        assert c.form.degree == 2
        assert_closed_forms_match_execution(p, {"n": 5})

    def test_geo_times_geo(self):
        p = analyze_src(
            "L1: for i = 0 to n do\n  a = 2 ** i\n  b = 3 ** i\n  c = a * b\n  A[c] = 0\nendfor"
        )
        c = p.classification(p.ssa_names("c")[0])
        assert c.is_geometric
        assert c.value_at(2) == 36

    def test_poly_times_geo_unknown(self):
        """h * 2^h has no representation: falls out of the IV classes."""
        p = analyze_src(
            "L1: for i = 0 to n do\n  a = 2 ** i\n  c = i * a\n  A[c] = 0\nendfor"
        )
        c = p.classification(p.ssa_names("c")[0])
        assert isinstance(c, Unknown)

    def test_factorial_like_rejected(self):
        """'This could be taken to extreme, such as recognizing that
        multiplying by a linear IV generates a factorial sequence' -- we,
        like the paper, do not."""
        p = analyze_src(
            "f = 1\nL1: for i = 1 to n do\n  f = f * i\nendfor\nreturn f"
        )
        f = classification_by_var(p, "f", "L1")
        assert not isinstance(f, InductionVariable)
