"""Tests for the modified Tarjan SCR traversal."""

from repro.core.tarjan import TraversalStats, tarjan_scrs


def run(edges, nodes=None, prefiltered=False):
    """edges: dict node -> list of successors."""
    if nodes is None:
        nodes = list(edges)
    seen = []

    def on_scr(members, is_cycle):
        seen.append((tuple(sorted(members)), is_cycle))

    stats = tarjan_scrs(nodes, lambda n: edges.get(n, []), on_scr, prefiltered=prefiltered)
    return seen, stats.scr_count


class TestBasics:
    def test_dag_all_trivial(self):
        seen, count = run({"a": ["b"], "b": ["c"], "c": []})
        assert count == 3
        assert all(not cycle for _, cycle in seen)

    def test_simple_cycle(self):
        seen, _ = run({"a": ["b"], "b": ["a"]})
        assert (("a", "b"), True) in seen

    def test_self_loop_is_cycle(self):
        seen, _ = run({"a": ["a"]})
        assert seen == [(("a",), True)]

    def test_trivial_single_node(self):
        seen, _ = run({"a": []})
        assert seen == [(("a",), False)]

    def test_two_cycles(self):
        seen, _ = run(
            {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c"]}
        )
        sccs = {members for members, cycle in seen if cycle}
        assert sccs == {("a", "b"), ("c", "d")}


class TestVisitOrder:
    def test_operands_classified_before_users(self):
        """The paper's key property: when an SCR pops, its out-of-SCR
        successors (operands) have already popped."""
        edges = {
            "user": ["cycle1"],
            "cycle1": ["cycle2", "operand"],
            "cycle2": ["cycle1"],
            "operand": ["leaf"],
            "leaf": [],
        }
        seen, _ = run(edges)
        order = [members for members, _ in seen]
        position = {members: i for i, members in enumerate(order)}
        assert position[("leaf",)] < position[("operand",)]
        assert position[("operand",)] < position[("cycle1", "cycle2")]
        assert position[("cycle1", "cycle2")] < position[("user",)]

    def test_all_roots_visited(self):
        # disconnected components
        seen, count = run({"a": [], "b": ["c"], "c": ["b"]}, nodes=["a", "b", "c"])
        assert count == 2
        assert (("a",), False) in seen

    def test_external_successors_ignored(self):
        # successors outside the node set are filtered
        seen, count = run({"a": ["ghost"]}, nodes=["a"])
        assert count == 1


class TestTraversalStats:
    """The single traversal reports the graph size as a byproduct."""

    def collect(self, edges, nodes=None, prefiltered=False):
        if nodes is None:
            nodes = list(edges)
        return tarjan_scrs(
            nodes, lambda n: edges.get(n, []), lambda m, c: None, prefiltered=prefiltered
        )

    def test_counts_nodes_and_edges(self):
        stats = self.collect({"a": ["b", "c"], "b": ["c"], "c": []})
        assert stats == TraversalStats(scr_count=3, node_count=3, edge_count=3)

    def test_external_edges_not_counted(self):
        stats = self.collect({"a": ["ghost", "b"], "b": []}, nodes=["a", "b"])
        assert stats.node_count == 2
        assert stats.edge_count == 1  # a -> ghost filtered out

    def test_self_loop_counts_one_edge(self):
        stats = self.collect({"a": ["a"]})
        assert stats == TraversalStats(scr_count=1, node_count=1, edge_count=1)

    def test_prefiltered_matches_filtered(self):
        edges = {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c"]}
        assert self.collect(edges) == self.collect(edges, prefiltered=True)

    def test_cycle_detection_with_prefiltered_adjacency(self):
        seen, _ = run({"a": ["a"], "b": []}, prefiltered=True)
        assert (("a",), True) in seen
        assert (("b",), False) in seen


class TestScale:
    def test_long_chain_no_recursion_error(self):
        n = 50_000
        edges = {str(i): [str(i + 1)] for i in range(n)}
        edges[str(n)] = []
        seen, count = run(edges, nodes=[str(i) for i in range(n + 1)])
        assert count == n + 1

    def test_large_cycle(self):
        n = 10_000
        edges = {str(i): [str((i + 1) % n)] for i in range(n)}
        seen, count = run(edges)
        assert count == 1
        assert len(seen[0][0]) == n

    def test_linear_visit_count(self):
        """Each node appears in exactly one SCR (one pass, not iterative)."""
        import random

        rng = random.Random(7)
        nodes = [str(i) for i in range(500)]
        edges = {
            n: rng.sample(nodes, k=rng.randint(0, 3)) for n in nodes
        }
        seen, _ = run(edges)
        flat = [m for members, _ in seen for m in members]
        assert sorted(flat) == sorted(nodes)
