"""Trip counts (paper section 5.2)."""

import pytest

from tests.conftest import analyze_src
from repro.core.tripcount import TripCountKind


def trip(source, loop="L1", **kwargs):
    p = analyze_src(source, **kwargs)
    return p.result.trip_count(loop)


class TestConstantCounts:
    def test_simple_for(self):
        t = trip("L1: for i = 1 to 100 do\n  x = i\nendfor")
        assert t.kind is TripCountKind.FINITE
        assert t.constant() == 100

    def test_step(self):
        t = trip("L1: for i = 0 to 10 by 3 do\n  x = i\nendfor")
        assert t.constant() == 4  # 0, 3, 6, 9

    def test_downto(self):
        t = trip("L1: for i = 10 downto 1 do\n  x = i\nendfor")
        assert t.constant() == 10

    def test_zero_trips(self):
        t = trip("L1: for i = 5 to 1 do\n  x = i\nendfor")
        assert t.kind is TripCountKind.ZERO
        assert t.constant() == 0

    def test_while_form(self):
        t = trip("i = 0\nL1: while i < 7 do\n  i = i + 2\nendwhile")
        assert t.constant() == 4  # i = 0, 2, 4, 6

    def test_mid_loop_exit_paper_l18(self):
        """'The exit condition converted ... thus the trip count is 100.'"""
        t = trip(
            "i = 1\nk = 0\nL18: loop\n  k = k + 2\n  if i > 100 then\n    break\n  endif\n  i = i + 1\nendloop",
            loop="L18",
        )
        assert t.constant() == 100

    def test_all_relations(self):
        # each source relation exercises a different row of the table
        assert trip("i = 0\nL1: while i < 5 do\n  i = i + 1\nendwhile").constant() == 5
        assert trip("i = 0\nL1: while i <= 5 do\n  i = i + 1\nendwhile").constant() == 6
        assert trip("i = 9\nL1: while i > 2 do\n  i = i - 1\nendwhile").constant() == 7
        assert trip("i = 9\nL1: while i >= 2 do\n  i = i - 1\nendwhile").constant() == 8

    def test_true_branch_exits(self):
        # trip count = times the exit chose to *stay*; the increment above
        # the test runs tc+1 times (i reaches 4 on the exiting pass)
        assert (
            trip("i = 0\nL1: loop\n  i = i + 1\n  if i >= 4 then\n    break\n  endif\nendloop").constant()
            == 3
        )
        assert (
            trip("i = 9\nL1: loop\n  i = i - 3\n  if i <= 0 then\n    break\n  endif\nendloop").constant()
            == 2
        )

    def test_ceiling_division(self):
        # i = 0, stays while i < 10, step 3: ceil(10/3) = 4 trips
        t = trip("i = 0\nL1: while i < 10 do\n  i = i + 3\nendwhile")
        assert t.constant() == 4


class TestSymbolicCounts:
    def test_symbolic_bound(self):
        t = trip("L1: for i = 1 to n do\n  x = i\nendfor")
        assert t.kind is TripCountKind.FINITE
        assert str(t.count) == "n"
        assert t.assumptions  # n >= 0 style guard

    def test_triangular_inner_count_is_outer_iv(self):
        p = analyze_src(
            "L19: for i = 1 to n do\n  L20: for k = 1 to i do\n    x = k\n  endfor\nendfor"
        )
        t = p.result.trip_count("L20")
        assert t.kind is TripCountKind.FINITE
        assert t.count == __import__("repro.symbolic.expr", fromlist=["Expr"]).Expr.sym(
            p.ssa_name("i", "L19")
        )

    def test_symbolic_with_offset(self):
        t = trip("L1: for i = 3 to n do\n  x = i\nendfor")
        assert str(t.count) == "-2 + n"

    def test_symbolic_nonunit_step_is_opaque(self):
        t = trip("L1: for i = 0 to n by 4 do\n  x = i\nendfor")
        assert t.kind is TripCountKind.FINITE
        assert str(t.count).startswith("$k")
        assert any("ceil" in a for a in t.assumptions)


class TestDegenerate:
    def test_infinite(self):
        t = trip("i = 0\nL1: loop\n  i = i + 1\n  if i < 0 then\n    break\n  endif\nendloop")
        assert t.kind is TripCountKind.INFINITE

    def test_no_exit_at_all(self):
        t = trip("i = 0\nL1: loop\n  i = i + 1\nendloop")
        assert t.kind is TripCountKind.INFINITE

    def test_wrong_direction_step(self):
        t = trip("i = 0\nL1: while i < 10 do\n  i = i - 1\nendwhile")
        assert t.kind is TripCountKind.INFINITE

    def test_equality_exit_unknown(self):
        t = trip("i = 0\nL1: loop\n  i = i + 1\n  if i == 5 then\n    break\n  endif\nendloop")
        assert t.kind is TripCountKind.UNKNOWN

    def test_unknown_condition(self):
        t = trip(
            "i = 0\nL1: loop\n  i = i + 1\n  if A[i] > 0 then\n    break\n  endif\nendloop"
        )
        assert t.kind is TripCountKind.UNKNOWN

    def test_nonlinear_exit_unknown(self):
        t = trip(
            "x = 1\nL1: loop\n  x = x * 2\n  if x > 1000 then\n    break\n  endif\nendloop"
        )
        # the exit quantity is geometric, not linear
        assert t.kind is TripCountKind.UNKNOWN


class TestMultipleExits:
    def test_min_of_constant_exits(self):
        t = trip(
            "i = 0\nL1: loop\n  i = i + 1\n  if i > 10 then\n    break\n  endif\n"
            "  if i > 5 then\n    break\n  endif\nendloop"
        )
        assert t.kind is TripCountKind.FINITE
        assert t.constant() == 5

    def test_finite_beats_infinite(self):
        t = trip(
            "i = 0\nj = 0\nL1: loop\n  i = i + 1\n  if j > 1 then\n    break\n  endif\n"
            "  if i > 7 then\n    break\n  endif\nendloop"
        )
        assert t.constant() == 7

    def test_unknown_with_bound(self):
        t = trip(
            "i = 0\nL1: loop\n  i = i + 1\n  if A[i] > 0 then\n    break\n  endif\n"
            "  if i > 100 then\n    break\n  endif\nendloop"
        )
        # exact count unknown (data-dependent first exit)
        assert t.kind in (TripCountKind.UNKNOWN, TripCountKind.FINITE)
        if t.kind is TripCountKind.FINITE:
            assert not t.exact


class TestExitValues:
    def test_paper_fig8_exit_values(self):
        p = analyze_src(
            "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n"
            "    if i > 100 then\n      break\n    endif\n    i = i + 1\n  endloop\n"
            "  k = k + 2\n  if k > 100000 then\n    break\n  endif\nendloop"
        )
        k2 = p.ssa_name("k", "L17")
        k3 = p.ssa_name("k", "L18")
        # k3's exit value is k2 + 202 (the early increment runs 101 times)
        exit_k3 = p.result.exit_value("L18", k3)
        assert str(exit_k3) == f"200 + {k2}"
        inner_names = [n for n in p.ssa_names("k") if p.result.defining_loop(n) and p.result.defining_loop(n).header == "L18"]
        k4 = [n for n in inner_names if n != k3][0]
        assert str(p.result.exit_value("L18", k4)) == f"202 + {k2}"
        # i exits at 101 = 1 + 100*1 (paper: i4 = i1 + 100*1)
        i2 = p.ssa_name("i", "L18")
        assert p.result.exit_value("L18", i2) == 101

    def test_exit_value_symbolic_trip(self):
        p = analyze_src("s = 0\nL1: for i = 1 to n do\n  s = s + 2\nendfor\nreturn s")
        s2 = p.ssa_name("s", "L1")
        value = p.result.exit_value("L1", s2)
        assert str(value) == "2*n"

    def test_exit_value_zero_trip(self):
        p = analyze_src("s = 7\nL1: for i = 5 to 1 do\n  s = 0\nendfor\nreturn s")
        s2 = p.ssa_name("s", "L1")
        # zero trips: the phi holds its initial value at the exit
        assert p.result.exit_value("L1", s2) == 7

    def test_no_exit_value_for_uncountable(self):
        p = analyze_src(
            "s = 0\nL1: loop\n  s = s + 1\n  if A[s] > 0 then\n    break\n  endif\nendloop"
        )
        s2 = p.ssa_name("s", "L1")
        assert p.result.exit_value("L1", s2) is None
