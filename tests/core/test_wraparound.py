"""Wrap-around variable detection (paper section 4.1)."""

from tests.conftest import analyze_src, assert_closed_forms_match_execution, classification_by_var
from repro.core.classes import (
    BranchDependent,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)


class TestFirstOrder:
    def test_classic_iml(self):
        """The paper's L9: iml is i delayed by one iteration."""
        p = analyze_src(
            "iml = n\nL9: for i = 1 to n do\n  A[i] = A[iml] + 1\n  iml = i\nendfor"
        )
        w = classification_by_var(p, "iml", "L9")
        assert isinstance(w, WrapAround)
        assert w.order == 1
        assert str(w.pre_values[0]) == "n"
        inner = w.inner
        assert isinstance(inner, InductionVariable)
        # steady state: iml(h) = i(h-1) = h  (i = 1 + h)
        assert inner.value_at(3) == 3

    def test_value_at_semantics(self):
        p = analyze_src(
            "iml = 77\nL9: for i = 1 to n do\n  A[i] = A[iml] + 1\n  iml = i\nendfor"
        )
        w = classification_by_var(p, "iml", "L9")
        assert w.value_at(0) == 77
        assert w.value_at(1) == 1
        assert w.value_at(4) == 4
        assert_closed_forms_match_execution(p, {"n": 6})

    def test_collapse_when_init_fits(self):
        """'If the initial value of j1 had been 0, j2 could have been
        identified as the induction variable (L10, 0, 1).'"""
        p = analyze_src(
            "j = 0\ni = 1\nL10: loop\n  A[j] = 0\n  j = i\n  i = i + 1\n"
            "  if i > n then\n    break\n  endif\nendloop"
        )
        j = classification_by_var(p, "j", "L10")
        assert isinstance(j, InductionVariable)
        assert j.describe() == "(L10, 0, 1)"

    def test_wraparound_of_invariant(self):
        p = analyze_src(
            "x = a\nL1: for i = 1 to n do\n  A[x] = i\n  x = b\nendfor"
        )
        x = classification_by_var(p, "x", "L1")
        assert isinstance(x, WrapAround)
        assert isinstance(x.inner, Invariant)
        assert str(x.inner.expr) == "b"


class TestSecondOrder:
    def test_fig4_cascade(self):
        """Figure 4: k takes j's value, j takes i's: k is second order."""
        p = analyze_src(
            "k = kinit\nj = jinit\ni = 1\nL10: loop\n  A[k] = 0\n  k = j\n  j = i\n  i = i + 1\n"
            "  if i > n then\n    break\n  endif\nendloop"
        )
        k = classification_by_var(p, "k", "L10")
        assert isinstance(k, WrapAround)
        assert k.order == 2
        assert [str(v) for v in k.pre_values] == ["kinit", "jinit"]
        # steady state: k(h) = h - 1
        assert k.value_at(2) == 1
        assert k.value_at(5) == 4
        j = classification_by_var(p, "j", "L10")
        assert isinstance(j, WrapAround) and j.order == 1

    def test_third_order(self):
        p = analyze_src(
            "a = p1\nb = p2\nc = p3\ni = 0\nL1: loop\n  A[a] = 0\n  a = b\n  b = c\n  c = i\n  i = i + 1\n"
            "  if i > n then\n    break\n  endif\nendloop"
        )
        a = classification_by_var(p, "a", "L1")
        assert isinstance(a, WrapAround)
        assert a.order == 3
        # a(h) = i(h-3) = h - 3 for h >= 3
        assert a.value_at(7) == 4

    def test_partial_collapse(self):
        """Pre-values that fit partially still leave a wrap-around."""
        p = analyze_src(
            "k = 99\nj = 0\ni = 1\nL10: loop\n  A[k] = 0\n  k = j\n  j = i\n  i = i + 1\n"
            "  if i > n then\n    break\n  endif\nendloop"
        )
        # j collapses (j1 = 0 fits); k2 = phi(99, j) with j a plain IV now:
        # k is order 1 with pre 99
        k = classification_by_var(p, "k", "L10")
        assert isinstance(k, WrapAround)
        assert k.order == 1
        assert k.value_at(0) == 99
        assert k.value_at(3) == 2


class TestWrappedOtherClasses:
    def test_wraparound_of_periodic(self):
        """'Any of the other known classes could also be wrapped around.'"""
        p = analyze_src(
            "t = t0\nj = 1\nk = 2\nL1: for it = 1 to n do\n  A[t] = 0\n  t = j\n"
            "  tmp = j\n  j = k\n  k = tmp\nendfor"
        )
        t = classification_by_var(p, "t", "L1")
        assert isinstance(t, WrapAround)
        assert isinstance(t.inner, Periodic)
        # t(h) = j(h-1): j = 1,2,1,2... so t = t0,1,2,1,2...
        assert t.value_at(0) == Exprs("t0")
        assert t.value_at(1) == 1
        assert t.value_at(2) == 2
        assert t.value_at(3) == 1

    def test_wraparound_of_monotonic(self):
        p = analyze_src(
            "m = m0\nk = 0\nL1: for i = 1 to n do\n  A[m] = 0\n  m = k\n"
            "  if A[i] > 0 then\n    k = k + 1\n  endif\nendfor"
        )
        m = classification_by_var(p, "m", "L1")
        assert isinstance(m, WrapAround)
        assert isinstance(m.inner, BranchDependent)
        assert m.inner.direction == 1

    def test_wraparound_of_unknown_is_unknown(self):
        p = analyze_src(
            "m = m0\nL1: for i = 1 to n do\n  A[m] = 0\n  m = A[i]\nendfor"
        )
        m = classification_by_var(p, "m", "L1")
        assert isinstance(m, Unknown)


def Exprs(name):
    from repro.symbolic.expr import Expr

    return Expr.sym(name)
