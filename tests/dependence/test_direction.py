"""Tests for direction/distance vectors."""

from repro.dependence.direction import (
    ANY,
    EQ,
    GE,
    GT,
    LE,
    LT,
    NE,
    Direction,
    DirectionVector,
    DistanceVector,
)


class TestNames:
    def test_printable(self):
        assert Direction.name(LT) == "<"
        assert Direction.name(EQ) == "="
        assert Direction.name(GT) == ">"
        assert Direction.name(LE) == "<="
        assert Direction.name(GE) == ">="
        assert Direction.name(NE) == "!="
        assert Direction.name(ANY) == "*"


class TestDirectionVector:
    def test_repr(self):
        assert repr(DirectionVector([LT, EQ])) == "(<, =)"

    def test_refine(self):
        v = DirectionVector([ANY, ANY])
        refined = v.refine(0, LT)
        assert refined.elements[0] == LT and refined.elements[1] == ANY

    def test_refine_to_empty(self):
        v = DirectionVector([LT])
        assert v.refine(0, GT).is_empty

    def test_is_exact(self):
        assert DirectionVector([LT, EQ]).is_exact
        assert not DirectionVector([LE]).is_exact

    def test_leading_sign(self):
        assert DirectionVector([EQ, LT]).leading_sign() == 1
        assert DirectionVector([EQ, EQ]).leading_sign() == 0
        assert DirectionVector([GT]).leading_sign() == -1
        assert DirectionVector([ANY]).leading_sign() is None

    def test_plausible(self):
        assert DirectionVector([LT, GT]).is_plausible
        assert DirectionVector([EQ, EQ]).is_plausible
        assert not DirectionVector([GT, LT]).is_plausible
        assert DirectionVector([ANY, GT]).is_plausible

    def test_star(self):
        v = DirectionVector.star(3)
        assert len(v) == 3 and all(e == ANY for e in v.elements)

    def test_eq_hash(self):
        assert DirectionVector([LT]) == DirectionVector([LT])
        assert hash(DirectionVector([LT])) == hash(DirectionVector([frozenset({1})]))


class TestDistanceVector:
    def test_direction_from_distance(self):
        d = DistanceVector([1, 0, -2, None])
        assert d.direction().elements == (LT, EQ, GT, ANY)

    def test_repr(self):
        assert repr(DistanceVector([1, None])) == "(1, *)"

    def test_eq(self):
        assert DistanceVector([1]) == DistanceVector([1])
        assert DistanceVector([1]) != DistanceVector([2])
