"""Tests for loop distribution planning."""

from tests.conftest import analyze_src
from repro.dependence.distribution import plan_distribution


def plan(source, header="L1"):
    p = analyze_src(source)
    loop = p.nest.loop_of_header(header)
    return p, plan_distribution(p.result, loop)


class TestPiBlocks:
    def test_independent_statements_distribute(self):
        _, result = plan(
            "L1: for i = 1 to n do\n  A[i] = X[i] + 1\n  B[i] = Y[i] * 2\nendfor"
        )
        assert result.distributable
        assert len(result.pi_blocks) == 2

    def test_recurrence_is_one_block(self):
        _, result = plan(
            "L1: for i = 2 to n do\n  A[i] = A[i - 1] + 1\nendfor"
        )
        assert len(result.pi_blocks) == 1

    def test_forward_dependence_orders_blocks(self):
        _, result = plan(
            "L1: for i = 1 to n do\n  A[i] = X[i]\n  B[i] = A[i] + 1\nendfor"
        )
        assert result.distributable
        first, second = result.pi_blocks
        assert first[0].store.array == "A"
        assert second[0].store.array == "B"

    def test_backward_carried_cycle_fuses(self):
        """A[i] uses B[i-1] and B[i] uses A[i]: a cross-statement cycle."""
        _, result = plan(
            "L1: for i = 2 to n do\n  A[i] = B[i - 1]\n  B[i] = A[i] + 1\nendfor"
        )
        assert len(result.pi_blocks) == 1
        assert len(result.pi_blocks[0]) == 2

    def test_carried_forward_dependence_still_distributes(self):
        """B reads A from an *earlier* iteration: still src-before-dst."""
        _, result = plan(
            "L1: for i = 2 to n do\n  A[i] = X[i]\n  B[i] = A[i - 1]\nendfor"
        )
        assert result.distributable
        assert result.pi_blocks[0][0].store.array == "A"

    def test_statement_includes_feeding_loads(self):
        _, result = plan(
            "L1: for i = 1 to n do\n  t = X[i] + Y[i]\n  A[i] = t * 2\nendfor"
        )
        statement = result.pi_blocks[0][0]
        assert {load.array for load in statement.loads} == {"X", "Y"}

    def test_summary(self):
        _, result = plan("L1: for i = 1 to n do\n  A[i] = X[i]\nendfor")
        text = result.summary()
        assert "pi-block" in text and "pi0" in text


class TestClassificationPayoff:
    def test_periodic_both_ways_fuses_correctly(self):
        """A '!=' dependence is carried in *both* statement directions
        (earlier write/later read and vice versa): the two statements
        genuinely form a cycle and must stay together."""
        _, result = plan(
            "j = 1\nk = 2\nL1: for it = 1 to n do\n"
            "  A[j] = X[it]\n  B[it] = A[k]\n"
            "  t = j\n  j = k\n  k = t\nendfor"
        )
        assert len(result.pi_blocks) == 1

    def test_strict_monotonic_subscripts_distribute(self):
        """Figure 10's payoff: B[k3] collides only at equal iterations and
        the store precedes the read, so the forward '=' dependence does not
        create a cycle -- the statements distribute.  A linear-only
        analyzer sees '*' both ways and fuses them."""
        source = (
            "k = 0\nL1: for i = 1 to n do\n"
            "  if X[i] > 0 then\n"
            "    k = k + 1\n"
            "    B[k] = X[i]\n"
            "    C[i] = B[k]\n"
            "  endif\nendfor"
        )
        _, result = plan(source)
        assert result.distributable
        assert result.pi_blocks[0][0].store.array == "B"
        assert result.pi_blocks[1][0].store.array == "C"

        # ablate to linear-only: the same loop fuses into one pi-block
        import repro.dependence.testing as testing_module
        from repro.dependence.subscript import SubscriptDescriptor, SubscriptKind

        original = testing_module.describe_subscript

        def downgraded(analysis, value, block):
            descriptor = original(analysis, value, block)
            if descriptor.kind is SubscriptKind.MONOTONIC:
                return SubscriptDescriptor(
                    SubscriptKind.UNKNOWN, descriptor.loop_chain, reason="ablation"
                )
            return descriptor

        testing_module.describe_subscript = downgraded
        try:
            _, fused = plan(source)
        finally:
            testing_module.describe_subscript = original
        assert not fused.distributable
