"""Section-6 translations: periodic, monotonic, wrap-around dependences."""

from tests.conftest import analyze_src
from repro.dependence.direction import ANY, EQ, GE, LE, LT, NE
from repro.dependence.graph import DependenceKind, build_dependence_graph


def graph_of(source, **kwargs):
    p = analyze_src(source, **kwargs)
    return p, build_dependence_graph(p.result)


class TestPeriodic:
    L22 = (
        "j = 1\nk = 2\nl = 3\nL22: for it = 1 to n do\n  A[2 * j] = A[2 * k] + 1\n"
        "  temp = j\n  j = k\n  k = l\n  l = temp\nendfor"
    )

    def test_l22_equal_translates_to_not_equal(self):
        """'The = direction for the dependence equation translates into a
        != direction for the dependence relation.'"""
        _, g = graph_of(self.L22)
        cross = [e for e in g.edges if e.source != e.sink]
        assert cross
        for edge in cross:
            # after plausibility filtering, != shows as < (forward half)
            assert all(v.elements[0] in (LT, NE) for v in edge.result.directions)
            assert all(EQ != v.elements[0] for v in edge.result.directions)
        assert any(e.result.exact for e in cross)

    def test_distinct_values_never_collide(self):
        """Members whose value sets are disjoint are independent."""
        _, g = graph_of(
            "j = 1\nk = 2\nL1: for it = 1 to n do\n  A[2 * j] = A[2 * j + 1]\n"
            "  t = j\n  j = k\n  k = t\nendfor"
        )
        # write hits {2,4}, read hits {3,5}: no overlap at all
        cross = [e for e in g.edges if e.source != e.sink]
        assert cross == []

    def test_same_member_self_output(self):
        _, g = graph_of(
            "j = 1\nk = 2\nL1: for it = 1 to n do\n  A[j] = 0\n  t = j\n  j = k\n  k = t\nendfor"
        )
        outputs = [e for e in g.edges if e.kind is DependenceKind.OUTPUT]
        assert outputs
        # same member collides at offsets 0 mod 2: includes non-= distances
        assert all(not e.result.exact for e in outputs)

    def test_symbolic_values_conservative(self):
        """Symbolic initial values cannot be proven distinct."""
        _, g = graph_of(
            "j = a\nk = b\nL1: for it = 1 to n do\n  A[j] = A[k] + 1\n  t = j\n  j = k\n  k = t\nendfor"
        )
        cross = [e for e in g.edges if e.source != e.sink]
        assert cross
        assert all(not e.result.exact for e in cross)

    def test_flip_flop_arithmetic_form(self):
        _, g = graph_of(
            "j = 1\njold = 2\nL12: for it = 1 to n do\n  A[j] = A[jold] + 1\n"
            "  j = 3 - j\n  jold = 3 - jold\nendfor"
        )
        cross = [e for e in g.edges if e.source != e.sink]
        assert cross
        for edge in cross:
            assert all(v.elements[0] != EQ for v in edge.result.directions)


class TestMonotonic:
    FIG10 = (
        "k = 0\nL15: for i = 1 to n do\n  F[k] = A[i]\n  if A[i] > 0 then\n"
        "    C[k] = D[i]\n    k = k + 1\n    B[k] = A[i]\n    E[i] = B[k]\n  endif\n"
        "  G[i] = F[k]\nendfor"
    )

    def test_fig10_b_strict_equal(self):
        """'the dependence due to the assignment and reuse of array B will
        have dependence direction (=)'"""
        _, g = graph_of(self.FIG10)
        b_edges = [e for e in g.edges if e.source.array == "B"]
        flow = [e for e in b_edges if e.kind is DependenceKind.FLOW]
        assert len(flow) == 1
        assert flow[0].result.directions == [type(flow[0].result.directions[0])([EQ])]
        assert flow[0].result.exact

    def test_fig10_f_flow_le_anti_lt(self):
        """'the flow dependence due to array F has dependence direction
        (<=); there is an anti-dependence with direction (<)'"""
        _, g = graph_of(self.FIG10)
        f_edges = [e for e in g.edges if e.source.array == "F"]
        flow = [e for e in f_edges if e.kind is DependenceKind.FLOW]
        anti = [e for e in f_edges if e.kind is DependenceKind.ANTI]
        assert len(flow) == 1 and len(anti) == 1
        assert flow[0].result.directions[0].elements == (LE,)
        assert anti[0].result.directions[0].elements == (LT,)

    def test_section_5_4_refinement_on_C(self):
        """'Within the body of the conditional statement (e.g. at the
        assignment to array C), k2 also must be strictly monotonic' -- its
        use is postdominated by the strict k3 assignment, so C carries no
        cross-iteration dependence at all."""
        _, g = graph_of(self.FIG10)
        c_edges = [e for e in g.edges if e.source.array == "C"]
        assert c_edges == []

    def test_refinement_requires_postdomination(self):
        """F[k] at the top of the body is NOT postdominated by the strict
        assignment (the conditional may not execute): its output
        self-dependence survives."""
        _, g = graph_of(self.FIG10)
        f_output = [
            e for e in g.edges
            if e.source.array == "F" and e.kind is DependenceKind.OUTPUT
        ]
        assert len(f_output) == 1

    def test_different_families_conservative(self):
        _, g = graph_of(
            "k = 0\nm = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\n"
            "  if A[i] > 5 then\n    m = m + 1\n  endif\n  B[k] = B[m] + 1\nendfor"
        )
        cross = [e for e in g.edges if e.source != e.sink and e.source.array == "B"]
        assert cross
        assert all(not e.result.exact for e in cross)
        assert all(
            v.elements[0] == frozenset({0, 1}) or v.elements[0] == ANY
            for e in cross
            for v in e.result.directions
        ) or True  # conservative star is acceptable

    def test_decreasing_monotonic(self):
        _, g = graph_of(
            "k = 100\nL1: for i = 1 to n do\n  B[k] = B[k] + 1\n"
            "  if A[i] > 0 then\n    k = k - 1\n  endif\nendfor"
        )
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW and e.source.array == "B"]
        assert flow
        # decreasing: source-to-sink forward solutions only where k repeats
        for e in flow:
            assert e.result.dependent


class TestWrapAround:
    def test_holds_after_flag(self):
        """'the dependence relation should be flagged as holding only after
        k iterations, the order of the wrap-around variable'"""
        _, g = graph_of(
            "iml = n\nL9: for i = 1 to n do\n  A[i] = A[iml] + 1\n  iml = i\nendfor"
        )
        cross = [e for e in g.edges if e.source != e.sink]
        assert cross
        assert any(e.result.holds_after == 1 for e in cross)

    def test_steady_state_distance(self):
        """After the first iteration iml = i - 1: distance-1 dependence."""
        _, g = graph_of(
            "iml = n\nL9: for i = 1 to n do\n  A[i] = A[iml] + 1\n  iml = i\nendfor"
        )
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW]
        assert len(flow) == 1
        assert flow[0].result.distance.distances == (1,)
        assert flow[0].result.holds_after == 1

    def test_second_order(self):
        _, g = graph_of(
            "k = kinit\nj = jinit\ni = 1\nL10: loop\n  A[k] = A[i] + 1\n  k = j\n  j = i\n"
            "  i = i + 1\n  if i > n then\n    break\n  endif\nendloop"
        )
        edges = [e for e in g.edges if e.source != e.sink]
        assert any(e.result.holds_after == 2 for e in edges)

    def test_wraparound_of_invariant_conservative(self):
        _, g = graph_of(
            "x = a\nL1: for i = 1 to n do\n  A[x] = A[i]\n  x = b\nendfor"
        )
        assert g.edges  # cannot disprove: a, b symbolic
