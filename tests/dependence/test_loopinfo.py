"""Tests for loop parallelism and interchange legality."""

from tests.conftest import analyze_src
from repro.dependence.graph import build_dependence_graph
from repro.dependence.loopinfo import (
    analyze_parallelism,
    check_interchange,
    edge_carried_by,
)


def verdicts(source):
    p = analyze_src(source)
    return p, analyze_parallelism(p.result)


class TestParallelism:
    def test_independent_loop_is_doall(self):
        _, v = verdicts("L1: for i = 1 to n do\n  A[i] = B[i] * 2\nendfor")
        assert v["L1"].parallelizable

    def test_recurrence_is_serial(self):
        _, v = verdicts("L1: for i = 2 to n do\n  A[i] = A[i - 1] + 1\nendfor")
        assert not v["L1"].parallelizable
        assert v["L1"].carried

    def test_same_iteration_dependence_still_doall(self):
        _, v = verdicts("L1: for i = 1 to n do\n  A[i] = B[i]\n  C[i] = A[i]\nendfor")
        assert v["L1"].parallelizable

    def test_outer_carried_inner_parallel(self):
        _, v = verdicts(
            "L1: for i = 2 to n do\n  L2: for j = 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        assert not v["L1"].parallelizable
        assert v["L2"].parallelizable  # distance (1, 0): inner is DOALL

    def test_periodic_relaxation_inner_parallel(self):
        """The paper's payoff: periodic analysis makes the inner loop DOALL."""
        _, v = verdicts(
            "j = 1\njold = 2\nL1: for it = 1 to t do\n  L2: for x = 1 to n do\n"
            "    A[j, x] = A[jold, x] + 1\n  endfor\n"
            "  jt = jold\n  jold = j\n  j = jt\nendfor"
        )
        assert v["L2"].parallelizable
        assert not v["L1"].parallelizable

    def test_strictly_monotonic_store_is_doall(self):
        _, v = verdicts(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n"
            "    k = k + 1\n    B[k] = A[i]\n  endif\nendfor"
        )
        # the only B accesses use the strictly monotonic k: never collide
        # across iterations, and reads of A are input-only
        assert v["L1"].parallelizable

    def test_monotonic_nonstrict_is_serial(self):
        _, v = verdicts(
            "k = 0\nL1: for i = 1 to n do\n  F[k] = A[i]\n"
            "  if A[i] > 0 then\n    k = k + 1\n  endif\nendfor"
        )
        assert not v["L1"].parallelizable


class TestInterchange:
    def test_rectangular_distance_1_0_legal(self):
        p, _ = verdicts(
            "L1: for i = 2 to n do\n  L2: for j = 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        verdict = check_interchange(p.result, "L1", "L2")
        assert verdict.legal

    def test_triangular_lt_gt_blocks(self):
        """The paper's L23/L24 point: the (<, >) vector forbids interchange."""
        p, _ = verdicts(
            "L23: for i = 1 to n do\n  L24: for j = i + 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        verdict = check_interchange(p.result, "L23", "L24")
        assert not verdict.legal
        assert verdict.blocking

    def test_fully_independent_legal(self):
        p, _ = verdicts(
            "L1: for i = 1 to n do\n  L2: for j = 1 to n do\n"
            "    A[i, j] = B[i, j]\n  endfor\nendfor"
        )
        assert check_interchange(p.result, "L1", "L2").legal


class TestEdgeCarriedBy:
    def test_levels(self):
        p = analyze_src(
            "L1: for i = 2 to n do\n  L2: for j = 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        graph = build_dependence_graph(p.result)
        flow = [e for e in graph.edges if e.source.is_write and not e.sink.is_write][0]
        assert edge_carried_by(flow, "L1")
        assert not edge_carried_by(flow, "L2")
        assert not edge_carried_by(flow, "ghost")
