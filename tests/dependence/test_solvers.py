"""Unit tests for the ZIV/SIV/GCD/Banerjee solver layers."""

from fractions import Fraction

from repro.dependence.banerjee import (
    NEG_INF,
    POS_INF,
    Interval,
    banerjee_feasible,
    direction_term_interval,
    scaled_range,
)
from repro.dependence.direction import ANY, EQ, GT, LT
from repro.dependence.gcd import gcd_feasible
from repro.dependence.siv import strong_siv, weak_crossing_siv, weak_zero_siv

F = Fraction


class TestIntervals:
    def test_scaled_range_finite(self):
        assert scaled_range(F(2), 0, 5) == Interval(F(0), F(10))
        assert scaled_range(F(-2), 0, 5) == Interval(F(-10), F(0))

    def test_scaled_range_infinite(self):
        up = scaled_range(F(3), 1, None)
        assert up.lo == F(3) and up.hi == POS_INF
        down = scaled_range(F(-3), 1, None)
        assert down.lo == NEG_INF and down.hi == F(-3)

    def test_scaled_range_empty(self):
        assert scaled_range(F(1), 1, 0).empty

    def test_zero_coefficient(self):
        assert scaled_range(F(0), 0, None) == Interval(F(0), F(0))

    def test_interval_add_union_contains(self):
        a = Interval(F(0), F(5))
        b = Interval(F(-2), F(2))
        total = a + b
        assert total == Interval(F(-2), F(7))
        assert total.contains(F(0)) and not total.contains(F(8))
        assert a.union(b) == Interval(F(-2), F(5))

    def test_empty_propagates(self):
        assert (Interval.empty_interval() + Interval(F(0), F(1))).empty
        assert not Interval.empty_interval().contains(F(0))


class TestDirectionTermIntervals:
    def test_equal_direction(self):
        # a*h - b*h with h in [0, 9]: (a-b)*h
        iv = direction_term_interval(F(3), F(1), 10, EQ)
        assert iv == Interval(F(0), F(18))

    def test_less_direction(self):
        # h' > h: term (a-b)h - b*d
        iv = direction_term_interval(F(1), F(1), 10, LT)
        assert iv.lo == F(-9) and iv.hi == F(-1)

    def test_greater_direction(self):
        iv = direction_term_interval(F(1), F(1), 10, GT)
        assert iv.lo == F(1) and iv.hi == F(9)

    def test_star_is_union(self):
        star = direction_term_interval(F(1), F(1), 10, ANY)
        assert star.lo == F(-9) and star.hi == F(9)

    def test_trip_too_small_for_lt(self):
        assert direction_term_interval(F(1), F(1), 1, LT).empty


class TestBanerjee:
    def test_infeasible_delta(self):
        # h - h' = 100 with both in [0, 9]: impossible
        assert not banerjee_feasible([(F(1), F(1), 10)], [], F(100), [ANY])

    def test_feasible(self):
        assert banerjee_feasible([(F(1), F(1), 10)], [], F(5), [ANY])
        assert not banerjee_feasible([(F(1), F(1), 10)], [], F(5), [EQ])
        assert banerjee_feasible([(F(1), F(1), 10)], [], F(-5), [LT])

    def test_private_variables_extend_range(self):
        # delta 50 reachable only through the private term
        assert banerjee_feasible([(F(1), F(1), 10)], [(F(10), 11)], F(50), [EQ])
        assert not banerjee_feasible([(F(1), F(1), 10)], [(F(10), 3)], F(50), [EQ])

    def test_unbounded_trip(self):
        assert banerjee_feasible([(F(1), F(1), None)], [], F(-1000), [LT])


class TestGCD:
    def test_basic(self):
        # 2h - 2h' = 1 has no integer solutions
        assert not gcd_feasible([(F(2), F(2))], [], F(1), [ANY])
        assert gcd_feasible([(F(2), F(2))], [], F(4), [ANY])

    def test_equal_direction_uses_difference(self):
        # under '=', coefficient is a - b = 3: delta must divide by 3
        assert not gcd_feasible([(F(5), F(2))], [], F(1), [EQ])
        assert gcd_feasible([(F(5), F(2))], [], F(6), [EQ])
        # under '*', 5h - 2h' hits everything
        assert gcd_feasible([(F(5), F(2))], [], F(1), [ANY])

    def test_all_zero_coefficients(self):
        assert gcd_feasible([], [], F(0), [])
        assert not gcd_feasible([], [], F(3), [])

    def test_rational_scaling(self):
        # (1/2)h - (1/2)h' = 1/4: scaled to 2h - 2h' = 1: infeasible
        assert not gcd_feasible([(F(1, 2), F(1, 2))], [], F(1, 4), [ANY])


class TestSIV:
    def test_strong_distance(self):
        r = strong_siv(F(2), F(-6), 100)
        assert not r.independent and r.distance == 3

    def test_strong_non_integer(self):
        assert strong_siv(F(2), F(-5), 100).independent

    def test_strong_exceeds_trip(self):
        assert strong_siv(F(1), F(-200), 100).independent
        assert not strong_siv(F(1), F(-200), None).independent

    def test_strong_zero_distance(self):
        r = strong_siv(F(3), F(0), 10)
        assert r.distance == 0

    def test_weak_zero(self):
        r = weak_zero_siv(F(2), F(6), 100, True)
        assert not r.independent
        assert weak_zero_siv(F(2), F(5), 100, True).independent  # non-integer
        assert weak_zero_siv(F(2), F(-4), 100, True).independent  # pinned < 0
        assert weak_zero_siv(F(1), F(200), 100, True).independent  # pinned >= trip

    def test_weak_crossing(self):
        r = weak_crossing_siv(F(1), F(6), 100)
        assert not r.independent
        assert weak_crossing_siv(F(2), F(5), 100).independent  # fractional sum
        assert weak_crossing_siv(F(1), F(-2), 100).independent  # before loop
        assert weak_crossing_siv(F(1), F(300), 100).independent  # after loop
