"""Tests for subscript classification."""

from fractions import Fraction

from tests.conftest import analyze_src
from repro.dependence.subscript import SubscriptKind, describe_subscript
from repro.ir.instructions import Load, Store


def subscript_of_store(p, array, dim=0):
    for block in p.ssa:
        for inst in block:
            if isinstance(inst, Store) and inst.array == array:
                return describe_subscript(p.result, inst.indices[dim], block.label)
    raise AssertionError(f"no store to {array}")


class TestLinear:
    def test_simple_iv(self):
        p = analyze_src("L1: for i = 1 to n do\n  A[i] = 0\nendfor")
        d = subscript_of_store(p, "A")
        assert d.kind is SubscriptKind.LINEAR
        assert d.coeff("L1") == 1
        assert d.const == 1  # i = 1 + h

    def test_affine(self):
        p = analyze_src("L1: for i = 0 to n do\n  A[3 * i + 7] = 0\nendfor")
        d = subscript_of_store(p, "A")
        assert d.coeff("L1") == 3 and d.const == 7

    def test_constant(self):
        p = analyze_src("L1: for i = 0 to n do\n  A[42] = 0\nendfor")
        d = subscript_of_store(p, "A")
        assert d.is_ziv and d.const == 42

    def test_symbolic_offset(self):
        p = analyze_src("L1: for i = 0 to n do\n  A[i + m] = 0\nendfor")
        d = subscript_of_store(p, "A")
        assert d.kind is SubscriptKind.LINEAR
        assert "m" in str(d.const)

    def test_two_loop_affine(self):
        p = analyze_src(
            "L1: for i = 0 to n do\n  L2: for j = 0 to n do\n    A[10 * i + j] = 0\n  endfor\nendfor"
        )
        d = subscript_of_store(p, "A")
        assert d.coeff("L1") == 10 and d.coeff("L2") == 1

    def test_inner_init_depends_on_outer(self):
        p = analyze_src(
            "L1: for i = 0 to n do\n  L2: for j = i to n do\n    A[j] = 0\n  endfor\nendfor"
        )
        d = subscript_of_store(p, "A")
        # j = i + h2 = h1 + h2: coefficient 1 on both levels
        assert d.coeff("L1") == 1 and d.coeff("L2") == 1

    def test_bilinear_not_linear(self):
        """Step varying in the outer loop: not affine in the counters."""
        p = analyze_src(
            "L1: for i = 1 to n do\n  L2: for j = 0 to n do\n    A[i * j] = 0\n  endfor\nendfor"
        )
        d = subscript_of_store(p, "A")
        assert d.kind is not SubscriptKind.LINEAR


class TestSpecialKinds:
    def test_periodic(self):
        p = analyze_src(
            "j = 1\nk = 2\nL1: for it = 1 to n do\n  A[j] = 0\n  t = j\n  j = k\n  k = t\nendfor"
        )
        d = subscript_of_store(p, "A")
        assert d.kind is SubscriptKind.PERIODIC
        assert d.cls.period == 2

    def test_scaled_periodic_via_algebra(self):
        p = analyze_src(
            "j = 1\nk = 2\nL1: for it = 1 to n do\n  A[2 * j] = 0\n  t = j\n  j = k\n  k = t\nendfor"
        )
        d = subscript_of_store(p, "A")
        assert d.kind is SubscriptKind.PERIODIC
        assert [v.constant_value() for v in d.cls.values] == [2, 4]

    def test_monotonic(self):
        p = analyze_src(
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n  endif\n  B[k] = 0\nendfor"
        )
        d = subscript_of_store(p, "B")
        assert d.kind is SubscriptKind.MONOTONIC
        assert d.base_name is not None

    def test_wraparound(self):
        p = analyze_src(
            "iml = n\nL1: for i = 1 to n do\n  B[iml] = 0\n  iml = i\nendfor"
        )
        d = subscript_of_store(p, "B")
        assert d.kind is SubscriptKind.WRAPAROUND

    def test_polynomial_iv_degrades_to_monotonic(self):
        p = analyze_src(
            "t = 0\nL1: for i = 1 to n do\n  t = t + i\n  B[t] = 0\nendfor"
        )
        d = subscript_of_store(p, "B")
        assert d.kind is SubscriptKind.MONOTONIC
        assert d.cls.direction == 1

    def test_unknown_load_subscript(self):
        p = analyze_src("L1: for i = 1 to n do\n  B[A[i]] = 0\nendfor")
        d = subscript_of_store(p, "B")
        assert d.kind is SubscriptKind.UNKNOWN


class TestMultiDim:
    def test_per_dimension(self):
        p = analyze_src(
            "L1: for i = 1 to n do\n  L2: for j = 1 to n do\n    A[i, j + 1] = 0\n  endfor\nendfor"
        )
        d0 = subscript_of_store(p, "A", 0)
        d1 = subscript_of_store(p, "A", 1)
        assert d0.coeff("L1") == 1 and d0.coeff("L2") == 0
        assert d1.coeff("L2") == 1 and d1.const == 2
