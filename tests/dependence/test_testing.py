"""End-to-end dependence tests (linear path + plausibility filtering)."""

from tests.conftest import analyze_src
from repro.dependence.direction import EQ, GT, LE, LT, NE
from repro.dependence.graph import DependenceKind, build_dependence_graph


def graph_of(source, **kwargs):
    p = analyze_src(source, **kwargs)
    return p, build_dependence_graph(p.result)


def single_edge(graph, kind):
    edges = [e for e in graph.edges if e.kind is kind]
    assert len(edges) == 1, f"expected one {kind}, got {edges}"
    return edges[0]


class TestZIV:
    def test_distinct_constants_independent(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[1] = A[2]\nendfor")
        # the only dependence is the store's own output self-dependence
        assert all(e.kind is DependenceKind.OUTPUT for e in g.edges)
        assert all(e.source == e.sink for e in g.edges)

    def test_same_constant_dependent(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[5] = A[5] + 1\nendfor")
        kinds = {e.kind for e in g.edges}
        assert DependenceKind.FLOW in kinds and DependenceKind.OUTPUT in kinds

    def test_symbolic_equal_offsets(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[m] = A[m] + 1\nendfor")
        assert any(e.kind is DependenceKind.FLOW for e in g.edges)

    def test_symbolic_different_unprovable(self):
        # m vs m2: cannot prove distinct -> conservative dependence
        _, g = graph_of("L1: for i = 1 to n do\n  A[m] = A[m2] + 1\nendfor")
        cross = [e for e in g.edges if e.source != e.sink]
        assert cross  # conservative
        assert all(not e.result.exact for e in cross)


class TestStrongSIV:
    def test_classic_distance_one(self):
        _, g = graph_of("L1: for i = 2 to n do\n  A[i] = A[i - 1] + 1\nendfor")
        flow = single_edge(g, DependenceKind.FLOW)
        assert flow.result.distance.distances == (1,)
        assert flow.result.directions[0].elements == (LT,)

    def test_independent_beyond_trip_count(self):
        _, g = graph_of("L1: for i = 1 to 10 do\n  A[i] = A[i + 100] + 1\nendfor")
        assert g.edges == []

    def test_non_integer_distance_independent(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[2 * i] = A[2 * i + 1]\nendfor")
        assert g.edges == []

    def test_same_subscript_output_self(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[i] = 0\n  A[i] = 1\nendfor")
        outputs = [e for e in g.edges if e.kind is DependenceKind.OUTPUT]
        # two sites -> forward orientation same-iteration only
        same_iter = [e for e in outputs if e.result.directions[0].elements == (EQ,)]
        assert same_iter


class TestWeakSIV:
    def test_weak_zero(self):
        """A[5] = A[i]: the write is pinned to one iteration."""
        _, g = graph_of("L1: for i = 1 to 10 do\n  A[5] = A[i] + 1\nendfor")
        assert any(e.kind is DependenceKind.FLOW for e in g.edges)

    def test_weak_zero_out_of_range_independent(self):
        _, g = graph_of("L1: for i = 1 to 10 do\n  B[i] = A[i] + 1\n  A[50] = 0\nendfor")
        assert [e for e in g.edges if e.source.array == "A"] == [
            e for e in g.edges if e.source.array == "A" and e.kind is DependenceKind.OUTPUT
        ]

    def test_weak_crossing(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[i] = A[10 - i]\nendfor")
        assert g.edges  # crossing dependence exists


class TestMIV:
    def test_gcd_disproof(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[2 * i] = A[2 * i + 1]\nendfor")
        assert g.edges == []

    def test_coupled_two_loops(self):
        p, g = graph_of(
            "L23: for i = 1 to n do\n  L24: for j = 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        flow = single_edge(g, DependenceKind.FLOW)
        assert flow.result.distance.distances == (1, 0)

    def test_l23_l24_triangular_matches_paper(self):
        """Section 6.1: the triangular loop has the *same* representation
        whether the source is normalized or not; in normalized counters the
        distance is (1, -1)."""
        _, g1 = graph_of(
            "L23: for i = 1 to n do\n  L24: for j = i + 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        _, g2 = graph_of(
            "L23: for i = 1 to n do\n  L24: for j = 1 to n - i do\n"
            "    A[i, j + i] = A[i - 1, j + i] + 1\n  endfor\nendfor"
        )
        f1 = single_edge(g1, DependenceKind.FLOW)
        f2 = single_edge(g2, DependenceKind.FLOW)
        assert f1.result.directions == f2.result.directions
        assert f1.result.directions[0].elements == (LT, GT)

    def test_independent_dimensions(self):
        _, g = graph_of(
            "L1: for i = 1 to n do\n  L2: for j = 1 to n do\n"
            "    A[i, j] = A[i, j + 3] * 2\n  endfor\nendfor"
        )
        # the read runs ahead of the write: an anti dependence at (=, <)
        # with exact distance (0, 3); dimension 0 pins the outer level to =
        anti = [e for e in g.edges if e.kind is DependenceKind.ANTI]
        assert len(anti) == 1
        assert anti[0].result.directions[0].elements == (EQ, LT)
        assert anti[0].result.distance.distances == (0, 3)

    def test_rank_mismatch_conservative(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[i] = A[i, 2] + 1\nendfor")
        assert g.edges
        assert not g.edges[0].result.exact


class TestPrivateLoops:
    def test_non_common_loop_variable(self):
        source = (
            "L1: for i = 1 to 10 do\n"
            "  L2: for j = 0 to 2 do\n    A[10 * i + j] = 1\n  endfor\n"
            "  L3: for k = 5 to 7 do\n    x = A[10 * i + k]\n  endfor\n"
            "endfor"
        )
        _, g = graph_of(source)
        # j in [0,2], k in [5,7]: ranges disjoint within the same i
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW]
        for e in flow:
            assert all(v.elements[0] != EQ for v in e.result.directions) or not e.result.directions

    def test_private_overlap_detected(self):
        source = (
            "L1: for i = 1 to 10 do\n"
            "  L2: for j = 0 to 5 do\n    A[j] = 1\n  endfor\n"
            "  L3: for k = 3 to 8 do\n    x = A[k]\n  endfor\n"
            "endfor"
        )
        _, g = graph_of(source)
        assert any(e.kind is DependenceKind.FLOW for e in g.edges)


class TestOrientation:
    def test_backward_directions_move_to_reversed_pair(self):
        p, g = graph_of("L1: for i = 2 to n do\n  A[i] = A[i - 1] + 1\nendfor")
        # anti: read A[i-1] then write A[i]: distance would be -1: dropped
        anti = [e for e in g.edges if e.kind is DependenceKind.ANTI]
        assert anti == []

    def test_anti_when_read_ahead(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[i] = A[i + 1] + 1\nendfor")
        anti = [e for e in g.edges if e.kind is DependenceKind.ANTI]
        assert len(anti) == 1
        assert anti[0].result.directions[0].elements == (LT,)
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW]
        assert flow == []

    def test_same_iteration_needs_program_order(self):
        _, g = graph_of("L1: for i = 1 to n do\n  x = A[i]\n  A[i] = x + 1\nendfor")
        # read before write in the body: anti with (=), no same-iter flow
        anti = [e for e in g.edges if e.kind is DependenceKind.ANTI]
        assert any(v.elements == (EQ,) for e in anti for v in e.result.directions)
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW]
        assert all(v.elements != (EQ,) for e in flow for v in e.result.directions)


class TestLoopIndependent:
    def test_no_common_loops(self):
        _, g = graph_of(
            "L1: for i = 1 to n do\n  A[i] = 1\nendfor\n"
            "L2: for j = 1 to n do\n  x = A[j]\nendfor"
        )
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW]
        assert flow
        assert flow[0].result.common_loops == ()

    def test_different_arrays_independent(self):
        _, g = graph_of("L1: for i = 1 to n do\n  A[i] = B[i]\nendfor")
        assert g.edges == []


class TestDownwardLoops:
    def test_downward_recurrence(self):
        """for i = n downto 2: A[i] = A[i-1]: read is 'ahead' in time."""
        _, g = graph_of("L1: for i = n downto 2 do\n  A[i] = A[i - 1] + 1\nendfor")
        anti = [e for e in g.edges if e.kind is DependenceKind.ANTI]
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW]
        assert len(anti) == 1 and flow == []
        assert anti[0].result.distance.distances == (1,)

    def test_downward_flow(self):
        _, g = graph_of("L1: for i = n downto 1 do\n  A[i] = A[i + 1] + 1\nendfor")
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW]
        assert len(flow) == 1
        assert flow[0].result.distance.distances == (1,)

    def test_downward_independent(self):
        _, g = graph_of("L1: for i = n downto 1 do\n  A[2 * i] = A[2 * i + 1]\nendfor")
        assert g.edges == []
