"""The lint driver and the ``repro lint`` / ``--verify`` CLI surfaces."""

import json

import pytest

from repro.cli import main
from repro.diagnostics import DiagnosticCollector, render_json, render_text
from repro.diagnostics.driver import (
    collect_targets,
    harvest_python,
    lint_paths,
    lint_source,
)

GOOD = """
i = 0
L1: while i < n do
  i = i + 2
  A[i] = A[i - 2] + 1
endwhile
return i
"""

BROKEN = "L1: while do\n"


class TestDriver:
    def test_lint_source_clean_program(self):
        found = lint_source(GOOD, origin="good.loop")
        assert not [d for d in found if d.is_error]
        assert all(d.origin == "good.loop" for d in found)

    def test_lnt001_on_unparsable_program(self):
        found = lint_source(BROKEN, origin="bad.loop")
        assert [d.code for d in found] == ["LNT001"]
        assert found[0].is_error

    def test_harvest_python(self, tmp_path):
        py = tmp_path / "embedded.py"
        py.write_text(f'PROGRAM = """{GOOD}"""\nNOT_A_PROGRAM = "hello"\n')
        targets = harvest_python(str(py))
        assert len(targets) == 1
        assert targets[0].origin == f"{py}:1"
        assert "while i < n do" in targets[0].source

    def test_collect_targets_walks_directories(self, tmp_path):
        (tmp_path / "a.loop").write_text(GOOD)
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.loop").write_text(GOOD)
        (sub / "c.py").write_text(f'SRC = """{GOOD}"""\n')
        targets = collect_targets([str(tmp_path)])
        assert len(targets) == 3

    def test_lint_paths_aggregates(self, tmp_path):
        (tmp_path / "good.loop").write_text(GOOD)
        (tmp_path / "bad.loop").write_text(BROKEN)
        collector = lint_paths([str(tmp_path)])
        assert "LNT001" in collector.codes()
        assert {d.origin for d in collector} == {
            str(tmp_path / "good.loop"),
            str(tmp_path / "bad.loop"),
        }

    def test_examples_lint_clean_in_strict_mode(self):
        """Acceptance: every program under examples/ lints with zero errors."""
        collector = lint_paths(["examples"])
        assert len(collector.diagnostics) > 0  # the harvest found programs
        assert not collector.has_errors, render_text(collector.errors())


class TestRenderers:
    def test_render_text_layout(self):
        found = lint_source(BROKEN, origin="bad.loop")
        text = render_text(found)
        assert "bad.loop" in text
        assert "error LNT001" in text
        assert "1 error" in text

    def test_render_json_payload(self):
        found = lint_source(BROKEN, origin="bad.loop")
        payload = json.loads(render_json(found))
        assert payload["counts"] == {"error": 1}
        assert payload["findings"][0]["code"] == "LNT001"
        assert payload["findings"][0]["origin"] == "bad.loop"


class TestCLI:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_lint_clean_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "good.loop"
        path.write_text(GOOD)
        assert main(["lint", "--strict", str(path)]) == 0

    def test_lint_strict_exit_one_on_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.loop"
        path.write_text(BROKEN)
        assert main(["lint", str(path)]) == 0  # findings reported, no gate
        assert main(["lint", "--strict", str(path)]) == 1

    def test_lint_missing_path_exit_two(self, capsys):
        assert main(["lint", "definitely/not/a/path.loop"]) == 2

    def test_lint_json_format(self, tmp_path, capsys):
        path = tmp_path / "bad.loop"
        path.write_text(BROKEN)
        main(["lint", "--format=json", str(path)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["codes"] == {"LNT001": "analysis-failed"}

    def test_verify_flag_reports_clean(self, tmp_path, capsys):
        path = tmp_path / "good.loop"
        path.write_text(GOOD)
        assert main([str(path), "--verify", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "== diagnostics ==" in out
        assert "clean: no findings" in out

    def test_lint_flag_appends_findings(self, tmp_path, capsys):
        path = tmp_path / "good.loop"
        path.write_text(GOOD)
        assert main([str(path), "--lint"]) == 0
        out = capsys.readouterr().out
        assert "== diagnostics ==" in out
        assert "SRC404" in out  # the dead initial copy is reported

    def test_sanitize_flag_runs_clean(self, tmp_path, capsys):
        path = tmp_path / "good.loop"
        path.write_text(GOOD)
        assert main([str(path), "--sanitize"]) == 0
