"""docs/DIAGNOSTICS.md must catalogue every registered diagnostic code."""

import os
import re

from repro.diagnostics import all_checks, all_codes, check_info

DOCS = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "DIAGNOSTICS.md")


def read_docs():
    with open(DOCS) as handle:
        return handle.read()


def test_every_code_has_a_catalogue_entry():
    text = read_docs()
    missing = [code for code in all_codes() if f"### {code}" not in text]
    assert not missing, f"codes missing from docs/DIAGNOSTICS.md: {missing}"


def test_headings_carry_title_and_severity():
    text = read_docs()
    for check in all_checks():
        pattern = rf"^### {check.code} — {re.escape(check.title)} \({check.severity}\)$"
        assert re.search(pattern, text, re.MULTILINE), (
            f"heading for {check.code} must be "
            f"'### {check.code} — {check.title} ({check.severity})'"
        )


def test_no_unregistered_codes_documented():
    text = read_docs()
    documented = re.findall(r"^### ([A-Z]{2,3}\d{3})", text, re.MULTILINE)
    unknown = [code for code in documented if code not in all_codes()]
    assert not unknown, f"docs mention unregistered codes: {unknown}"
    assert len(documented) == len(set(documented)), "duplicate catalogue entries"


def test_registry_lookup_round_trips():
    for code in all_codes():
        info = check_info(code)
        assert info.code == code
        assert info.description
