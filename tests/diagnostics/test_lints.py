"""Semantic lints: classification soundness and source-level findings.

The CLS tests *tamper* with analysis results on purpose -- planting a
wrong closed form, a wrong monotonic verdict, corrupt wrap-around
bookkeeping -- and assert the lint catches exactly that code.
"""

from repro.core.classes import (
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.diagnostics import DiagnosticCollector
from repro.diagnostics.lints import (
    lint_execution,
    lint_lattice,
    lint_program,
    lint_source,
)
from repro.pipeline import analyze
from repro.symbolic.closedform import ClosedForm
from repro.symbolic.expr import Expr

COUNTING = """
i = 0
L1: while i < n do
  i = i + 2
endwhile
return i
"""

NESTED = """
j = 0
L1: for i = 1 to n do
  j = j + i
  L2: for k = 1 to i do
    j = j + 1
  endfor
endfor
return j
"""


def run_lints(program, which=lint_program):
    out = DiagnosticCollector()
    if which is lint_program:
        which(program, collector=out)
    else:
        which(program, out)
    return out


def header_iv_name(program, header="L1"):
    """The loop's linear IV defined at the header (e.g. ``i.2``)."""
    summary = program.result.loops[header]
    for name, cls in summary.classifications.items():
        site = program.ssa.def_site(name)
        if (
            isinstance(cls, InductionVariable)
            and cls.is_linear
            and site is not None
            and site[0] == header
        ):
            return name
    raise AssertionError("no header IV found")


class TestExecutionLints:
    def test_clean_program_has_no_cls_findings(self):
        out = run_lints(analyze(COUNTING))
        assert not [c for c in out.codes() if c.startswith("CLS")]

    def test_cls301_wrong_closed_form(self):
        program = analyze(COUNTING)
        name = header_iv_name(program)
        summary = program.result.loops["L1"]
        summary.classifications[name] = InductionVariable(
            "L1", ClosedForm.linear(0, 5)  # truth steps by 2
        )
        out = run_lints(program, lint_execution)
        (diag,) = [d for d in out if d.code == "CLS301"]
        assert diag.name == name
        assert diag.is_error

    def test_cls301_wrong_invariant(self):
        program = analyze(COUNTING)
        name = header_iv_name(program)
        summary = program.result.loops["L1"]
        summary.classifications[name] = Invariant(Expr.const(17), loop="L1")
        out = run_lints(program, lint_execution)
        assert "CLS301" in out.codes()

    def test_cls302_wrong_direction(self):
        program = analyze(COUNTING)
        name = header_iv_name(program)
        summary = program.result.loops["L1"]
        summary.classifications[name] = Monotonic("L1", direction=-1, strict=True)
        out = run_lints(program, lint_execution)
        (diag,) = [d for d in out if d.code == "CLS302"]
        assert diag.name == name

    def test_monotonic_consistent_verdict_clean(self):
        program = analyze(COUNTING)
        name = header_iv_name(program)
        summary = program.result.loops["L1"]
        summary.classifications[name] = Monotonic("L1", direction=1, strict=True)
        out = run_lints(program, lint_execution)
        assert "CLS302" not in out.codes()

    def test_nested_loop_names_are_skipped(self):
        # inner-loop names are summarized by exit values; the execution
        # lint must not diff them against the interleaved history
        out = run_lints(analyze(NESTED))
        assert not out.errors()


class TestLatticeLints:
    def test_cls303_algebra_law_violation(self):
        program = analyze(COUNTING)
        summary = program.result.loops["L1"]
        # find the add feeding the IV: its result must classify as an IV
        name = [
            n
            for n, c in summary.classifications.items()
            if isinstance(c, InductionVariable)
            and program.ssa.def_site(n) is not None
            and program.ssa.def_site(n)[0] != "L1"
        ][0]
        summary.classifications[name] = Unknown("tampered")
        out = run_lints(program, lint_lattice)
        assert "CLS303" in out.codes()

    def test_cls304_unsimplified_wraparound(self):
        program = analyze(COUNTING)
        name = header_iv_name(program)
        summary = program.result.loops["L1"]
        inner = summary.classifications[name]
        # pre-value equals inner.value_at(0): simplify() would collapse it
        wrapped = WrapAround("L1", 1, inner, (inner.value_at(0),))
        summary.classifications[name] = wrapped
        out = run_lints(program, lint_lattice)
        assert "CLS304" in out.codes()

    def test_cls305_constant_periodic(self):
        program = analyze(COUNTING)
        name = header_iv_name(program)
        summary = program.result.loops["L1"]
        summary.classifications[name] = Periodic(
            "L1", (Expr.const(3), Expr.const(3))
        )
        out = run_lints(program, lint_lattice)
        assert "CLS305" in out.codes()

    def test_cls306_order_mismatch(self):
        program = analyze(COUNTING)
        name = header_iv_name(program)
        summary = program.result.loops["L1"]
        inner = summary.classifications[name]
        wrapped = WrapAround("L1", 1, inner, (Expr.const(99),))
        wrapped.order = 2  # corrupt the bookkeeping (ctor validates)
        summary.classifications[name] = wrapped
        out = run_lints(program, lint_lattice)
        assert "CLS306" in out.codes()


class TestSourceLints:
    def test_src401_hoistable_invariant(self):
        program = analyze(
            """
L1: for i = 1 to n do
  t = n * n
  A[i] = t
endfor
return n
"""
        )
        out = run_lints(program, lint_source)
        assert "SRC401" in out.codes()

    def test_src402_dead_store(self):
        program = analyze(
            """
L1: for i = 1 to n do
  A[i] = 1
  A[i] = 2
endfor
return n
"""
        )
        out = run_lints(program, lint_source)
        assert "SRC402" in out.codes()

    def test_no_dead_store_with_intervening_load(self):
        program = analyze(
            """
L1: for i = 1 to n do
  A[i] = 1
  x = A[i]
  A[i] = x + 1
endfor
return n
"""
        )
        out = run_lints(program, lint_source)
        assert "SRC402" not in out.codes()

    def test_src403_non_affine_subscript(self):
        program = analyze(
            """
L1: for i = 1 to n do
  q = B[i]
  A[q] = 0
endfor
return n
"""
        )
        out = run_lints(program, lint_source)
        assert "SRC403" in out.codes()

    def test_src404_unused_definition(self):
        program = analyze(
            """
i = 0
L1: while i < n do
  u = i + 7
  i = i + 1
endwhile
return i
"""
        )
        out = run_lints(program, lint_source)
        unused = [d for d in out if d.code == "SRC404"]
        assert any("u" in (d.name or "") for d in unused)

    def test_affine_subscript_clean(self):
        program = analyze(COUNTING.replace("i = i + 2", "A[i] = i\n  i = i + 2"))
        out = run_lints(program, lint_source)
        assert "SRC403" not in out.codes()
