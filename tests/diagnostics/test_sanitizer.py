"""Pipeline sanitizer: stale-cache audits and broken-pass detection.

The deliberate-bug tests mutate IR *without* calling ``Function.dirty()``
to prove the sanitizer catches exactly the contract violations the cached
indexes (PR 1) depend on.
"""

import pytest

from repro.diagnostics import DiagnosticCollector, sanitizing
from repro.diagnostics.sanitizer import (
    SanitizerError,
    active,
    audit_caches,
    checkpoint,
    stages_run,
)
from repro.ir.function import Function
from repro.ir.instructions import Assign, Jump, Return
from repro.ir.parser import parse_function
from repro.pipeline import analyze

SRC = """
i = 0
L1: while i < n do
  i = i + 2
endwhile
return i
"""


def make_linear():
    return parse_function(
        """
func f() {
entry:
  %a = copy 1
  %b = copy 2
  jump next
next:
  %c = copy 3
  return %c
}
"""
    )


class TestContext:
    def test_checkpoint_noop_when_inactive(self):
        f = Function("f")  # would report IR001 under a context
        assert not active()
        assert checkpoint(f, "anything") == []

    def test_context_activates_and_deactivates(self):
        assert not active()
        with sanitizing(strict=False):
            assert active()
        assert not active()

    def test_contexts_do_not_nest(self):
        out = DiagnosticCollector()
        with sanitizing(strict=False, collector=out) as outer:
            with sanitizing(strict=True) as inner:
                assert inner is outer
            assert active()

    def test_stages_recorded(self):
        f = make_linear()
        with sanitizing(strict=False):
            checkpoint(f, "one", ssa=False)
            checkpoint(f, "two", ssa=False)
            assert stages_run() == ["one", "two"]

    def test_pipeline_checkpoints_fire(self):
        with sanitizing(strict=True):
            analyze(SRC)
            stages = stages_run()
        assert "simplify-loops" in stages
        assert "construct-ssa" in stages
        assert "sccp" in stages

    def test_analyze_sanitize_flag_is_clean(self):
        program = analyze(SRC, sanitize=True)  # strict: raises on violation
        assert program.result.loops


class TestCacheAudit:
    def test_clean_function_audits_clean(self):
        f = make_linear()
        f.definitions()
        assert audit_caches(f) == []

    def test_san201_inplace_rename_skipping_dirty(self):
        f = make_linear()
        f.definitions()  # populate the cache
        f.block("entry").instructions[0] = Assign("renamed", 1)  # no dirty()!
        found = audit_caches(f)
        assert "SAN201" in [d.code for d in found]

    def test_san202_inplace_swap_skipping_dirty(self):
        f = make_linear()
        f.def_site("a")  # populate the cache
        insts = f.block("entry").instructions
        insts[0], insts[1] = insts[1], insts[0]  # no dirty()!
        found = audit_caches(f)
        codes = [d.code for d in found]
        # definitions() maps name -> (label, inst): unchanged by a swap;
        # def_site() positions are what go stale
        assert "SAN202" in codes
        assert "SAN201" not in codes

    def test_dirty_call_heals_the_caches(self):
        f = make_linear()
        f.definitions()
        f.block("entry").instructions[0] = Assign("renamed", 1)
        f.dirty()
        assert audit_caches(f) == []

    def test_checkpoint_reports_stale_cache(self):
        f = make_linear()
        f.definitions()
        out = DiagnosticCollector()
        with sanitizing(strict=False, collector=out):
            f.block("entry").instructions[0] = Assign("renamed", 1)
            checkpoint(f, "bad-pass", ssa=False)
        assert "SAN201" in out.codes()
        (diag,) = [d for d in out if d.code == "SAN201"]
        assert diag.stage == "bad-pass"

    def test_strict_checkpoint_raises_on_stale_cache(self):
        f = make_linear()
        f.definitions()
        with sanitizing(strict=True):
            f.block("entry").instructions[0] = Assign("renamed", 1)
            with pytest.raises(SanitizerError) as excinfo:
                checkpoint(f, "bad-pass", ssa=False)
        assert excinfo.value.stage == "bad-pass"
        assert "SAN201" in [d.code for d in excinfo.value.diagnostics]


class TestBrokenIR:
    def test_san203_pass_broke_ssa(self):
        program = analyze(SRC)
        f = program.ssa
        # a "pass" that duplicates an existing SSA definition
        name = next(iter(f.definitions()))
        f.block(f.entry_label).append(Assign(name, 0))
        f.dirty()  # caches are fine -- the *IR* is broken
        out = DiagnosticCollector()
        with sanitizing(strict=False, collector=out):
            checkpoint(f, "evil-pass")
        assert "IR101" in out.codes()
        assert "SAN203" in out.codes()
        assert all(d.stage == "evil-pass" for d in out)

    def test_san203_strict_raises(self):
        program = analyze(SRC)
        f = program.ssa
        name = next(iter(f.definitions()))
        f.block(f.entry_label).append(Assign(name, 0))
        f.dirty()
        with sanitizing(strict=True):
            with pytest.raises(SanitizerError, match="evil-pass"):
                checkpoint(f, "evil-pass")

    def test_structural_break_detected_pre_ssa(self):
        f = make_linear()
        out = DiagnosticCollector()
        with sanitizing(strict=False, collector=out):
            f.block("next").terminator = None
            f.dirty()
            checkpoint(f, "terminator-eater", ssa=False)
        assert "IR004" in out.codes()
        assert "SAN203" in out.codes()

    def test_frontend_dead_landing_blocks_not_flagged(self):
        # `return` mid-function parks unreachable code in a `dead` block;
        # checkpoints must not warn about the frontend's own convention
        out = DiagnosticCollector()
        with sanitizing(strict=False, collector=out):
            analyze(SRC)
        assert "IR006" not in out.codes()

    def test_transform_orphaned_block_is_flagged(self):
        f = make_linear()
        orphan = f.add_block("orphan")
        orphan.terminator = Return()
        f.dirty()
        out = DiagnosticCollector()
        with sanitizing(strict=False, collector=out):
            checkpoint(f, "edge-eater", ssa=False)
        assert "IR006" in out.codes()
