"""Collect-all verifier: every IR/SSA diagnostic code has a trigger."""

import pytest

from repro.diagnostics import DiagnosticCollector, verify_collect
from repro.diagnostics.diagnostic import Severity
from repro.ir.function import Function, IRError
from repro.ir.instructions import Assign, BinOp, Branch, Jump, Phi, Return
from repro.ir.opcodes import BinaryOp
from repro.ir.parser import parse_function
from repro.ir.values import Ref
from repro.ir.verify import verify_diagnostics, verify_function


def make_diamond():
    return parse_function(
        """
func f(c) {
entry:
  branch %c, left, right
left:
  %x.1 = copy 1
  jump join
right:
  %x.2 = copy 2
  jump join
join:
  %x.3 = phi [left: %x.1, right: %x.2]
  return %x.3
}
"""
    )


def codes(diags):
    return [d.code for d in diags]


class TestStructural:
    def test_clean(self):
        assert verify_collect(make_diamond(), ssa=True) == []

    def test_ir001_no_blocks(self):
        assert codes(verify_collect(Function("f"))) == ["IR001"]

    def test_ir002_missing_entry(self):
        f = Function("f")
        f.add_block("start").terminator = Return()
        f.entry_label = "nowhere"
        assert "IR002" in codes(verify_collect(f))

    def test_ir003_unknown_branch_target(self):
        f = Function("f")
        f.add_block("entry").terminator = Jump("nowhere")
        assert "IR003" in codes(verify_collect(f))

    def test_ir004_missing_terminator(self):
        f = Function("f")
        f.add_block("entry")
        assert "IR004" in codes(verify_collect(f))

    def test_ir005_phi_after_non_phi(self):
        f = Function("f")
        b = f.add_block("entry")
        b.append(Assign("x", 1))
        b.instructions.append(Phi("y", {}))
        b.terminator = Return()
        assert "IR005" in codes(verify_collect(f))

    def test_ir006_unreachable_block(self):
        f = make_diamond()
        f.add_block("island").terminator = Return()
        found = verify_collect(f)
        assert codes(found) == ["IR006"]
        assert found[0].severity is Severity.WARNING
        assert found[0].block == "island"

    def test_ir007_phi_in_entry(self):
        f = make_diamond()
        f.block("entry").instructions.insert(0, Phi("p", {}))
        assert "IR007" in codes(verify_collect(f))

    def test_collects_all_not_just_first(self):
        f = Function("f")
        f.add_block("entry")  # no terminator
        f.add_block("b").terminator = Jump("nowhere")
        found = verify_collect(f)
        assert "IR003" in codes(found)
        assert "IR004" in codes(found)
        assert "IR006" in codes(found)  # `b` is unreachable too


class TestSSA:
    def test_ir101_duplicate_definition(self):
        f = make_diamond()
        f.block("right").append(Assign("x.1", 3))
        assert "IR101" in codes(verify_collect(f, ssa=True))

    def test_ir102_parameter_shadowed(self):
        f = make_diamond()
        f.block("left").append(Assign("c", 3))
        assert "IR102" in codes(verify_collect(f, ssa=True))

    def test_ir103_phi_predecessor_mismatch(self):
        f = make_diamond()
        del f.block("join").phis()[0].incoming["left"]
        assert "IR103" in codes(verify_collect(f, ssa=True))

    def test_ir104_undominated_use(self):
        f = make_diamond()
        f.block("right").append(BinOp("y", BinaryOp.ADD, Ref("x.1"), 1))
        assert "IR104" in codes(verify_collect(f, ssa=True))

    def test_ir104_use_before_def_same_block(self):
        f = Function("f")
        b = f.add_block("entry")
        b.append(BinOp("a", BinaryOp.ADD, Ref("b"), 1))
        b.append(Assign("b", 1))
        b.terminator = Return()
        assert "IR104" in codes(verify_collect(f, ssa=True))

    def test_ir105_phi_edge_value_unavailable(self):
        f = make_diamond()
        f.block("join").phis()[0].incoming["left"] = Ref("x.2")
        assert "IR105" in codes(verify_collect(f, ssa=True))

    def test_ir106_undominated_terminator_use(self):
        f = make_diamond()
        f.block("join").terminator = Return(Ref("x.1"))
        assert "IR106" in codes(verify_collect(f, ssa=True))

    def test_ir107_undefined_use(self):
        f = Function("f")
        f.add_block("entry").terminator = Branch(Ref("ghost"), "a", "a")
        f.add_block("a").terminator = Return()
        assert "IR107" in codes(verify_collect(f, ssa=True))

    def test_ir108_self_referential_def(self):
        f = Function("f")
        b = f.add_block("entry")
        b.append(BinOp("x.1", BinaryOp.ADD, Ref("x.1"), 1))
        b.terminator = Return()
        found = verify_collect(f, ssa=True)
        assert codes(found) == ["IR108"]  # no IR104 double-report

    def test_self_reference_legal_in_named_ir(self):
        f = Function("f")
        b = f.add_block("entry")
        b.append(Assign("i", 0))
        b.append(BinOp("i", BinaryOp.ADD, Ref("i"), 1))
        b.terminator = Return()
        assert verify_collect(f, ssa=False) == []

    def test_ssa_checks_skipped_on_structural_errors(self):
        f = make_diamond()
        f.block("left").terminator = None  # structural break
        f.block("right").append(Assign("x.1", 3))  # would be IR101
        found = verify_collect(f, ssa=True)
        assert "IR004" in codes(found)
        assert "IR101" not in codes(found)

    def test_collects_multiple_ssa_errors(self):
        f = make_diamond()
        f.block("right").append(Assign("x.1", 3))
        f.block("left").append(Assign("c", 3))
        found = verify_collect(f, ssa=True)
        assert "IR101" in codes(found)
        assert "IR102" in codes(found)

    def test_unreachable_block_does_not_crash_dominance(self):
        f = make_diamond()
        island = f.add_block("island")
        island.append(BinOp("z", BinaryOp.ADD, Ref("x.1"), 1))
        island.terminator = Return()
        found = verify_collect(f, ssa=True)
        assert codes(found) == ["IR006"]


class TestCollectorIntegration:
    def test_collector_accumulates(self):
        out = DiagnosticCollector()
        verify_collect(Function("f"), collector=out)
        verify_collect(Function("g"), collector=out)
        assert codes(out.diagnostics) == ["IR001", "IR001"]
        assert out.has_errors

    def test_diagnostics_are_located(self):
        f = Function("f")
        f.add_block("entry")
        (diag,) = verify_collect(f)
        assert diag.function == "f"
        assert diag.block == "entry"
        assert diag.is_error


class TestCompatWrapper:
    def test_verify_function_raises_first_error(self):
        f = Function("f")
        f.add_block("entry")
        with pytest.raises(IRError, match="terminator"):
            verify_function(f)

    def test_verify_function_ignores_warnings(self):
        f = make_diamond()
        f.add_block("island").terminator = Return()
        verify_function(f, ssa=True)  # IR006 is warning-severity: no raise

    def test_verify_diagnostics_collects(self):
        f = make_diamond()
        f.block("right").append(Assign("x.1", 3))
        f.block("left").append(Assign("c", 3))
        found = verify_diagnostics(f, ssa=True)
        assert {"IR101", "IR102"} <= set(codes(found))
