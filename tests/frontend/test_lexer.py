"""Tests for the loop-language lexer."""

import pytest

from repro.frontend.lexer import FrontendError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


class TestTokens:
    def test_simple_assignment(self):
        assert texts("i = i + 1") == ["i", "=", "i", "+", "1"]

    def test_keywords_recognized(self):
        tokens = tokenize("for i = 1 to n do")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "for"

    def test_name_not_keyword(self):
        tokens = tokenize("fortune = 1")
        assert tokens[0].kind is TokenKind.NAME

    def test_multichar_operators(self):
        assert texts("a <= b >= c == d != e ** f") == [
            "a", "<=", "b", ">=", "c", "==", "d", "!=", "e", "**", "f",
        ]

    def test_star_star_beats_star(self):
        assert "**" in texts("x ** 2")
        assert texts("x * 2") == ["x", "*", "2"]

    def test_brackets_and_commas(self):
        assert texts("A[i, j]") == ["A", "[", "i", ",", "j", "]"]

    def test_numbers(self):
        tokens = tokenize("x = 12345")
        assert tokens[2].kind is TokenKind.NUMBER
        assert tokens[2].text == "12345"

    def test_underscored_names(self):
        assert texts("loop_count = _x") == ["loop_count", "=", "_x"]


class TestNewlinesAndComments:
    def test_newlines_collapse(self):
        tokens = tokenize("a = 1\n\n\nb = 2")
        newline_count = sum(1 for t in tokens if t.kind is TokenKind.NEWLINE)
        assert newline_count == 2  # one between, one trailing

    def test_comment_skipped(self):
        assert texts("a = 1 # a comment\nb = 2") == ["a", "=", "1", "b", "=", "2"]

    def test_trailing_newline_added(self):
        tokens = tokenize("a = 1")
        assert tokens[-2].kind is TokenKind.NEWLINE
        assert tokens[-1].kind is TokenKind.EOF

    def test_positions(self):
        tokens = tokenize("a = 1\nbb = 2")
        b_token = [t for t in tokens if t.text == "bb"][0]
        assert b_token.line == 2
        assert b_token.column == 1


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(FrontendError, match="unexpected character"):
            tokenize("a = 1 ~ 2")

    def test_error_position(self):
        try:
            tokenize("x = `")
        except FrontendError as e:
            assert e.line == 1 and e.column == 5
        else:
            pytest.fail("expected FrontendError")
