"""Tests for AST -> IR lowering."""

import pytest

from repro.frontend.lexer import FrontendError
from repro.frontend.lower import analyze_names, lower_program
from repro.frontend.parser import parse_program
from repro.frontend.source import compile_source
from repro.ir.instructions import Branch, Compare, Store
from repro.ir.interp import Interpreter
from repro.ir.verify import verify_function


def lower(source):
    return lower_program(parse_program(source))


class TestNameAnalysis:
    def test_free_reads_become_params(self):
        params, arrays = analyze_names(parse_program("x = n + m\ny = x"))
        assert params == ["n", "m"]
        assert arrays == []

    def test_arrays_inferred(self):
        params, arrays = analyze_names(parse_program("A[1] = B[2]"))
        assert set(arrays) == {"A", "B"}

    def test_for_var_not_param(self):
        params, _ = analyze_names(parse_program("for i = 1 to n do\n  x = i\nendfor"))
        assert params == ["n"]

    def test_scalar_array_clash(self):
        with pytest.raises(FrontendError, match="both scalar and array"):
            analyze_names(parse_program("x = A\nA[1] = 2"))


class TestLowering:
    def test_executes_correctly(self):
        f = lower("s = 0\nfor i = 1 to n do\n  s = s + i\nendfor\nreturn s")
        assert Interpreter(f).run({"n": 10}).return_value == 55

    def test_verified(self):
        f = lower("x = 1\nif x > 0 then\n  y = 2\nelse\n  y = 3\nendif\nreturn y")
        verify_function(f)
        assert Interpreter(f).run({}).return_value == 2

    def test_loop_label_becomes_header(self):
        f = lower("L9: loop\n  break\nendloop")
        assert "L9" in f.blocks

    def test_while_executes(self):
        f = lower("i = 0\nwhile i < n do\n  i = i + 2\nendwhile\nreturn i")
        assert Interpreter(f).run({"n": 5}).return_value == 6
        assert Interpreter(f).run({"n": 0}).return_value == 0

    def test_for_downto(self):
        f = lower("s = 0\nfor i = n downto 1 do\n  s = s + i\nendfor\nreturn s")
        assert Interpreter(f).run({"n": 4}).return_value == 10

    def test_for_by_step(self):
        f = lower("s = 0\nfor i = 0 to 10 by 3 do\n  s = s + 1\nendfor\nreturn s")
        assert Interpreter(f).run({}).return_value == 4

    def test_for_zero_trips(self):
        f = lower("s = 9\nfor i = 5 to 1 do\n  s = 0\nendfor\nreturn s")
        assert Interpreter(f).run({}).return_value == 9

    def test_limit_evaluated_once(self):
        # Fortran DO semantics: reassigning the bound inside does not extend
        f = lower("n = 3\nc = 0\nfor i = 1 to n do\n  n = 100\n  c = c + 1\nendfor\nreturn c")
        assert Interpreter(f).run({}).return_value == 3

    def test_break_leaves_innermost(self):
        f = lower(
            "c = 0\nloop\n  loop\n    break\n  endloop\n  c = c + 1\n"
            "  if c > 2 then\n    break\n  endif\nendloop\nreturn c"
        )
        assert Interpreter(f).run({}).return_value == 3

    def test_break_outside_loop(self):
        with pytest.raises(FrontendError, match="break outside"):
            lower("break")

    def test_statements_after_break_are_dead(self):
        f = lower("loop\n  break\n  x = 1\nendloop\nreturn 5")
        assert Interpreter(f).run({}).return_value == 5

    def test_return_mid_program(self):
        f = lower("return 1\nx = 2")
        assert Interpreter(f).run({}).return_value == 1

    def test_multidim_store_load(self):
        f = lower("A[1, 2] = 7\nx = A[1, 2]\nreturn x")
        assert Interpreter(f).run({}).return_value == 7

    def test_short_circuit_and(self):
        f = lower(
            "x = 0\nif a > 0 and b > 0 then\n  x = 1\nendif\nreturn x"
        )
        assert Interpreter(f).run({"a": 1, "b": 1}).return_value == 1
        assert Interpreter(f).run({"a": 0, "b": 1}).return_value == 0
        assert Interpreter(f).run({"a": 1, "b": 0}).return_value == 0

    def test_short_circuit_or_not(self):
        f = lower("x = 0\nif not (a > 0) or b > 5 then\n  x = 1\nendif\nreturn x")
        assert Interpreter(f).run({"a": 0, "b": 0}).return_value == 1
        assert Interpreter(f).run({"a": 1, "b": 9}).return_value == 1
        assert Interpreter(f).run({"a": 1, "b": 0}).return_value == 0

    def test_exponent(self):
        f = lower("return 2 ** k")
        assert Interpreter(f).run({"k": 8}).return_value == 256

    def test_division_mod(self):
        f = lower("return (a / b) * 100 + a % b")
        assert Interpreter(f).run({"a": 17, "b": 5}).return_value == 302


class TestCompileSource:
    def test_loops_canonical(self):
        f = compile_source("i = 0\nL1: loop\n  i = i + 1\n  if i > n then\n    break\n  endif\nendloop")
        preds = f.predecessors_map()
        # canonical: header has exactly one outside + one inside predecessor
        assert len(preds["L1"]) == 2

    def test_for_header_shape(self):
        f = compile_source("L2: for i = 1 to n do\n  x = i\nendfor")
        header = f.block("L2")
        assert isinstance(header.instructions[-1], Compare)
        assert isinstance(header.terminator, Branch)


class TestContinue:
    def test_for_continue_still_increments(self):
        f = lower(
            "s = 0\nfor i = 1 to 10 do\n  if i % 2 == 0 then\n    continue\n  endif\n"
            "  s = s + i\nendfor\nreturn s"
        )
        assert Interpreter(f).run({}).return_value == 25  # 1+3+5+7+9

    def test_while_continue(self):
        f = lower(
            "s = 0\ni = 0\nwhile i < 8 do\n  i = i + 1\n  if i % 3 == 0 then\n"
            "    continue\n  endif\n  s = s + 1\nendwhile\nreturn s"
        )
        assert Interpreter(f).run({}).return_value == 6

    def test_loop_continue(self):
        f = lower(
            "s = 0\ni = 0\nloop\n  i = i + 1\n  if i > 8 then\n    break\n  endif\n"
            "  if i % 3 == 0 then\n    continue\n  endif\n  s = s + 1\nendloop\nreturn s"
        )
        assert Interpreter(f).run({}).return_value == 6

    def test_continue_targets_innermost(self):
        f = lower(
            "s = 0\nfor i = 1 to 3 do\n  for j = 1 to 3 do\n"
            "    if j == 2 then\n      continue\n    endif\n    s = s + 1\n  endfor\nendfor\nreturn s"
        )
        assert Interpreter(f).run({}).return_value == 6

    def test_continue_outside_loop(self):
        with pytest.raises(FrontendError, match="continue outside"):
            lower("continue")

    def test_iv_analysis_with_continue(self):
        """A continue must not break the IV family (the increment is in the
        latch, which every path reaches)."""
        from repro.pipeline import analyze

        p = analyze(
            "s = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n    continue\n  endif\n"
            "  s = s + 1\nendfor"
        )
        assert p.classification(p.ssa_name("i", "L1")).describe() == "(L1, 1, 1)"
