"""Tests for the loop-language parser."""

import pytest

from repro.frontend import ast
from repro.frontend.lexer import FrontendError
from repro.frontend.parser import parse_program


class TestStatements:
    def test_assignment(self):
        program = parse_program("x = 1 + 2 * 3")
        stmt = program.body[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.target == "x"
        assert isinstance(stmt.value, ast.BinaryExpr) and stmt.value.op == "+"

    def test_precedence(self):
        expr = parse_program("x = 1 + 2 * 3").body[0].value
        assert expr.op == "+"
        assert isinstance(expr.rhs, ast.BinaryExpr) and expr.rhs.op == "*"

    def test_power_right_associative(self):
        expr = parse_program("x = 2 ** 3 ** 2").body[0].value
        assert expr.op == "**"
        assert isinstance(expr.rhs, ast.BinaryExpr) and expr.rhs.op == "**"

    def test_parentheses(self):
        expr = parse_program("x = (1 + 2) * 3").body[0].value
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = parse_program("x = -y").body[0].value
        assert isinstance(expr, ast.UnaryExpr)

    def test_array_store_1d(self):
        stmt = parse_program("A[i] = 0").body[0]
        assert isinstance(stmt, ast.StoreStmt)
        assert len(stmt.indices) == 1

    def test_array_store_2d(self):
        stmt = parse_program("A[i, j + 1] = 0").body[0]
        assert len(stmt.indices) == 2

    def test_array_load_in_expr(self):
        stmt = parse_program("x = A[i, j] + B[k]").body[0]
        assert isinstance(stmt.value.lhs, ast.ArrayRef)
        assert len(stmt.value.lhs.indices) == 2
        assert len(stmt.value.rhs.indices) == 1

    def test_return(self):
        assert parse_program("return").body[0].value is None
        assert parse_program("return x + 1").body[0].value is not None

    def test_mod_keyword_and_percent(self):
        a = parse_program("x = a mod 2").body[0].value
        b = parse_program("x = a % 2").body[0].value
        assert a.op == b.op == "%"


class TestControlFlow:
    def test_if_else(self):
        program = parse_program(
            "if x > 0 then\n  y = 1\nelse\n  y = 2\nendif"
        )
        stmt = program.body[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_no_else(self):
        stmt = parse_program("if x > 0 then\n  y = 1\nendif").body[0]
        assert stmt.else_body == []

    def test_nested_if(self):
        stmt = parse_program(
            "if a > 0 then\n  if b > 0 then\n    c = 1\n  endif\nendif"
        ).body[0]
        assert isinstance(stmt.then_body[0], ast.If)

    def test_loop_with_label(self):
        stmt = parse_program("L7: loop\n  break\nendloop").body[0]
        assert isinstance(stmt, ast.Loop) and stmt.label == "L7"

    def test_loop_without_label(self):
        stmt = parse_program("loop\n  break\nendloop").body[0]
        assert stmt.label is None

    def test_while(self):
        stmt = parse_program("while i < n do\n  i = i + 1\nendwhile").body[0]
        assert isinstance(stmt, ast.WhileLoop)

    def test_for_basic(self):
        stmt = parse_program("for i = 1 to n do\n  x = i\nendfor").body[0]
        assert isinstance(stmt, ast.ForLoop)
        assert not stmt.downward and stmt.step is None

    def test_for_downto_by(self):
        stmt = parse_program("for i = n downto 1 by 2 do\n  x = i\nendfor").body[0]
        assert stmt.downward and stmt.step is not None

    def test_conditions_and_or_not(self):
        stmt = parse_program(
            "if a > 0 and not (b < 1 or c == 2) then\n  x = 1\nendif"
        ).body[0]
        cond = stmt.condition
        assert isinstance(cond, ast.BoolExpr) and cond.op == "and"
        assert isinstance(cond.rhs, ast.NotExpr)

    def test_parenthesized_expression_comparison(self):
        stmt = parse_program("if (a + b) < c then\n  x = 1\nendif").body[0]
        assert isinstance(stmt.condition, ast.CompareExpr)


class TestErrors:
    def test_missing_endloop(self):
        with pytest.raises(FrontendError):
            parse_program("loop\n  x = 1")

    def test_unexpected_end(self):
        with pytest.raises(FrontendError):
            parse_program("endif")

    def test_label_on_non_loop(self):
        with pytest.raises(FrontendError, match="labels"):
            parse_program("L1: x = 2")

    def test_missing_comparison(self):
        with pytest.raises(FrontendError, match="comparison"):
            parse_program("if x then\n  y = 1\nendif")

    def test_for_missing_to(self):
        with pytest.raises(FrontendError, match="'to'"):
            parse_program("for i = 1, n do\nendfor")

    def test_two_statements_one_line(self):
        with pytest.raises(FrontendError):
            parse_program("x = 1 y = 2")

    def test_garbage(self):
        with pytest.raises(FrontendError):
            parse_program("x = ")
