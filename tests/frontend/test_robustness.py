"""Frontend robustness: malformed input must fail with FrontendError
(position-carrying), never with an internal exception."""

import hypothesis.strategies as st
from hypothesis import given, settings

import pytest

from repro.frontend.lexer import FrontendError
from repro.frontend.parser import parse_program
from repro.frontend.source import compile_source

FRAGMENTS = [
    "for", "endfor", "if", "then", "else", "endif", "loop", "endloop",
    "while", "do", "endwhile", "break", "continue", "return", "to", "by",
    "x", "y", "A", "=", "+", "-", "*", "/", "%", "**", "(", ")", "[", "]",
    ",", "<", "<=", "==", "1", "42", ":", "L1", "and", "or", "not", "\n",
    "x = 1", "A[i] = 2", "for i = 1 to 3 do", "endfor",
]


@settings(max_examples=300, deadline=None)
@given(st.lists(st.sampled_from(FRAGMENTS), min_size=1, max_size=12))
def test_parser_never_crashes(fragments):
    source = " ".join(fragments)
    try:
        compile_source(source)
    except FrontendError:
        pass  # rejected with a diagnostic: fine


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="abcx=+-*/()[]<>,:\n 0123456789", max_size=80))
def test_lexer_parser_arbitrary_text(source):
    try:
        parse_program(source)
    except FrontendError:
        pass


class TestDiagnostics:
    def test_position_reported(self):
        with pytest.raises(FrontendError) as excinfo:
            parse_program("x = 1\ny = @")
        assert excinfo.value.line == 2

    def test_unclosed_loop_names_missing_keyword(self):
        with pytest.raises(FrontendError, match="endfor"):
            parse_program("for i = 1 to 3 do\n  x = i")

    def test_helpful_equality_message(self):
        with pytest.raises(FrontendError, match="comparison"):
            parse_program("if x then\n  y = 1\nendif")
