"""Tests for the report generator, DOT exports, and the CLI."""

import subprocess
import sys

import pytest

from tests.conftest import analyze_src
from repro.cli import main
from repro.dependence.graph import build_dependence_graph
from repro.ir.dot import cfg_to_dot, dependence_graph_to_dot, ssa_graph_to_dot
from repro.report import format_report

SOURCE = """
j = 1
iml = n
L14: for i = 1 to n do
  A[i] = A[iml] + 1
  j = j + i
  iml = i
endfor
"""


class TestReport:
    def test_contains_classifications(self):
        p = analyze_src(SOURCE)
        report = format_report(p)
        assert "(L14, 1, 1)" in report
        assert "wraparound" in report
        assert "(L14, 1, 1/2, 1/2)" in report

    def test_trip_count_and_exit_values(self):
        p = analyze_src(SOURCE)
        report = format_report(p)
        assert "trip count: n" in report
        assert "exits with" in report

    def test_dependences_and_parallelism(self):
        p = analyze_src(SOURCE)
        report = format_report(p)
        assert "dependence graph" in report
        assert "parallelizable" in report

    def test_temporaries_hidden_by_default(self):
        p = analyze_src(SOURCE)
        assert "$t" not in format_report(p)
        assert "$t" in format_report(p, show_temporaries=True)

    def test_ir_dump(self):
        p = analyze_src(SOURCE)
        assert "phi" in format_report(p, show_ir=True)

    def test_no_loops(self):
        p = analyze_src("x = 1\nreturn x")
        assert "no loops" in format_report(p)

    def test_nested_report_indents(self):
        p = analyze_src(
            "L1: for i = 1 to n do\n  L2: for j = 1 to i do\n    A[j] = i\n  endfor\nendfor"
        )
        report = format_report(p)
        assert "loop L1 (depth 1)" in report
        assert "  loop L2 (depth 2)" in report


class TestDot:
    def test_cfg(self):
        p = analyze_src(SOURCE)
        dot = cfg_to_dot(p.ssa)
        assert dot.startswith("digraph")
        assert '"L14"' in dot and "->" in dot
        assert dot.rstrip().endswith("}")

    def test_cfg_without_instructions(self):
        p = analyze_src(SOURCE)
        dot = cfg_to_dot(p.ssa, include_instructions=False)
        assert "phi" not in dot

    def test_ssa_graph(self):
        p = analyze_src(SOURCE)
        dot = ssa_graph_to_dot(p.ssa)
        assert "style=dashed" in dot  # external operand edges

    def test_dependence_graph(self):
        p = analyze_src(SOURCE)
        dot = dependence_graph_to_dot(build_dependence_graph(p.result))
        assert "digraph" in dot


class TestCLI:
    def run_cli(self, tmp_path, args, source=SOURCE):
        path = tmp_path / "input.loop"
        path.write_text(source)
        import contextlib
        import io

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main([str(path)] + args)
        return code, out.getvalue()

    def test_report_mode(self, tmp_path):
        code, out = self.run_cli(tmp_path, [])
        assert code == 0
        assert "(L14, 1, 1)" in out

    def test_dump_named_ir(self, tmp_path):
        code, out = self.run_cli(tmp_path, ["--dump-named-ir"])
        assert code == 0
        assert out.startswith("func main")
        assert "phi" not in out

    def test_dot_modes(self, tmp_path):
        for flag in ("--dot-cfg", "--dot-ssa", "--dot-deps"):
            code, out = self.run_cli(tmp_path, [flag])
            assert code == 0
            assert out.startswith("digraph")

    def test_no_deps(self, tmp_path):
        code, out = self.run_cli(tmp_path, ["--no-deps"])
        assert code == 0
        assert "dependence graph" not in out

    def test_no_opt(self, tmp_path):
        code, out = self.run_cli(tmp_path, ["--no-opt"])
        assert code == 0

    def test_syntax_error_exit_code(self, tmp_path):
        code, _ = self.run_cli(tmp_path, [], source="for for for")
        assert code == 1

    def test_missing_file(self):
        assert main(["/nonexistent/file.loop"]) == 2

    def test_module_invocation(self, tmp_path):
        path = tmp_path / "input.loop"
        path.write_text(SOURCE)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "L14" in proc.stdout
