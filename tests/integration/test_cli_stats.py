"""End-to-end ``repro stats``: corpus run over examples/, aggregate, gate.

This is the PR's acceptance test: ``repro stats`` over the examples
corpus must report the class distribution and the why-not-DOALL table in
both text and JSON, and **every serial loop must carry a non-empty
structured reason chain** (the ``--strict`` gate).
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.attribution import REASON_SLUGS

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """One corpus run over examples/ with run-logging on."""
    directory = str(tmp_path_factory.mktemp("stats") / "runs")
    exit_code = main([EXAMPLES, "--ranges", "--runlog", directory])
    assert exit_code == 0
    return directory


def run_stats(capsys, argv):
    code = main(["stats"] + argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestAcceptance:
    def test_every_serial_loop_has_reason_chain(self, store):
        serial_loops = 0
        for name in os.listdir(store):
            with open(os.path.join(store, name)) as handle:
                for line in handle:
                    record = json.loads(line)
                    assert "error" not in record, record
                    for loop in record["loops"]:
                        if loop["parallel"] is False:
                            serial_loops += 1
                            assert loop["blocked_by"], (
                                record["origin"], loop["header"],
                            )
                            for blocker in loop["blocked_by"]:
                                assert blocker["reason"] in REASON_SLUGS
        assert serial_loops > 0  # the corpus does contain serial loops

    def test_text_report(self, store, capsys):
        code, out, _ = run_stats(capsys, [store])
        assert code == 0
        assert "== class distribution ==" in out
        assert "InductionVariable" in out
        assert "== why not DOALL ==" in out
        assert "DOALL" in out
        assert "== phase latencies (s) ==" in out

    def test_json_report(self, store, capsys):
        code, out, _ = run_stats(capsys, [store, "--format=json"])
        assert code == 0
        stats = json.loads(out)
        assert stats["records"] > 0
        assert stats["classes"]
        assert stats["blocked"]
        assert set(stats["blocked"]) <= REASON_SLUGS
        assert stats["parallel"]["serial"] > 0

    def test_strict_gate_passes(self, store, capsys):
        code, _, err = run_stats(capsys, [store, "--strict"])
        assert code == 0, err

    def test_strict_fails_on_gutted_chains(self, store, tmp_path, capsys):
        gutted = tmp_path / "gutted.jsonl"
        with open(os.path.join(store, os.listdir(store)[0])) as handle:
            records = [json.loads(line) for line in handle]
        for record in records:
            for loop in record.get("loops", []):
                loop["blocked_by"] = []
        gutted.write_text("".join(json.dumps(r) + "\n" for r in records))
        code, _, err = run_stats(capsys, [str(gutted), "--strict"])
        assert code == 1
        assert "reason chain" in err

    def test_strict_fails_on_empty_store(self, tmp_path, capsys):
        empty = tmp_path / "empty-store"
        empty.mkdir()
        code, _, err = run_stats(capsys, [str(empty), "--strict"])
        assert code == 1
        assert "empty store" in err

    def test_diff_of_identical_stores(self, store, capsys):
        code, out, _ = run_stats(capsys, ["--diff", store, store])
        assert code == 0
        assert "== run diff ==" in out
        assert "unchanged" in out

    def test_diff_json(self, store, capsys):
        code, out, _ = run_stats(
            capsys, ["--diff", store, store, "--format=json"]
        )
        assert code == 0
        diff = json.loads(out)
        assert diff["classes"] == {}


class TestCorpusReport:
    def test_reports_every_example(self, store, capsys):
        code = main([EXAMPLES])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count(".loop ==") + out.count(".py:") >= 2
        assert "parallelizable" in out

    def test_prom_export_from_corpus(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        code = main([EXAMPLES, "--prom", str(prom)])
        capsys.readouterr()
        assert code == 0
        text = prom.read_text()
        assert "repro_classify_class_total{" in text
        assert "repro_time_seconds_count{" in text
