"""Smoke tests: every example script must run and print its key results."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": ["(L14, 1, 1)", "wraparound", "dependence graph"],
    "relaxation_periodic.py": ["periodic", "parallel"],
    "packing_monotonic.py": ["strictly increasing", "(=)"],
    "triangular_nest.py": ["quadratic", "ok"],
    "strength_reduction.py": ["reduced 1 multiplication", "verified"],
    "paper_tour.py": ["(L8, 1, 2)", "period 3", "6*3^h"],
    "loop_transforms.py": ["DOALL", "interchange(L23, L24): False", "pi-block"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    for needle in CASES[script]:
        assert needle in proc.stdout, f"{script}: missing {needle!r}\n{proc.stdout}"
