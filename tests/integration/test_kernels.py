"""End-to-end analysis of classic numerical kernels.

These are the workloads the paper's introduction motivates (vector
supercomputers, cache optimization): for each kernel we assert the
facts a parallelizing compiler needs, and cross-check against execution.
"""

from tests.conftest import analyze_src, run_ssa
from repro.dependence import (
    analyze_parallelism,
    build_dependence_graph,
    check_interchange,
)
from repro.dependence.graph import DependenceKind


class TestMatrixMultiply:
    SOURCE = """
L1: for i = 1 to n do
  L2: for j = 1 to n do
    C[i, j] = 0
    L3: for k = 1 to n do
      t = C[i, j] + A[i, k] * B[k, j]
      C[i, j] = t
    endfor
  endfor
endfor
"""

    def test_loop_structure(self):
        p = analyze_src(self.SOURCE)
        assert {l.header for l in p.nest} == {"L1", "L2", "L3"}
        assert p.nest.loop_of_header("L3").depth == 3

    def test_ijk_parallelism(self):
        p = analyze_src(self.SOURCE)
        graph = build_dependence_graph(p.result)
        verdicts = analyze_parallelism(p.result, graph)
        # i and j loops are parallel (each (i,j) owns C[i,j]); the k loop
        # carries the reduction on C[i,j]
        assert verdicts["L1"].parallelizable
        assert verdicts["L2"].parallelizable
        assert not verdicts["L3"].parallelizable

    def test_executes(self):
        p = analyze_src(self.SOURCE)
        from repro.ir.interp import Interpreter

        arrays = {
            "A": {(i, k): i + k for i in (1, 2) for k in (1, 2)},
            "B": {(k, j): k * j for k in (1, 2) for j in (1, 2)},
        }
        result = Interpreter(p.ssa).run({"n": 2}, arrays)
        # C[1][1] = A11*B11 + A12*B21 = 2*1 + 3*2 = 8
        assert result.arrays["C"][(1, 1)] == 8


class TestStencil1D:
    SOURCE = """
L1: for t = 1 to steps do
  L2: for i = 2 to n do
    B[i] = A[i - 1] + A[i + 1]
  endfor
  L3: for i = 2 to n do
    A[i] = B[i]
  endfor
endfor
"""

    def test_inner_loops_parallel(self):
        p = analyze_src(self.SOURCE)
        verdicts = analyze_parallelism(p.result)
        assert verdicts["L2"].parallelizable
        assert verdicts["L3"].parallelizable
        assert not verdicts["L1"].parallelizable  # time step carries A<->B


class TestHistogram:
    SOURCE = """
L1: for i = 1 to n do
  b = D[i]
  H[b] = H[b] + 1
endfor
"""

    def test_data_dependent_subscript_serializes(self):
        p = analyze_src(self.SOURCE)
        verdicts = analyze_parallelism(p.result)
        assert not verdicts["L1"].parallelizable
        graph = build_dependence_graph(p.result)
        # the H updates cannot be disambiguated: conservative edges exist
        assert any(e.source.array == "H" for e in graph.edges)


class TestPrefixSum:
    SOURCE = """
L1: for i = 2 to n do
  S[i] = S[i - 1] + X[i]
endfor
"""

    def test_recurrence_detected(self):
        p = analyze_src(self.SOURCE)
        graph = build_dependence_graph(p.result)
        flow = [e for e in graph.edges if e.kind is DependenceKind.FLOW]
        assert len(flow) == 1
        assert flow[0].result.distance.distances == (1,)
        assert not analyze_parallelism(p.result, graph)["L1"].parallelizable

    def test_scalar_accumulator_version(self):
        p = analyze_src(
            "acc = 0\nL1: for i = 1 to n do\n  acc = acc + X[i]\n  S[i] = acc\nendfor"
        )
        # acc is not an IV (it accumulates loads) but the subscript i is
        from repro.core.classes import Unknown

        acc = p.classification(p.ssa_name("acc", "L1"))
        assert isinstance(acc, Unknown)
        i = p.classification(p.ssa_name("i", "L1"))
        assert i.describe() == "(L1, 1, 1)"


class TestTiledCopy:
    SOURCE = """
L1: for ti = 0 to nt do
  L2: for i = 1 to 16 do
    A[16 * ti + i] = B[16 * ti + i]
  endfor
endfor
"""

    def test_tiled_subscript_affine_in_both_loops(self):
        from repro.dependence.subscript import describe_subscript
        from repro.ir.instructions import Store

        p = analyze_src(self.SOURCE)
        store = next(i for b in p.ssa for i in b if isinstance(i, Store))
        block = next(b.label for b in p.ssa for i in b if i is store)
        d = describe_subscript(p.result, store.indices[0], block)
        assert d.coeff("L1") == 16 and d.coeff("L2") == 1

    def test_fully_parallel(self):
        p = analyze_src(self.SOURCE)
        verdicts = analyze_parallelism(p.result)
        assert verdicts["L1"].parallelizable
        assert verdicts["L2"].parallelizable

    def test_interchange_legal(self):
        p = analyze_src(self.SOURCE)
        assert check_interchange(p.result, "L1", "L2").legal


class TestReverseCopyCrossing:
    SOURCE = """
L1: for i = 1 to n do
  A[i] = A[n - i + 1]
endfor
"""

    def test_crossing_dependence_found(self):
        p = analyze_src(self.SOURCE)
        graph = build_dependence_graph(p.result)
        cross = [e for e in graph.edges if e.source != e.sink]
        assert cross  # the halves cross at n/2
