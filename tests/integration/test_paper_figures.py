"""Every worked example of the paper, as a checked experiment (E01-E15).

These are the reproduction's "tables and figures": each test encodes the
paper's stated result for one figure/loop and asserts our pipeline produces
it.  EXPERIMENTS.md cross-references these by experiment id.
"""

from fractions import Fraction

import pytest

from tests.conftest import analyze_src, assert_closed_forms_match_execution, classification_by_var
from repro.core.classes import (
    BranchDependent,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.core.tripcount import TripCountKind
from repro.dependence.direction import EQ, LE, LT, NE
from repro.dependence.graph import DependenceKind, build_dependence_graph


class TestE01_Figure1:
    """Fig. 1 / L7: the mutually-defined linear family."""

    def test_family(self):
        p = analyze_src(
            "j = n1\nL7: loop\n  i = j + c1\n  j = i + k1\n"
            "  if j > 100000 then\n    break\n  endif\nendloop"
        )
        assert classification_by_var(p, "j", "L7").describe() == "(L7, n1, c1 + k1)"
        descriptions = {p.classification(n).describe() for n in p.ssa_names("i") + p.ssa_names("j")}
        assert "(L7, c1 + n1, c1 + k1)" in descriptions  # i3 = (L7, n1+c1, c1+k1)
        assert "(L7, c1 + k1 + n1, c1 + k1)" in descriptions  # j3


class TestE02_Figure3:
    """Fig. 3 / L8: equal increments on both branches."""

    def test_family(self):
        p = analyze_src(
            "i = 1\nL8: loop\n  if x > 0 then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n"
            "  if i > 100 then\n    break\n  endif\nendloop"
        )
        assert classification_by_var(p, "i", "L8").describe() == "(L8, 1, 2)"
        member_descriptions = {p.classification(n).describe() for n in p.ssa_names("i")}
        assert "(L8, 3, 2)" in member_descriptions  # i3, i4, i5 in the paper


class TestE03_Figure4:
    """Fig. 4 / L10: first- and second-order wrap-around."""

    SOURCE = (
        "k = k1\nj = j1\ni = 1\nL10: loop\n  A[k] = 0\n  k = j\n  j = i\n  i = i + 1\n"
        "  if i > n then\n    break\n  endif\nendloop"
    )

    def test_orders(self):
        p = analyze_src(self.SOURCE)
        j = classification_by_var(p, "j", "L10")
        k = classification_by_var(p, "k", "L10")
        assert isinstance(j, WrapAround) and j.order == 1
        assert isinstance(k, WrapAround) and k.order == 2
        assert [str(v) for v in k.pre_values] == ["k1", "j1"]

    def test_collapse_with_fitting_init(self):
        p = analyze_src(self.SOURCE.replace("j = j1", "j = 0"))
        j = classification_by_var(p, "j", "L10")
        assert isinstance(j, InductionVariable)
        assert j.describe() == "(L10, 0, 1)"


class TestE04_Figure5:
    """Fig. 5 / L13: a period-3 family."""

    def test_rotation(self):
        p = analyze_src(
            "t = t1\nj = j1\nk = k1\nl = l1\nL13: for it = 1 to n do\n"
            "  A[t] = 0\n  t = j\n  j = k\n  k = l\n  l = t\nendfor"
        )
        # NOTE: with `l = t` the rotation includes t's previous value; the
        # paper's figure copies through t within one iteration:
        p = analyze_src(
            "j = j1\nk = k1\nl = l1\nL13: for it = 1 to n do\n"
            "  t = j\n  j = k\n  k = l\n  l = t\n  A[j] = 0\nendfor"
        )
        j = classification_by_var(p, "j", "L13")
        assert isinstance(j, Periodic) and j.period == 3
        assert [str(v) for v in j.values] == ["j1", "k1", "l1"]


class TestE05_L14Table:
    """L14: the closed-form table (j, k, l)."""

    def test_table(self):
        p = analyze_src(
            "j = 1\nk = 1\nl = 1\nL14: for i = 1 to n do\n"
            "  j = j + i\n  k = k + j + 1\n  l = l * 2 + 1\nendfor\nreturn j"
        )
        values = {}
        for var in "jkl":
            names = [
                n for n in p.ssa_names(var)
                if p.result.defining_loop(n) is not None
                and n != p.ssa_name(var, "L14")
            ]
            cls = p.classification(names[0])
            values[var] = [cls.value_at(h).constant_value() for h in range(4)]
        assert values["j"] == [2, 4, 7, 11]  # (h^2+3h+4)/2
        assert values["k"] == [4, 9, 17, 29]  # (h^3+6h^2+23h+24)/6
        assert values["l"] == [3, 7, 15, 31]  # 2^(h+2)-1


class TestE06_GeometricM:
    """Section 4.3's m = 3*m + 2*i + 1 example: 6*3^h - h - 3."""

    def test_closed_form(self):
        p = analyze_src(
            "m = 0\nL14: for i = 1 to n do\n  m = 3 * m + 2 * i + 1\nendfor\nreturn m"
        )
        m3 = p.classification(
            [n for n in p.ssa_names("m")
             if p.result.defining_loop(n) is not None and n != p.ssa_name("m", "L14")][0]
        )
        assert m3.form.coeff(2).is_zero  # "no quadratic term after all"
        for h in range(6):
            assert m3.value_at(h).constant_value() == 6 * 3**h - h - 3


class TestE07_Figure6:
    """Fig. 6 / L16: strictly monotonic."""

    def test_strict(self):
        p = analyze_src(
            "k = 0\nL16: loop\n  if exp > 0 then\n    k = k + 1\n  else\n    k = k + 2\n  endif\n"
            "  if k > n then\n    break\n  endif\nendloop"
        )
        k = classification_by_var(p, "k", "L16")
        assert isinstance(k, BranchDependent) and k.strict and k.direction == 1
        assert (k.min_step(), k.max_step()) == (1, 2)


class TestE08_Figures7and8:
    """Figs. 7-8: nested loop, trip count, exit values."""

    SOURCE = (
        "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n"
        "    if i > 100 then\n      break\n    endif\n    i = i + 1\n  endloop\n"
        "  k = k + 2\n  if k > 1000000 then\n    break\n  endif\nendloop"
    )

    def test_trip_count_100(self):
        p = analyze_src(self.SOURCE)
        assert p.result.trip_count("L18").constant() == 100

    def test_inner_family(self):
        p = analyze_src(self.SOURCE)
        k2 = p.ssa_name("k", "L17")
        assert p.classification(p.ssa_name("k", "L18")).describe() == f"(L18, {k2}, 2)"

    def test_outer_family_step_204(self):
        p = analyze_src(self.SOURCE)
        assert classification_by_var(p, "k", "L17").describe() == "(L17, 0, 204)"
        summary = p.result.loops["L17"]
        descriptions = {c.describe() for c in summary.classifications.values()}
        assert "(L17, 202, 204)" in descriptions  # the paper's k6
        assert "(L17, 204, 204)" in descriptions  # k5

    def test_exit_values(self):
        p = analyze_src(self.SOURCE)
        k2 = p.ssa_name("k", "L17")
        i2 = p.ssa_name("i", "L18")
        assert p.result.exit_value("L18", i2) == 101
        k_inner = [n for n in p.ssa_names("k")
                   if p.result.defining_loop(n) and p.result.defining_loop(n).header == "L18"]
        exits = {str(p.result.exit_value("L18", n)) for n in k_inner}
        assert f"202 + {k2}" in exits  # paper: k6 = k2 + 101*2

    def test_nested_tuple(self):
        p = analyze_src(self.SOURCE)
        assert (
            p.result.nested_describe(p.ssa_name("k", "L18"))
            == "(L18, (L17, 0, 204), 2)"
        )


class TestE09_Figure9:
    """Fig. 9 / L19-L20: the triangular nest [EHLP92] found difficult."""

    SOURCE = (
        "j = 0\nL19: for i = 1 to n do\n  j = j + i\n"
        "  L20: for kk = 1 to i do\n    j = j + 1\n  endfor\nendfor"
    )

    def test_inner_trip_count_is_outer_iv(self):
        p = analyze_src(self.SOURCE)
        trip = p.result.trip_count("L20")
        assert trip.kind is TripCountKind.FINITE
        assert str(trip.count) == p.ssa_name("i", "L19")

    def test_quadratic_family(self):
        p = analyze_src(self.SOURCE)
        # inits 0 (j2), 1 (j3), 2 (j6): the paper's figures
        summary = p.result.loops["L19"]
        inits = set()
        for name, cls in summary.classifications.items():
            if name.startswith("j") and isinstance(cls, InductionVariable):
                inits.add(int(cls.init.constant_value()))
        assert inits == {0, 1, 2}

    def test_inner_linear_with_outer_quadratic_init(self):
        p = analyze_src(self.SOURCE)
        nested = p.result.nested_describe(p.ssa_name("j", "L20"))
        assert nested == "(L20, (L19, 1, 2, 1), 1)"

    def test_matches_execution(self):
        from tests.conftest import run_ssa

        p = analyze_src(self.SOURCE)
        result = run_ssa(p, {"n": 8})
        j2 = p.ssa_name("j", "L19")
        cls = p.classification(j2)
        for h, observed in enumerate(result.value_history[j2]):
            assert cls.value_at(h).constant_value() == observed


class TestE10_Figure10:
    """Fig. 10: mixed monotonic/strict + dependence directions."""

    SOURCE = (
        "k = 0\nL15: for i = 1 to n do\n  F[k] = A[i]\n  if A[i] > 0 then\n"
        "    C[k] = D[i]\n    k = k + 1\n    B[k] = A[i]\n    E[i] = B[k]\n  endif\n"
        "  G[i] = F[k]\nendfor"
    )

    def test_classifications(self):
        p = analyze_src(self.SOURCE)
        classes = [p.classification(n) for n in p.ssa_names("k")]
        monotonic = [
            c for c in classes if isinstance(c, (Monotonic, BranchDependent))
        ]
        assert len(monotonic) == 3
        assert sum(c.strict for c in monotonic) == 1  # k3 only
        # the header phi itself now carries the per-path step set
        assert any(isinstance(c, BranchDependent) for c in classes)

    def test_dependence_directions(self):
        p = analyze_src(self.SOURCE)
        g = build_dependence_graph(p.result)
        b_flow = [e for e in g.edges if e.source.array == "B" and e.kind is DependenceKind.FLOW]
        f_flow = [e for e in g.edges if e.source.array == "F" and e.kind is DependenceKind.FLOW]
        f_anti = [e for e in g.edges if e.source.array == "F" and e.kind is DependenceKind.ANTI]
        assert b_flow[0].result.directions[0].elements == (EQ,)
        assert f_flow[0].result.directions[0].elements == (LE,)
        assert f_anti[0].result.directions[0].elements == (LT,)


class TestE11_L21:
    """Section 6's L21: subscripts (L21,1,1) and (L21,2,2)."""

    def test_subscript_classification_and_dependence(self):
        p = analyze_src(
            "i = 0\nj = 3\nL21: loop\n  i = i + 1\n  A[i] = A[j - 1] + 1\n  j = j + 2\n"
            "  if i > 1000 then\n    break\n  endif\nendloop"
        )
        from repro.dependence.subscript import describe_subscript
        from repro.ir.instructions import Load, Store

        store = next(i for b in p.ssa for i in b if isinstance(i, Store))
        load = next(i for b in p.ssa for i in b if isinstance(i, Load))
        d_w = describe_subscript(p.result, store.indices[0], "L21")
        d_r = describe_subscript(p.result, load.indices[0], "L21")
        assert (d_w.const, d_w.coeff("L21")) == (1, 1)
        assert (d_r.const, d_r.coeff("L21")) == (2, 2)
        # the dependence equation h+1 = 2h'+2 has solutions with h > h':
        # only the anti orientation survives
        g = build_dependence_graph(p.result)
        kinds = {e.kind for e in g.edges if e.source != e.sink}
        assert kinds == {DependenceKind.ANTI}


class TestE12_L22:
    """Section 6's L22: periodic '=' translates to '!='."""

    def test_not_equal_direction(self):
        p = analyze_src(
            "j = 1\nk = 2\nl = 3\nL22: for it = 1 to n do\n  A[2 * j] = A[2 * k] + 1\n"
            "  temp = j\n  j = k\n  k = l\n  l = temp\nendfor"
        )
        g = build_dependence_graph(p.result)
        cross = [e for e in g.edges if e.source != e.sink]
        assert cross
        for edge in cross:
            for vector in edge.result.directions:
                assert vector.elements[0] != EQ


class TestE13_L23L24:
    """Section 6.1: normalization changes distance vectors, but not the
    IV-based representation."""

    def test_identical_representations(self):
        original = analyze_src(
            "L23: for i = 1 to n do\n  L24: for j = i + 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        normalized = analyze_src(
            "L23: for i = 1 to n do\n  L24: for j = 1 to n - i do\n"
            "    A[i, j + i] = A[i - 1, j + i] + 1\n  endfor\nendfor"
        )
        g1 = build_dependence_graph(original.result)
        g2 = build_dependence_graph(normalized.result)
        f1 = [e for e in g1.edges if e.kind is DependenceKind.FLOW][0]
        f2 = [e for e in g2.edges if e.kind is DependenceKind.FLOW][0]
        assert f1.result.directions == f2.result.directions

    def test_rectangular_distance_vector(self):
        p = analyze_src(
            "L23: for i = 1 to n do\n  L24: for j = 1 to n do\n"
            "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
        )
        g = build_dependence_graph(p.result)
        flow = [e for e in g.edges if e.kind is DependenceKind.FLOW][0]
        assert flow.result.distance.distances == (1, 0)


class TestE14_TripCountTable:
    """Section 5.2's conversion table, all rows (see also core tests)."""

    @pytest.mark.parametrize(
        "source,expected",
        [
            # stay-in comparisons at the header (false branch exits)
            ("i = 0\nL1: while i < 10 do\n  i = i + 1\nendwhile", 10),
            ("i = 0\nL1: while i <= 10 do\n  i = i + 1\nendwhile", 11),
            ("i = 10\nL1: while i > 0 do\n  i = i - 1\nendwhile", 10),
            ("i = 10\nL1: while i >= 0 do\n  i = i - 1\nendwhile", 11),
            # exit comparisons mid-loop (true branch exits)
            ("i = 0\nL1: loop\n  i = i + 1\n  if i > 6 then\n    break\n  endif\nendloop", 6),
            ("i = 0\nL1: loop\n  i = i + 1\n  if i >= 6 then\n    break\n  endif\nendloop", 5),
            ("i = 9\nL1: loop\n  i = i - 1\n  if i < 3 then\n    break\n  endif\nendloop", 6),
            ("i = 9\nL1: loop\n  i = i - 1\n  if i <= 3 then\n    break\n  endif\nendloop", 5),
        ],
    )
    def test_row(self, source, expected):
        p = analyze_src(source)
        assert p.result.trip_count("L1").constant() == expected


class TestE15_MultiloopIV:
    """Section 2's L5/L6: j = (L6, (L5, 3, 2), 1)."""

    def test_nested_tuple(self):
        p = analyze_src(
            "i = 0\nL5: loop\n  i = i + 2\n  j = i + 1\n  L6: loop\n    j = j + 1\n"
            "    if j > i + 10 then\n      break\n    endif\n  endloop\n"
            "  if i > n then\n    break\n  endif\nendloop"
        )
        nested = p.result.nested_describe(p.ssa_name("j", "L6"))
        # exactly the paper's tuple: j = (L6, (L5, 3, 2), 1)
        assert nested == "(L6, (L5, 3, 2), 1)"
