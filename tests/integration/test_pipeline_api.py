"""Tests for the public pipeline API (AnalyzedProgram and friends)."""

import pytest

import repro
from repro import analyze
from repro.pipeline import analyze_function
from repro.frontend.source import compile_source

SOURCE = """
s = 0
L1: for i = 1 to n do
  s = s + i
  A[s] = i
endfor
return s
"""


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_analyze_returns_everything(self):
        program = analyze(SOURCE)
        assert program.source == SOURCE
        assert program.named_ir is not program.ssa
        assert program.nest.loop_of_header("L1") is not None
        assert "L1" in program.result.loops

    def test_named_ir_untouched(self):
        """The named IR keeps its pre-SSA form for the baseline."""
        from repro.ir.instructions import Phi

        program = analyze(SOURCE)
        assert not any(isinstance(i, Phi) for b in program.named_ir for i in b)
        assert any(isinstance(i, Phi) for b in program.ssa for i in b)

    def test_ssa_names_and_lookup(self):
        program = analyze(SOURCE)
        names = program.ssa_names("s")
        assert len(names) >= 3
        header_name = program.ssa_name("s", "L1")
        assert header_name in names

    def test_ssa_name_missing_raises(self):
        program = analyze(SOURCE)
        with pytest.raises(KeyError):
            program.ssa_name("nosuch", "L1")

    def test_describe_all(self):
        program = analyze(SOURCE)
        table = program.describe_all()
        assert any(v.startswith("(L1,") for v in table.values())

    def test_classification_shortcut(self):
        program = analyze(SOURCE)
        name = program.ssa_name("i", "L1")
        assert program.classification(name).describe() == "(L1, 1, 1)"

    def test_analyze_function_entry_point(self):
        named = compile_source(SOURCE)
        program = analyze_function(named)
        assert program.source is None
        assert "L1" in program.result.loops

    def test_optimize_flag(self):
        unopt = analyze(SOURCE, optimize=False)
        opt = analyze(SOURCE, optimize=True)
        # with optimization the init constant 1 is folded into the tuple
        assert opt.classification(opt.ssa_name("i", "L1")).describe() == "(L1, 1, 1)"
        cls = unopt.classification(unopt.ssa_name("i", "L1"))
        assert "i.1" in cls.describe()  # unresolved symbolic init


class TestAnalysisResultAPI:
    def test_all_classifications(self):
        program = analyze(SOURCE)
        table = program.result.all_classifications()
        assert program.ssa_name("i", "L1") in table

    def test_classification_of_param(self):
        program = analyze(SOURCE)
        cls = program.result.classification_of("n")
        assert cls.describe() == "invariant n"

    def test_defining_loop(self):
        program = analyze(SOURCE)
        assert program.result.defining_loop(program.ssa_name("i", "L1")).header == "L1"
        assert program.result.defining_loop("n") is None

    def test_opaque_definitions_recorded(self):
        program = analyze("L1: for i = 0 to n by 4 do\n  x = i\nendfor")
        trip = program.result.trip_count("L1")
        symbol = str(trip.count)
        assert symbol in program.result.opaque_definitions
        key = program.result.opaque_definitions[symbol]
        assert key[0] == "ceildiv"

    def test_opaque_symbols_deduplicated(self):
        source = (
            "L1: for i = 0 to n by 4 do\n  x = i\nendfor\n"
            "L2: for j = 0 to n by 4 do\n  y = j\nendfor"
        )
        program = analyze(source)
        t1 = program.result.trip_count("L1").count
        t2 = program.result.trip_count("L2").count
        assert t1 == t2  # same ceil-division => same opaque symbol
