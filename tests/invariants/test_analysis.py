"""The invariants driver: attachment, degradation, refinement, metrics."""

from fractions import Fraction

from repro.invariants.analysis import (
    InvariantInfo,
    _refine_ranges,
    compute_invariants,
)
from repro.invariants.poly import LoopInvariant
from repro.obs import observing
from repro.pipeline import analyze
from repro.ranges.interval import Interval
from repro.resilience.faultinject import FaultPlan, injecting
from repro.symbolic.expr import Expr

BRANCHY = """
i = 0
j = 0
s = 0
L1: while i < n do
  if A[i] > 0 then
    i = i + 1
    j = j + 2
    s = s + i
  else
    i = i + 2
    j = j + 4
    s = s + 2 * i - 1
  endif
endwhile
B[0] = j
"""


class TestComputeInvariants:
    def test_attaches_summaries_and_equalities(self):
        program = analyze(BRANCHY, ranges=True, invariants=True)
        info = program.result.invariants
        assert info is not None and not info.degraded
        assert "L1" in info.path_summaries
        assert info.path_summary_of("L1").complete
        assert len(info.invariants_of("L1")) >= 2
        assert info.total() >= 2
        summary = program.result.loops["L1"]
        assert summary.path_summary is info.path_summaries["L1"]
        assert summary.invariants == info.invariants_of("L1")

    def test_quadratic_equality_found_for_figure6_pair(self):
        program = analyze(BRANCHY, ranges=True, invariants=True)
        invariants = program.result.invariants.invariants_of("L1")
        degrees = {inv.degree for inv in invariants}
        assert 1 in degrees and 2 in degrees

    def test_runs_without_ranges(self):
        program = analyze(BRANCHY, invariants=True)
        info = program.result.invariants
        assert info is not None and not info.degraded
        assert len(info.invariants_of("L1")) >= 2

    def test_default_analyze_computes_nothing(self):
        program = analyze(BRANCHY)
        assert program.result.invariants is None
        assert program.result.loops["L1"].path_summary is None
        assert program.result.loops["L1"].invariants == ()

    def test_symbolic_entry_values(self):
        source = """
i = a
j = b
L1: while i < n do
  if A[i] > 0 then
    i = i + 1
    j = j + 2
  else
    i = i + 2
    j = j + 4
  endif
endwhile
"""
        program = analyze(source, invariants=True)
        (invariant,) = [
            inv
            for inv in program.result.invariants.invariants_of("L1")
            if inv.degree == 1
        ]
        syms = {name.split(".")[0] for name in invariant.value.free_symbols()}
        assert syms <= {"a", "b"} and syms

    def test_nested_loops_summarize_inner_only(self):
        source = """
s = 0
L1: for i = 1 to n do
  L2: for j = 1 to n do
    s = s + 1
  endfor
endfor
"""
        program = analyze(source, invariants=True)
        info = program.result.invariants
        assert "L2" in info.path_summaries
        assert "L1" not in info.path_summaries


class TestDegradation:
    def test_fault_at_compute_degrades_to_empty_info(self):
        with injecting(FaultPlan(points={"invariants.compute"})) as plan:
            program = analyze(BRANCHY, ranges=True, invariants=True)
        assert plan.fired
        info = program.result.invariants
        assert info is not None and info.degraded
        assert info.total() == 0
        assert program.degraded

    def test_degraded_loop_summaries_are_skipped(self):
        with injecting(FaultPlan(points={"classify.loop"})):
            program = analyze(BRANCHY, ranges=True, invariants=True)
        info = program.result.invariants
        assert not info.degraded  # the phase itself ran
        assert "L1" not in info.path_summaries
        assert info.total() == 0


class TestRangeRefinement:
    def test_linear_invariant_tightens_a_top_range(self):
        program = analyze(BRANCHY, ranges=True)
        ranges = program.result.ranges
        env = ranges.values
        env["u?"] = Interval.top()
        env["v?"] = Interval(0, 5)
        info = InvariantInfo(function=program.ssa.name)
        info.by_loop["L1"] = (
            LoopInvariant(
                loop="L1",
                poly=Expr.sym("u?") - Expr.const(2) * Expr.sym("v?"),
                value=Expr.zero(),
                variables=("u?", "v?"),
                degree=1,
            ),
        )
        refined = _refine_ranges(program.ssa, ranges, info)
        assert refined >= 1
        assert env["u?"] == Interval(0, 10)
        assert env["v?"] == Interval(0, 5)

    def test_refinement_is_idempotent(self):
        program = analyze(BRANCHY, ranges=True)
        ranges = program.result.ranges
        ranges.values["v?"] = Interval(0, 5)
        info = InvariantInfo(function=program.ssa.name)
        info.by_loop["L1"] = (
            LoopInvariant(
                loop="L1",
                poly=Expr.sym("u?") - Expr.const(2) * Expr.sym("v?"),
                value=Expr.zero(),
                variables=("u?", "v?"),
                degree=1,
            ),
        )
        assert _refine_ranges(program.ssa, ranges, info) >= 1
        assert _refine_ranges(program.ssa, ranges, info) == 0

    def test_quadratic_invariants_do_not_refine(self):
        program = analyze(BRANCHY, ranges=True)
        ranges = program.result.ranges
        info = InvariantInfo(function=program.ssa.name)
        info.by_loop["L1"] = (
            LoopInvariant(
                loop="L1",
                poly=Expr.sym("u?") * Expr.sym("u?"),
                value=Expr.const(4),
                variables=("u?",),
                degree=2,
            ),
        )
        assert _refine_ranges(program.ssa, ranges, info) == 0

    def test_branch_dependent_hulls_stay_finite(self):
        # the acceptance-criteria shape: i in [1, 3] per trip, not TOP
        source = """
i = 0
L1: while i < n do
  if A[i] > 0 then
    i = i + 1
  else
    i = i + 3
  endif
endwhile
"""
        program = analyze(source, ranges=True, invariants=True)
        info = program.result.ranges
        phi = next(
            name
            for name in program.result.loops["L1"].classifications
            if name.startswith("i.")
        )
        interval = info.range_of(phi)
        assert interval.lo is not None  # finite hull, not TOP
        assert interval.contains(0)


class TestObservability:
    def test_metrics_are_recorded(self):
        with observing() as obs:
            analyze(BRANCHY, ranges=True, invariants=True)
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("invariants.loops", 0) >= 1
        assert counters.get("invariants.paths", 0) >= 2
        assert counters.get("invariants.equalities", 0) >= 2
        assert counters.get("invariants.affine_loops", 0) >= 1

    def test_span_is_emitted(self):
        with observing() as obs:
            analyze(BRANCHY, invariants=True)
        assert "invariants" in {s.name for s in obs.tracer.spans}

    def test_compute_is_rerunnable(self):
        program = analyze(BRANCHY, ranges=True, invariants=True)
        again = compute_invariants(program.result)
        assert again.total() == program.result.invariants.total()
