"""The INV7xx replay checks against crafted (and sabotaged) programs."""

from repro.core.classes import BranchDependent
from repro.diagnostics.diagnostic import DiagnosticCollector
from repro.invariants.checks import check_invariants
from repro.invariants.poly import LoopInvariant
from repro.pipeline import analyze
from repro.symbolic.expr import Expr

GOOD = """
i = 0
j = 0
s = 0
L1: while i < n do
  if A[i] > 0 then
    i = i + 1
    j = j + 2
    s = s + i
  else
    i = i + 2
    j = j + 4
    s = s + 2 * i - 1
  endif
endwhile
B[0] = j
B[1] = s
"""


def run_checks(program):
    collector = DiagnosticCollector()
    emitted = check_invariants(program, collector)
    assert emitted == len(collector.diagnostics)
    return collector.diagnostics


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestVerification:
    def test_good_invariants_earn_inv702_notes(self):
        program = analyze(GOOD, ranges=True, invariants=True)
        diagnostics = run_checks(program)
        assert codes(diagnostics).count("INV702") >= 2
        assert "INV701" not in codes(diagnostics)
        assert "INV703" not in codes(diagnostics)
        note = next(d for d in diagnostics if d.code == "INV702")
        assert note.severity.name == "NOTE"
        assert "verified on" in note.message

    def test_no_info_emits_nothing(self):
        program = analyze(GOOD, ranges=True)  # invariants phase off
        assert run_checks(program) == []

    def test_degraded_info_emits_nothing(self):
        from repro.resilience.faultinject import FaultPlan, injecting

        with injecting(FaultPlan(points={"invariants.compute"})):
            program = analyze(GOOD, ranges=True, invariants=True)
        assert program.result.invariants.degraded
        assert run_checks(program) == []


class TestViolations:
    def test_wrong_equality_fires_inv701(self):
        program = analyze(GOOD, ranges=True, invariants=True)
        info = program.result.invariants
        genuine = info.by_loop["L1"][0]
        bogus = LoopInvariant(
            loop="L1",
            poly=genuine.poly,
            value=genuine.value + Expr.const(7),  # off by seven: must trip
            variables=genuine.variables,
            degree=genuine.degree,
        )
        info.by_loop["L1"] = (bogus,)
        diagnostics = run_checks(program)
        assert "INV701" in codes(diagnostics)
        finding = next(d for d in diagnostics if d.code == "INV701")
        assert finding.severity.name == "ERROR"
        assert "violated" in finding.message

    def test_wrong_step_bounds_fire_inv703(self):
        # the program steps by 5 or 9; the sabotaged claim says [1, 2]
        source = """
i = 0
L1: while i < n do
  if A[i] > 0 then
    i = i + 5
  else
    i = i + 9
  endif
endwhile
"""
        program = analyze(source, ranges=True, invariants=True)
        summary = program.result.loops["L1"]
        phi, genuine = next(
            (name, cls)
            for name, cls in summary.classifications.items()
            if isinstance(cls, BranchDependent)
        )
        summary.classifications[phi] = BranchDependent(
            genuine.loop,
            (Expr.const(1), Expr.const(2)),
            init=genuine.init,
            family=genuine.family,
        )
        diagnostics = run_checks(program)
        assert "INV703" in codes(diagnostics)
        finding = next(d for d in diagnostics if d.code == "INV703")
        assert finding.severity.name == "ERROR"
        assert "outside" in finding.message

    def test_honest_step_bounds_stay_quiet(self):
        source = """
i = 0
L1: while i < n do
  if A[i] > 0 then
    i = i + 5
  else
    i = i + 9
  endif
endwhile
"""
        program = analyze(source, ranges=True, invariants=True)
        assert "INV703" not in codes(run_checks(program))
