"""docs/INVARIANTS.md must catalogue every INV7xx check and stay linked.

Mirror of ``tests/ranges/test_docs.py``: the doc and the diagnostics
registry (category ``invariants``) are checked in both directions so
neither can drift from the other.
"""

import os
import re

import pytest

from repro.diagnostics.registry import all_checks, check_info

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
DOCS = os.path.join(ROOT, "docs", "INVARIANTS.md")

INV_CODES = {
    info.code for info in all_checks() if info.category == "invariants"
}


def read_docs():
    with open(DOCS) as handle:
        return handle.read()


def checker_headings():
    """``### CODE — title (severity)`` headings of the checker section."""
    return re.findall(
        r"^### (INV\d+) — ([a-z-]+) \((error|warning|note)\)$",
        read_docs(),
        re.MULTILINE,
    )


def test_the_suite_is_nonempty():
    assert INV_CODES, "no category-'invariants' checks registered"


def test_every_registered_code_is_documented():
    documented = {code for code, _title, _sev in checker_headings()}
    missing = INV_CODES - documented
    assert not missing, f"missing from docs/INVARIANTS.md: {sorted(missing)}"


def test_no_undocumented_or_duplicate_codes():
    documented = [code for code, _title, _sev in checker_headings()]
    unknown = [code for code in documented if code not in INV_CODES]
    assert not unknown, f"docs mention unregistered codes: {unknown}"
    assert len(documented) == len(set(documented)), "duplicate headings"


def test_documented_titles_and_severities_match_the_registry():
    for code, title, severity in checker_headings():
        info = check_info(code)
        assert info.title == title, code
        assert info.severity.name.lower() == severity, code


def test_derivation_table_names_every_stage():
    text = read_docs()
    for stage in (
        "enumerate",
        "prune",
        "execute",
        "lift",
        "solve",
        "anchor",
        "verify",
        "refine",
    ):
        assert f"| {stage} |" in text, f"{stage} missing from the table"


def test_caps_are_documented_with_their_real_values():
    from repro.invariants.paths import MAX_DEGREE, MAX_PATHS
    from repro.invariants.poly import MAX_INVARIANTS, MAX_VARIABLES

    text = read_docs()
    assert f"`MAX_PATHS = {MAX_PATHS}`" in text
    assert f"`MAX_DEGREE = {MAX_DEGREE}`" in text
    assert f"`MAX_VARIABLES = {MAX_VARIABLES}`" in text
    assert f"`MAX_INVARIANTS = {MAX_INVARIANTS}`" in text


def test_committed_example_output_is_current():
    """The doc's committed report lines match the live tool output."""
    from repro.pipeline import analyze
    from repro.report import format_report

    with open(os.path.join(ROOT, "examples", "branchy_counters.loop")) as f:
        source = f.read()
    report = format_report(analyze(source, ranges=True, invariants=True))
    text = read_docs()
    for line in (
        "i.2          branch-dependent(L1, steps {1, 2})",
        "k.2          branch-dependent(L2, steps {1, 2, 3})",
        "invariant -2*i.2 + j.2 == 0",
        "invariant i.2 - 2*s.2 + i.2^2 == 0",
        "L1: 2 path(s)",
        "L2: 3 path(s)",
    ):
        assert line in report, f"stale vs tool: {line!r}"
        assert line in text, f"stale vs doc: {line!r}"


def test_linked_from_readme_and_related_docs():
    with open(os.path.join(ROOT, "README.md")) as handle:
        assert "docs/INVARIANTS.md" in handle.read()
    for doc in ("API.md", "RANGES.md", "DIAGNOSTICS.md", "OBSERVABILITY.md"):
        with open(os.path.join(ROOT, "docs", doc)) as handle:
            assert "INVARIANTS.md" in handle.read(), f"docs/{doc} lacks the link"


def test_invariants_doc_links_back():
    text = read_docs()
    for doc in ("RANGES.md", "DIAGNOSTICS.md", "OBSERVABILITY.md", "ROBUSTNESS.md"):
        assert f"({doc})" in text, f"docs/INVARIANTS.md does not link {doc}"
