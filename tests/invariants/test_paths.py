"""Acyclic-path enumeration and per-path symbolic update maps."""

from repro.invariants.paths import MAX_PATHS, enumerate_paths
from repro.pipeline import analyze
from repro.symbolic.expr import Expr

TWO_PATH = """
i = 0
j = 0
L1: while i < n do
  if A[i] > 0 then
    i = i + 1
    j = j + 2
  else
    i = i + 3
    j = j + 6
  endif
endwhile
"""

THREE_PATH = """
k = 0
L1: while k < n do
  if A[k] > 0 then
    k = k + 1
  else
    if A[k] < 0 then
      k = k + 2
    else
      k = k + 3
    endif
  endif
endwhile
"""


def summarize(source, loop="L1", ranges=None, **kwargs):
    program = analyze(source, **kwargs)
    loop_obj = program.result.loops[loop].loop
    return enumerate_paths(program.ssa, loop_obj, ranges)


def phi_named(summary, stem):
    return next(phi for phi in summary.phis if phi.startswith(stem + "."))


class TestEnumeration:
    def test_two_path_loop(self):
        summary = summarize(TWO_PATH)
        assert len(summary.paths) == 2
        assert summary.complete and not summary.truncated
        assert summary.pruned_paths == 0

    def test_three_path_loop(self):
        summary = summarize(THREE_PATH)
        assert len(summary.paths) == 3
        assert summary.complete

    def test_single_path_loop(self):
        summary = summarize("s = 0\nL1: for i = 1 to n do\n  s = s + 2\nendfor")
        assert len(summary.paths) == 1
        assert summary.complete

    def test_nested_loop_yields_none(self):
        source = """
L1: for i = 1 to n do
  L2: for j = 1 to n do
    x = i + j
  endfor
endfor
"""
        assert summarize(source, loop="L1") is None
        inner = summarize(source, loop="L2")
        assert inner is not None and inner.complete

    def test_truncation_at_max_paths(self):
        # 5 independent two-way branches = 32 paths > MAX_PATHS
        arms = "\n".join(
            f"  if A[i + {k}] > 0 then\n    s = s + {k + 1}\n  endif"
            for k in range(5)
        )
        source = f"s = 0\nL1: for i = 1 to n do\n{arms}\nendfor"
        summary = summarize(source)
        assert summary.truncated
        assert len(summary.paths) <= MAX_PATHS
        assert not summary.complete and not summary.affine
        assert any("truncated" in note for note in summary.notes())


class TestUpdateMaps:
    def test_updates_are_per_path_symbolic_steps(self):
        summary = summarize(TWO_PATH)
        i = phi_named(summary, "i")
        j = phi_named(summary, "j")
        steps = sorted(
            (path.update_of(i) - Expr.sym(i)).constant_value()
            for path in summary.paths
        )
        assert steps == [1, 3]
        for path in summary.paths:
            di = (path.update_of(i) - Expr.sym(i)).constant_value()
            dj = (path.update_of(j) - Expr.sym(j)).constant_value()
            assert dj == 2 * di  # each path preserves j == 2*i

    def test_affine_updates(self):
        summary = summarize(TWO_PATH)
        assert summary.affine
        for path in summary.paths:
            assert path.affine

    def test_polynomial_update_is_not_affine(self):
        summary = summarize(
            "p = m\nL1: for i = 1 to n do\n  p = p * p\nendfor"
        )
        p = phi_named(summary, "p")
        (path,) = summary.paths
        update = path.update_of(p)
        assert update is not None and update.degree() == 2
        assert not summary.affine

    def test_division_update_is_opaque(self):
        summary = summarize(
            "h = n\nL1: for i = 1 to n do\n  h = h / 2\nendfor"
        )
        h = phi_named(summary, "h")
        (path,) = summary.paths
        assert path.update_of(h) is None
        assert not path.affine and not summary.affine

    def test_loop_invariant_refs_stay_symbolic(self):
        summary = summarize(
            "j = 0\nL1: for i = 1 to n do\n  j = j + m\nendfor"
        )
        j = phi_named(summary, "j")
        (path,) = summary.paths
        update = path.update_of(j)
        assert "m" in {s.split(".")[0] for s in update.free_symbols()}

    def test_describe_mentions_blocks_and_updates(self):
        summary = summarize(TWO_PATH)
        text = summary.paths[0].describe()
        assert "L1" in text and "->" in text


class TestPruning:
    PRUNABLE = """
assume c == 1
i = 0
L1: while i < n do
  if c > 0 then
    i = i + 1
  else
    i = i + 5
  endif
endwhile
"""

    def test_constant_branch_prunes_dead_path(self):
        program = analyze(self.PRUNABLE, ranges=True)
        loop = program.result.loops["L1"].loop
        summary = enumerate_paths(
            program.ssa, loop, program.result.ranges
        )
        assert summary.pruned_paths >= 1
        assert len(summary.paths) == 1
        assert any("pruned_paths" in note for note in summary.notes())

    def test_no_ranges_means_no_pruning(self):
        summary = summarize(self.PRUNABLE)
        assert summary.pruned_paths == 0
        assert len(summary.paths) == 2

    def test_degraded_ranges_disable_pruning(self):
        program = analyze(self.PRUNABLE, ranges=True)
        program.result.ranges.degraded = True
        loop = program.result.loops["L1"].loop
        summary = enumerate_paths(program.ssa, loop, program.result.ranges)
        assert summary.pruned_paths == 0
        assert len(summary.paths) == 2
