"""Pipeline, report, explain, lint-driver, and CLI wiring for invariants."""

import pytest

from repro.cli import lint_main, main
from repro.diagnostics.driver import lint_source
from repro.obs.explain import explain
from repro.pipeline import analyze
from repro.report import format_report

BRANCHY = """
i = 0
j = 0
L1: while i < n do
  if A[i] > 0 then
    i = i + 1
    j = j + 2
  else
    i = i + 2
    j = j + 4
  endif
endwhile
B[0] = j
"""


@pytest.fixture()
def branchy_file(tmp_path):
    path = tmp_path / "branchy.loop"
    path.write_text(BRANCHY)
    return str(path)


class TestReportSection:
    def test_invariants_section_renders(self):
        program = analyze(BRANCHY, ranges=True, invariants=True)
        report = format_report(program)
        assert "== invariants ==" in report
        assert "path [" in report
        assert "invariant " in report
        assert "== 0" in report

    def test_section_absent_when_phase_off(self):
        program = analyze(BRANCHY, ranges=True)
        assert "== invariants ==" not in format_report(program)

    def test_degraded_phase_is_reported(self):
        from repro.resilience.faultinject import FaultPlan, injecting

        with injecting(FaultPlan(points={"invariants.compute"})):
            program = analyze(BRANCHY, ranges=True, invariants=True)
        report = format_report(program)
        assert "== invariants ==" in report
        assert "degraded" in report


class TestExplain:
    def test_explain_shows_invariants_of_the_variable(self):
        program = analyze(BRANCHY, ranges=True, invariants=True)
        phi = next(
            name
            for name in program.result.loops["L1"].classifications
            if name.startswith("j.")
        )
        text = explain(program, phi)
        assert "invariant:" in text
        assert "branch-dependent" in text

    def test_explain_silent_without_the_phase(self):
        program = analyze(BRANCHY, ranges=True)
        phi = next(
            name
            for name in program.result.loops["L1"].classifications
            if name.startswith("j.")
        )
        assert "invariant:" not in explain(program, phi)


class TestLintDriver:
    def test_lint_source_emits_inv702(self):
        found = lint_source(BRANCHY, ranges=True, invariants=True)
        assert any(d.code == "INV702" for d in found)
        assert not [d for d in found if d.is_error]

    def test_lint_source_off_by_default(self):
        found = lint_source(BRANCHY, ranges=True)
        assert not any(d.code.startswith("INV") for d in found)


class TestCli:
    def test_report_flag(self, branchy_file, capsys):
        assert main([branchy_file, "--ranges", "--invariants"]) == 0
        out = capsys.readouterr().out
        assert "== invariants ==" in out
        assert "branch-dependent" in out

    def test_verify_includes_inv_codes(self, branchy_file, capsys):
        assert main([branchy_file, "--invariants", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "INV702" in out

    def test_lint_flag(self, branchy_file, capsys):
        assert lint_main([branchy_file, "--ranges", "--invariants"]) == 0
        out = capsys.readouterr().out
        assert "INV702" in out

    def test_strict_lint_stays_green(self, branchy_file):
        assert (
            lint_main([branchy_file, "--strict", "--ranges", "--invariants"])
            == 0
        )


class TestExamplesCorpus:
    def test_branchy_counters_example_meets_the_issue_bar(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples",
            "branchy_counters.loop",
        )
        with open(path) as handle:
            source = handle.read()
        program = analyze(source, ranges=True, invariants=True)
        info = program.result.invariants
        assert len(info.invariants_of("L1")) >= 2
        summary = info.path_summary_of("L2")
        assert summary is not None and len(summary.paths) == 3
        found = lint_source(source, ranges=True, invariants=True)
        assert any(d.code == "INV702" for d in found)
        assert not [d for d in found if d.is_error]
