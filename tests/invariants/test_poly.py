"""Polynomial invariant generation over hand-built path summaries."""

from fractions import Fraction

from repro.invariants.paths import LoopPath, PathSummary
from repro.invariants.poly import MAX_VARIABLES, generate_invariants
from repro.symbolic.expr import Expr


def sym(name):
    return Expr.sym(name)


def const(value):
    return Expr.const(value)


def path(**updates):
    return LoopPath(blocks=("L1",), updates=tuple(sorted(updates.items())))


def summary(phis, *paths):
    return PathSummary(loop="L1", phis=tuple(sorted(phis)), paths=tuple(paths))


def holds_on(invariant, state):
    env = {k: Fraction(v) for k, v in state.items()}
    return invariant.poly.evaluate(env) == invariant.value.evaluate(env)


class TestLinear:
    def test_proportional_steps_give_linear_equality(self):
        # i += 1, j += 2  |  i += 3, j += 6   =>   j == 2*i
        ps = summary(
            ("i", "j"),
            path(i=sym("i") + const(1), j=sym("j") + const(2)),
            path(i=sym("i") + const(3), j=sym("j") + const(6)),
        )
        invariants = generate_invariants(ps, {"i": const(0), "j": const(0)})
        assert len(invariants) >= 1
        linear = [inv for inv in invariants if inv.degree == 1]
        assert linear
        inv = linear[0]
        assert holds_on(inv, {"i": 4, "j": 8})
        assert not holds_on(inv, {"i": 4, "j": 9})

    def test_symbolic_entry_state_flows_into_value(self):
        ps = summary(
            ("i", "j"),
            path(i=sym("i") + const(1), j=sym("j") + const(2)),
            path(i=sym("i") + const(2), j=sym("j") + const(4)),
        )
        invariants = generate_invariants(ps, {"i": sym("a"), "j": sym("b")})
        inv = next(inv for inv in invariants if inv.degree == 1)
        # j - 2*i == b - 2*a: check on a conforming concrete state
        env = {"a": Fraction(3), "b": Fraction(10)}
        assert inv.poly.evaluate(
            {"i": Fraction(3), "j": Fraction(10), **env}
        ) == inv.value.evaluate(env)

    def test_carried_invariant_symbols_act_as_variables(self):
        # i += n, j += 2*n: the equality needs n as a joint variable
        ps = summary(
            ("i", "j"),
            path(i=sym("i") + sym("n"), j=sym("j") + const(2) * sym("n")),
            path(
                i=sym("i") + const(2) * sym("n"),
                j=sym("j") + const(4) * sym("n"),
            ),
        )
        invariants = generate_invariants(ps, {"i": const(0), "j": const(0)})
        assert any(
            inv.degree == 1 and "n" in inv.variables for inv in invariants
        )


class TestQuadratic:
    def test_figure6_pair_preserves_2s_minus_i2_minus_i(self):
        # i += 1, s += i'  |  i += 2, s += 2*i' - 1  (i' = post-update i)
        ps = summary(
            ("i", "s"),
            path(
                i=sym("i") + const(1),
                s=sym("s") + sym("i") + const(1),
            ),
            path(
                i=sym("i") + const(2),
                s=sym("s") + const(2) * (sym("i") + const(2)) - const(1),
            ),
        )
        invariants = generate_invariants(ps, {"i": const(0), "s": const(0)})
        quadratic = [inv for inv in invariants if inv.degree == 2]
        assert quadratic
        # 2*s == i^2 + i on the state after one trip of each path
        for inv in quadratic:
            assert holds_on(inv, {"i": 1, "s": 1})
            assert holds_on(inv, {"i": 3, "s": 6})

    def test_emitted_degree_is_capped_at_two(self):
        ps = summary(
            ("i", "s"),
            path(i=sym("i") + const(1), s=sym("s") + sym("i")),
            path(i=sym("i") + const(2), s=sym("s") + const(2) * sym("i")),
        )
        for inv in generate_invariants(ps, {"i": const(0), "s": const(0)}):
            assert inv.degree <= 2


class TestRefusals:
    def test_independent_updates_have_no_invariant(self):
        ps = summary(
            ("i", "j"),
            path(i=sym("i") + const(1), j=sym("j") + const(1)),
            path(i=sym("i") + const(2), j=sym("j") + const(5)),
        )
        invariants = generate_invariants(ps, {"i": const(0), "j": const(0)})
        # every candidate must actually hold on both paths' reachable states
        for inv in invariants:
            assert holds_on(inv, {"i": 1, "j": 1})
            assert holds_on(inv, {"i": 2, "j": 5})

    def test_truncated_summary_yields_nothing(self):
        ps = summary(("i",), path(i=sym("i") + const(1)))
        ps.truncated = True
        assert generate_invariants(ps, {"i": const(0)}) == []

    def test_non_affine_summary_yields_nothing(self):
        ps = summary(("i",), path(i=sym("i") * sym("i")))
        assert not ps.affine
        assert generate_invariants(ps, {"i": const(2)}) == []

    def test_missing_init_yields_nothing(self):
        ps = summary(
            ("i", "j"),
            path(i=sym("i") + const(1), j=sym("j") + const(2)),
            path(i=sym("i") + const(2), j=sym("j") + const(4)),
        )
        assert generate_invariants(ps, {"i": const(0)}) == []

    def test_variable_cap(self):
        names = [f"x{k}" for k in range(MAX_VARIABLES + 1)]
        updates = {name: sym(name) + const(1) for name in names}
        other = {name: sym(name) + const(2) for name in names}
        ps = summary(names, path(**updates), path(**other))
        inits = {name: const(0) for name in names}
        assert generate_invariants(ps, inits) == []

    def test_no_pure_parameter_identities(self):
        # n - n == 0 style vectors (no phi involved) must be dropped
        ps = summary(
            ("i", "j"),
            path(i=sym("i") + sym("n"), j=sym("j") + const(2) * sym("n")),
            path(
                i=sym("i") + const(3) * sym("n"),
                j=sym("j") + const(6) * sym("n"),
            ),
        )
        invariants = generate_invariants(ps, {"i": const(0), "j": const(0)})
        phi_set = {"i", "j"}
        for inv in invariants:
            assert inv.poly.free_symbols() & phi_set


class TestNormalization:
    def test_integer_coprime_coefficients(self):
        # steps 1/2 and 3/2: the kernel vector has fractional entries
        ps = summary(
            ("i", "j"),
            path(
                i=sym("i") + const(Fraction(1, 2)),
                j=sym("j") + const(1),
            ),
            path(
                i=sym("i") + const(Fraction(3, 2)),
                j=sym("j") + const(3),
            ),
        )
        invariants = generate_invariants(ps, {"i": const(0), "j": const(0)})
        inv = next(inv for inv in invariants if inv.degree == 1)
        coeffs = [
            coeff for _mono, coeff in inv.poly.iter_terms() if coeff
        ]
        assert all(c.denominator == 1 for c in coeffs)
