"""The Function definition caches must never go stale.

``Function.definitions()`` / ``Function.def_site()`` are cached behind a
version counter plus a structural fingerprint.  These tests mutate an
already-analyzed function through real passes (strength reduction inserts
instructions, DCE removes them) and assert the cached indexes reflect the
mutation immediately.
"""

from __future__ import annotations

import pytest

from repro.ir import function as function_module
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Assign
from repro.ir.values import Const
from repro.pipeline import analyze
from repro.scalar.dce import eliminate_dead_code
from repro.transforms.strengthreduce import strength_reduce

SOURCE = "L1: for i = 0 to n do\n  A[i * 8] = i\nendfor\nreturn 0"


def all_results(function):
    return {
        inst.result
        for block in function
        for inst in block
        if inst.result is not None
    }


def fresh_scan_site(function, name):
    """Ground truth: re-scan the blocks linearly, no cache involved."""
    for block in function:
        for position, inst in enumerate(block.instructions):
            if inst.result == name:
                return (block.label, position)
    return None


class TestStrengthReduceInvalidates:
    def test_definitions_sees_inserted_phi(self):
        p = analyze(SOURCE)
        before = dict(p.ssa.definitions())  # warm the cache
        loop = p.nest.loop_of_header("L1")
        records = strength_reduce(p.ssa, p.result, loop)
        assert records, "workload must actually reduce a multiply"

        after = p.ssa.definitions()
        assert records[0].new_phi not in before
        assert records[0].new_phi in after
        assert set(after) == all_results(p.ssa)

    def test_def_site_sees_inserted_defs(self):
        p = analyze(SOURCE)
        p.ssa.def_site("i.2")  # warm the site index
        loop = p.nest.loop_of_header("L1")
        records = strength_reduce(p.ssa, p.result, loop)
        assert records

        new_phi = records[0].new_phi
        assert p.ssa.def_site(new_phi) == fresh_scan_site(p.ssa, new_phi)
        # every definition in the mutated function resolves correctly
        for name in all_results(p.ssa):
            assert p.ssa.def_site(name) == fresh_scan_site(p.ssa, name)


class TestDCEInvalidates:
    def build(self):
        """An analyzed function with a dead instruction appended."""
        p = analyze("k = 0\nL1: for i = 1 to n do\n  k = k + 2\nendfor\nreturn k")
        # warm both caches
        p.ssa.definitions()
        p.ssa.def_site("k.2")
        # plant a dead def in the entry block (before the terminator)
        entry = p.ssa.entry
        entry.instructions.insert(len(entry.instructions) - 1, Assign("dead.1", Const(7)))
        return p

    def test_fingerprint_catches_insertion(self):
        # the insert above bypassed dirty(); the structural fingerprint
        # (block/instruction counts) must still invalidate the caches
        p = self.build()
        assert "dead.1" in p.ssa.definitions()
        assert p.ssa.def_site("dead.1") == fresh_scan_site(p.ssa, "dead.1")

    def test_definitions_sees_removal(self):
        p = self.build()
        assert "dead.1" in p.ssa.definitions()
        removed = eliminate_dead_code(p.ssa)
        assert removed >= 1
        assert "dead.1" not in p.ssa.definitions()
        assert p.ssa.def_site("dead.1") is None
        assert set(p.ssa.definitions()) == all_results(p.ssa)

    def test_def_site_positions_shift_after_removal(self):
        p = analyze("k = 0\nL1: for i = 1 to n do\n  k = k + 2\nendfor\nreturn k")
        entry = p.ssa.entry
        # dead def *above* live ones shifts later positions when removed
        entry.instructions.insert(0, Assign("dead.1", Const(7)))
        p.ssa.dirty()
        warm = {name: p.ssa.def_site(name) for name in all_results(p.ssa)}
        assert warm["dead.1"] == (entry.label, 0)

        eliminate_dead_code(p.ssa)
        for name in all_results(p.ssa):
            assert p.ssa.def_site(name) == fresh_scan_site(p.ssa, name)


class TestVersionCounter:
    def test_dirty_bumps_version(self):
        p = analyze(SOURCE)
        v0 = p.ssa.version
        p.ssa.dirty()
        assert p.ssa.version == v0 + 1

    def test_mutating_passes_bump_version(self):
        p = analyze(SOURCE)
        v0 = p.ssa.version
        loop = p.nest.loop_of_header("L1")
        strength_reduce(p.ssa, p.result, loop)
        assert p.ssa.version > v0

    def test_caching_disabled_still_correct(self):
        prior = function_module.set_caching(False)
        try:
            p = analyze(SOURCE)
            loop = p.nest.loop_of_header("L1")
            records = strength_reduce(p.ssa, p.result, loop)
            assert records
            for name in all_results(p.ssa):
                assert p.ssa.def_site(name) == fresh_scan_site(p.ssa, name)
        finally:
            function_module.set_caching(prior)
