"""Tests for Function, BasicBlock and the builder."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function, IRError
from repro.ir.instructions import Assign, Jump, Phi, Return


def small_loop() -> Function:
    fb = FunctionBuilder("f", params=["n"])
    fb.block("entry")
    fb.assign("i", 0)
    fb.jump("loop")
    fb.block("loop")
    fb.add("i", "i", 1)
    c = fb.compare(fb.temp(), __import__("repro.ir.opcodes", fromlist=["Relation"]).Relation.LT, "i", "n")
    fb.branch(c, "loop", "exit")
    fb.block("exit")
    fb.ret("i")
    return fb.done()


class TestFunction:
    def test_entry_is_first_block(self):
        f = Function("f")
        f.add_block("a")
        f.add_block("b")
        assert f.entry.label == "a"

    def test_duplicate_label_rejected(self):
        f = Function("f")
        f.add_block("a")
        with pytest.raises(IRError):
            f.add_block("a")

    def test_missing_block_raises(self):
        f = Function("f")
        with pytest.raises(IRError):
            f.block("nope")

    def test_no_blocks_entry_raises(self):
        with pytest.raises(IRError):
            _ = Function("f").entry

    def test_predecessors(self):
        f = small_loop()
        preds = f.predecessors_map()
        assert set(preds["loop"]) == {"entry", "loop"}
        assert preds["exit"] == ["loop"]

    def test_unknown_target_detected(self):
        f = Function("f")
        block = f.add_block("a")
        block.terminator = Jump("ghost")
        with pytest.raises(IRError):
            f.predecessors_map()

    def test_definitions(self):
        f = small_loop()
        defs = f.definitions()
        assert "i" in defs
        assert defs["i"][0] in ("entry", "loop")

    def test_fresh_name_and_label(self):
        f = small_loop()
        assert f.fresh_name("i") != "i"
        assert f.fresh_label("loop") != "loop"
        assert f.fresh_label("new") == "new"

    def test_instruction_count(self):
        assert small_loop().instruction_count() == 3

    def test_split_edge(self):
        f = small_loop()
        f.split_edge("entry", "loop", "mid")
        assert f.successors("entry") == ("mid",)
        assert f.successors("mid") == ("loop",)

    def test_split_edge_updates_phis(self):
        f = Function("f")
        a = f.add_block("a")
        a.terminator = Jump("b")
        b = f.add_block("b")
        b.instructions.insert(0, Phi("x", {"a": 1}))
        b.terminator = Return()
        f.split_edge("a", "b", "mid")
        phi = f.block("b").phis()[0]
        assert "mid" in phi.incoming and "a" not in phi.incoming

    def test_split_missing_edge_raises(self):
        f = small_loop()
        with pytest.raises(IRError):
            f.split_edge("exit", "entry", "x")


class TestBasicBlock:
    def test_phi_prefix_split(self):
        f = Function("f")
        b = f.add_block("b")
        b.instructions = [Phi("x", {}), Phi("y", {}), Assign("z", 1)]
        assert [p.result for p in b.phis()] == ["x", "y"]
        assert [i.result for i in b.body()] == ["z"]

    def test_len_iter(self):
        f = small_loop()
        assert len(f.block("entry")) == 1
        assert [i.result for i in f.block("entry")] == ["i"]


class TestBuilder:
    def test_builder_produces_verified_function(self):
        f = small_loop()
        assert set(f.blocks) == {"entry", "loop", "exit"}

    def test_builder_requires_block(self):
        fb = FunctionBuilder("f")
        with pytest.raises(RuntimeError):
            fb.assign("x", 1)

    def test_phi_inserted_at_prefix(self):
        fb = FunctionBuilder("f")
        fb.block("b")
        fb.assign("z", 1)
        fb.phi("p", {})
        assert isinstance(fb.current.instructions[0], Phi)

    def test_temps_unique(self):
        fb = FunctionBuilder("f")
        assert fb.temp() != fb.temp()
