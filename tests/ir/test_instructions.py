"""Tests for instruction classes: uses, replacement, printing."""

import pytest

from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
)
from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref


class TestBinOp:
    def test_uses_and_replace(self):
        inst = BinOp("t", BinaryOp.ADD, "a", 1)
        assert inst.uses() == [Ref("a"), Const(1)]
        inst.replace_uses({"a": Ref("b")})
        assert inst.lhs == Ref("b")

    def test_str(self):
        assert str(BinOp("t", BinaryOp.MUL, "a", 2)) == "%t = mul %a, 2"


class TestPhi:
    def test_incoming(self):
        phi = Phi("x", {"entry": 0, "latch": "x2"})
        assert sorted(map(str, phi.uses())) == ["%x2", "0"]
        phi.set_incoming("other", 5)
        assert phi.incoming["other"] == Const(5)

    def test_replace(self):
        phi = Phi("x", {"a": "y", "b": "y"})
        phi.replace_uses({"y": Const(2)})
        assert all(v == Const(2) for v in phi.incoming.values())

    def test_str(self):
        text = str(Phi("x", {"b": 1, "a": "z"}))
        assert text.startswith("%x = phi [")
        assert "a: %z" in text and "b: 1" in text


class TestMemory:
    def test_scalar_load(self):
        load = Load("v", "counter")
        assert load.indices is None and load.index is None
        assert load.uses() == []
        assert str(load) == "%v = load @counter"

    def test_1d_load(self):
        load = Load("v", "A", "i")
        assert load.index == Ref("i")
        assert load.uses() == [Ref("i")]

    def test_2d_load(self):
        load = Load("v", "A", ["i", "j"])
        assert len(load.indices) == 2
        with pytest.raises(ValueError):
            _ = load.index
        assert str(load) == "%v = load @A[%i, %j]"

    def test_store(self):
        store = Store("A", ["i", 3], "v")
        assert store.result is None
        assert store.uses() == [Ref("i"), Const(3), Ref("v")]
        store.replace_uses({"i": Const(0), "v": Const(9)})
        assert str(store) == "store @A[0, 3], 9"

    def test_scalar_store(self):
        store = Store("s", None, 5)
        assert str(store) == "store @s, 5"
        assert store.uses() == [Const(5)]


class TestOther:
    def test_assign(self):
        inst = Assign("x", "y")
        inst.replace_uses({"y": Const(3)})
        assert inst.src == Const(3)

    def test_unop(self):
        inst = UnOp("n", "x")
        assert str(inst) == "%n = neg %x"

    def test_compare(self):
        inst = Compare("c", Relation.LE, "i", "n")
        assert str(inst) == "%c = cmp %i <= %n"
        inst.replace_uses({"n": Const(10)})
        assert inst.rhs == Const(10)


class TestTerminators:
    def test_jump(self):
        jump = Jump("exit")
        assert jump.successors() == ("exit",)
        jump.retarget("exit", "other")
        assert jump.target == "other"

    def test_branch(self):
        branch = Branch("c", "a", "b")
        assert branch.successors() == ("a", "b")
        assert branch.uses() == [Ref("c")]
        branch.retarget("a", "z")
        assert branch.successors() == ("z", "b")
        branch.replace_uses({"c": Const(1)})
        assert branch.cond == Const(1)

    def test_branch_same_targets_dedup(self):
        assert Branch("c", "x", "x").successors() == ("x",)

    def test_return(self):
        ret = Return("v")
        assert ret.successors() == ()
        assert ret.uses() == [Ref("v")]
        assert Return().uses() == []
        assert str(Return()) == "return"


class TestRelations:
    def test_negate(self):
        assert Relation.LT.negate() is Relation.GE
        assert Relation.EQ.negate() is Relation.NE

    def test_swap(self):
        assert Relation.LT.swap() is Relation.GT
        assert Relation.EQ.swap() is Relation.EQ

    def test_holds(self):
        assert Relation.LE.holds(3, 3)
        assert not Relation.LT.holds(3, 3)
        assert Relation.NE.holds(1, 2)
        assert Relation.GE.holds(4, 2)
        assert Relation.GT.holds(4, 2)
        assert Relation.EQ.holds(2, 2)
