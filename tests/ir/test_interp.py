"""Tests for the reference interpreter."""

import pytest

from repro.ir.interp import Interpreter, InterpreterError, TraceRecorder
from repro.ir.parser import parse_function

COUNT_TO_N = """
func f(n) arrays(A) {
entry:
  %i.0 = copy 0
  jump loop
loop:
  %i.1 = phi [entry: %i.0, loop: %i.2]
  %i.2 = add %i.1, 1
  store @A[%i.2], %i.2
  %c = cmp %i.2 < %n
  branch %c, loop, exit
exit:
  return %i.2
}
"""


class TestBasics:
    def test_simple_loop(self):
        f = parse_function(COUNT_TO_N)
        result = Interpreter(f).run({"n": 5})
        assert result.return_value == 5
        assert result.arrays["A"] == {(k,): k for k in range(1, 6)}

    def test_missing_argument(self):
        f = parse_function(COUNT_TO_N)
        with pytest.raises(InterpreterError, match="missing argument"):
            Interpreter(f).run({})

    def test_unknown_argument(self):
        f = parse_function(COUNT_TO_N)
        with pytest.raises(InterpreterError, match="unknown"):
            Interpreter(f).run({"n": 1, "zzz": 2})

    def test_fuel(self):
        f = parse_function(
            "func f() {\ne:\n  jump e2\ne2:\n  jump e\n}"
        )
        with pytest.raises(InterpreterError, match="fuel"):
            Interpreter(f, fuel=100).run({})

    def test_initial_arrays(self):
        f = parse_function(
            "func f() arrays(A) {\ne:\n  %x = load @A[3]\n  return %x\n}"
        )
        assert Interpreter(f).run({}, arrays={"A": {(3,): 42}}).return_value == 42

    def test_uninitialized_cells_read_zero(self):
        f = parse_function(
            "func f() arrays(A) {\ne:\n  %x = load @A[9]\n  return %x\n}"
        )
        assert Interpreter(f).run({}).return_value == 0

    def test_history(self):
        f = parse_function(COUNT_TO_N)
        result = Interpreter(f, record_history=True).run({"n": 3})
        assert result.value_history["i.1"] == [0, 1, 2]
        assert result.value_history["i.2"] == [1, 2, 3]


class TestSemantics:
    def _run_expr(self, op, a, b):
        f = parse_function(
            f"func f() {{\ne:\n  %r = {op} {a}, {b}\n  return %r\n}}"
        )
        return Interpreter(f).run({}).return_value

    def test_div_truncates_toward_zero(self):
        assert self._run_expr("div", 7, 2) == 3
        assert self._run_expr("div", -7, 2) == -3
        assert self._run_expr("div", 7, -2) == -3
        assert self._run_expr("div", -7, -2) == 3

    def test_mod_sign_follows_dividend(self):
        assert self._run_expr("mod", 7, 3) == 1
        assert self._run_expr("mod", -7, 3) == -1
        assert self._run_expr("mod", 7, -3) == 1

    def test_div_by_zero(self):
        with pytest.raises(InterpreterError):
            self._run_expr("div", 1, 0)

    def test_exp(self):
        assert self._run_expr("exp", 2, 10) == 1024
        with pytest.raises(InterpreterError):
            self._run_expr("exp", 2, -1)

    def test_neg(self):
        f = parse_function("func f(x) {\ne:\n  %r = neg %x\n  return %r\n}")
        assert Interpreter(f).run({"x": 4}).return_value == -4

    def test_phi_parallel_evaluation(self):
        # the classic swap: t <-> u must rotate, not collapse
        f = parse_function(
            """
func f() {
entry:
  %t.0 = copy 1
  %u.0 = copy 2
  %i.0 = copy 0
  jump loop
loop:
  %t.1 = phi [entry: %t.0, loop: %u.1]
  %u.1 = phi [entry: %u.0, loop: %t.1]
  %i.1 = phi [entry: %i.0, loop: %i.2]
  %i.2 = add %i.1, 1
  %c = cmp %i.2 < 3
  branch %c, loop, exit
exit:
  %r = mul %t.1, 10
  %r2 = add %r, %u.1
  return %r2
}
"""
        )
        # after 3 header evaluations: t,u = 1,2 -> 2,1 -> 1,2
        assert Interpreter(f).run({}).return_value == 12


class TestTrace:
    def test_conflicts(self):
        f = parse_function(COUNT_TO_N)
        trace = TraceRecorder()
        Interpreter(f, trace=trace).run({"n": 3})
        assert len(trace.events) == 3
        assert all(e.is_write for e in trace.events)
        assert trace.conflicts() == []  # distinct cells: no conflicts

    def test_conflicts_detected(self):
        f = parse_function(
            """
func f(n) arrays(A) {
entry:
  %i.0 = copy 0
  jump loop
loop:
  %i.1 = phi [entry: %i.0, loop: %i.2]
  %i.2 = add %i.1, 1
  store @A[0], %i.2
  %c = cmp %i.2 < %n
  branch %c, loop, exit
exit:
  return
}
"""
        )
        trace = TraceRecorder()
        Interpreter(f, trace=trace).run({"n": 3})
        conflicts = trace.conflicts()
        assert len(conflicts) == 3  # 3 writes to one cell: C(3,2) pairs
        first, second = conflicts[0]
        assert first.time < second.time

    def test_scalar_memory_key(self):
        f = parse_function(
            "func f() arrays(s) {\ne:\n  store @s, 7\n  %x = load @s\n  return %x\n}"
        )
        trace = TraceRecorder()
        assert Interpreter(f, trace=trace).run({}).return_value == 7
        assert len(trace.conflicts()) == 1
