"""Round-trip tests for the textual IR form."""

import pytest

from repro.ir.parser import IRParseError, parse_function
from repro.ir.printer import print_function

EXAMPLE = """
func example(n) arrays(A, B) {
entry:
  %i = copy 0
  %z = neg %n
  jump loop
loop:
  %i1 = phi [entry: %i, loop: %i2]
  %i2 = add %i1, 1
  %x = load @A[%i2]
  %y = load @B[%i2, %i1]
  %s = load @scalar
  store @A[%i2], %x
  store @B[%i1, 0], 3
  store @scalar, %i2
  %c = cmp %i2 <= %n
  branch %c, loop, exit
exit:
  return %i2
}
"""


class TestRoundTrip:
    def test_parse_print_parse(self):
        f1 = parse_function(EXAMPLE)
        text1 = print_function(f1)
        f2 = parse_function(text1)
        assert print_function(f2) == text1

    def test_header_parsed(self):
        f = parse_function(EXAMPLE)
        assert f.name == "example"
        assert f.params == ["n"]
        assert f.arrays == ["A", "B"]

    def test_structure(self):
        f = parse_function(EXAMPLE)
        assert list(f.blocks) == ["entry", "loop", "exit"]
        assert len(f.block("loop").phis()) == 1

    def test_multidim_roundtrip(self):
        f = parse_function(EXAMPLE)
        load = f.block("loop").instructions[3]
        assert len(load.indices) == 2

    def test_no_arrays_header(self):
        f = parse_function("func f() {\nentry:\n  return\n}")
        assert f.arrays == []
        assert "arrays" not in print_function(f)


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(IRParseError):
            parse_function("function f() {\nentry:\n return\n}")

    def test_missing_close(self):
        with pytest.raises(IRParseError):
            parse_function("func f() {\nentry:\n  return")

    def test_instruction_before_label(self):
        with pytest.raises(IRParseError):
            parse_function("func f() {\n  %x = copy 1\n}")

    def test_bad_operand(self):
        with pytest.raises(IRParseError):
            parse_function("func f() {\ne:\n  %x = copy ?\n  return\n}")

    def test_unknown_instruction(self):
        with pytest.raises(IRParseError):
            parse_function("func f() {\ne:\n  %x = frobnicate 1\n  return\n}")

    def test_bad_branch(self):
        with pytest.raises(IRParseError):
            parse_function("func f() {\ne:\n  branch %c, only_one\n}")

    def test_content_after_close(self):
        with pytest.raises(IRParseError):
            parse_function("func f() {\ne:\n  return\n}\n%x = copy 1")

    def test_empty_input(self):
        with pytest.raises(IRParseError):
            parse_function("   \n  ")

    def test_comments_ignored(self):
        f = parse_function("# leading\nfunc f() {\n# inner\ne:\n  return\n}")
        assert f.name == "f"
