"""Tests for IR operand values."""

import pytest

from repro.ir.values import Const, Ref, as_value


class TestConst:
    def test_basic(self):
        assert Const(5).value == 5
        assert str(Const(-3)) == "-3"

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Const("5")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            Const(True)

    def test_equality(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const(2)
        assert Const(1) != Ref("1")


class TestRef:
    def test_basic(self):
        assert Ref("x").name == "x"
        assert str(Ref("x")) == "%x"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Ref("")


class TestAsValue:
    def test_coercions(self):
        assert as_value(3) == Const(3)
        assert as_value("x") == Ref("x")
        assert as_value(Const(1)) == Const(1)
        assert as_value(Ref("y")) == Ref("y")

    def test_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            as_value(True)
        with pytest.raises(TypeError):
            as_value(1.5)
