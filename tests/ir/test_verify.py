"""Tests for the IR verifier."""

import pytest

from repro.ir.function import Function, IRError
from repro.ir.instructions import Assign, BinOp, Branch, Jump, Phi, Return
from repro.ir.opcodes import BinaryOp
from repro.ir.parser import parse_function
from repro.ir.values import Ref
from repro.ir.verify import verify_function


def make_diamond(ssa=True):
    text = """
func f(c) {
entry:
  branch %c, left, right
left:
  %x.1 = copy 1
  jump join
right:
  %x.2 = copy 2
  jump join
join:
  %x.3 = phi [left: %x.1, right: %x.2]
  return %x.3
}
"""
    return parse_function(text)


class TestStructural:
    def test_good_function(self):
        verify_function(make_diamond())

    def test_missing_terminator(self):
        f = Function("f")
        f.add_block("entry")
        with pytest.raises(IRError, match="terminator"):
            verify_function(f)

    def test_no_blocks(self):
        with pytest.raises(IRError):
            verify_function(Function("f"))

    def test_phi_after_non_phi(self):
        f = Function("f")
        b = f.add_block("entry")
        b.append(Assign("x", 1))
        b.instructions.append(Phi("y", {}))
        b.terminator = Return()
        with pytest.raises(IRError, match="phi after"):
            verify_function(f)

    def test_branch_to_unknown_label(self):
        f = Function("f")
        f.add_block("entry").terminator = Jump("nowhere")
        with pytest.raises(IRError):
            verify_function(f)


class TestSSA:
    def test_good_ssa(self):
        verify_function(make_diamond(), ssa=True)

    def test_double_definition(self):
        f = make_diamond()
        f.block("right").append(Assign("x.1", 3))
        with pytest.raises(IRError, match="defined in both"):
            verify_function(f, ssa=True)

    def test_parameter_shadowed(self):
        f = make_diamond()
        f.block("left").append(Assign("c", 3))
        with pytest.raises(IRError, match="shadows"):
            verify_function(f, ssa=True)

    def test_phi_incoming_mismatch(self):
        f = make_diamond()
        phi = f.block("join").phis()[0]
        del phi.incoming["left"]
        with pytest.raises(IRError, match="incoming"):
            verify_function(f, ssa=True)

    def test_use_not_dominated(self):
        f = make_diamond()
        # use %x.1 in `right`, where `left` does not dominate
        f.block("right").append(BinOp("y", BinaryOp.ADD, Ref("x.1"), 1))
        phi = f.block("join").phis()[0]
        with pytest.raises(IRError, match="dominated"):
            verify_function(f, ssa=True)

    def test_phi_edge_value_not_available(self):
        f = make_diamond()
        phi = f.block("join").phis()[0]
        phi.incoming["left"] = Ref("x.2")  # defined in `right`, not on edge
        with pytest.raises(IRError, match="not available on edge"):
            verify_function(f, ssa=True)

    def test_use_before_def_same_block(self):
        f = Function("f")
        b = f.add_block("entry")
        b.append(BinOp("a", BinaryOp.ADD, Ref("b"), 1))
        b.append(Assign("b", 1))
        b.terminator = Return()
        with pytest.raises(IRError, match="dominated"):
            verify_function(f, ssa=True)

    def test_terminator_use_of_undefined_name(self):
        f = Function("f")
        e = f.add_block("entry")
        e.terminator = Branch(Ref("ghost"), "a", "a")
        f.add_block("a").terminator = Return()
        with pytest.raises(IRError, match="defined nowhere"):
            verify_function(f, ssa=True)

    def test_terminator_use_checked(self):
        # %x.1 is defined in `left`, which does not dominate `join`
        f = make_diamond()
        f.block("join").terminator = Return(Ref("x.1"))
        with pytest.raises(IRError, match="terminator uses"):
            verify_function(f, ssa=True)
