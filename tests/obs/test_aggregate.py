"""Corpus aggregation of run-log stores (``repro stats`` internals)."""

import json

import pytest

from tests.conftest import analyze_src

import repro.obs.aggregate as agg
from repro.obs.runlog import RUNLOG_SCHEMA, recording, origin

SERIAL = """
L1: for i = 1 to n do
  A[i] = A[i-1] + 1
endfor
"""

DOALL = """
L1: for i = 1 to n do
  A[i] = B[i] + 1
endfor
"""


@pytest.fixture
def store(tmp_path):
    directory = str(tmp_path / "runs")
    with recording(directory):
        with origin("a.loop"):
            analyze_src(SERIAL)
        with origin("b.loop"):
            analyze_src(DOALL)
    return directory


class TestLoad:
    def test_loads_directory_and_single_file(self, store):
        records = agg.load_records(store)
        assert len(records) == 2
        (run_file,) = agg.record_files(store)
        assert agg.load_records(run_file) == records

    def test_unparseable_line_becomes_error_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 1}\nnot json\n')
        records = agg.load_records(str(path))
        assert len(records) == 2
        assert "error" in records[1]


class TestTornWrites:
    """A crash mid-append leaves a truncated *last* line; recovery skips it."""

    def test_torn_tail_line_is_recovered_not_an_error(self, store):
        (run_file,) = agg.record_files(store)
        with open(run_file, "a") as handle:
            handle.write('{"schema": 1, "function": "tor')  # no newline
        records = agg.load_records(store)
        assert len(records) == 3
        assert "_torn" in records[-1]
        stats = agg.aggregate(records)
        assert stats["records"] == 2  # the torn line is not a record
        assert stats["torn"] == 1
        assert stats["errors"] == 0

    def test_torn_tail_does_not_fail_strict_mode(self, store):
        (run_file,) = agg.record_files(store)
        with open(run_file, "a") as handle:
            handle.write('{"trunca')
        assert agg.strict_problems(agg.load_records(store)) == []

    def test_mid_file_corruption_is_still_an_error(self, store):
        (run_file,) = agg.record_files(store)
        lines = open(run_file).read().splitlines()
        lines.insert(1, '{"schema": 1, "corrupt')
        with open(run_file, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        records = agg.load_records(store)
        assert any("error" in r and "_torn" not in r for r in records)
        problems = agg.strict_problems(records)
        assert any("capture error" in p for p in problems)

    def test_render_mentions_skipped_torn_lines(self, store):
        (run_file,) = agg.record_files(store)
        with open(run_file, "a") as handle:
            handle.write('{"tor')
        text = agg.render_text(agg.aggregate(agg.load_records(store)))
        assert "1 torn line(s) skipped" in text

    def test_clean_store_renders_without_torn_note(self, store):
        text = agg.render_text(agg.aggregate(agg.load_records(store)))
        assert "torn" not in text


class TestAggregate:
    def test_counts(self, store):
        stats = agg.aggregate(agg.load_records(store))
        assert stats["records"] == 2
        assert stats["errors"] == 0
        assert stats["functions"] == 2
        assert stats["loops"] == 2
        assert stats["parallel"] == {"doall": 1, "serial": 1, "undecided": 0}
        assert stats["doall_fraction"] == 0.5
        assert stats["blocked"] == {"siv": 1}
        assert "a.loop" in stats["blocked_examples"]["siv"]
        assert stats["classes"]["InductionVariable"] >= 2

    def test_empty(self):
        stats = agg.aggregate([])
        assert stats["records"] == 0
        assert stats["doall_fraction"] is None

    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert agg.percentile(values, 50) == 50.0
        assert agg.percentile(values, 99) == 99.0
        assert agg.percentile([], 50) is None
        assert agg.percentile([3.0], 99) == 3.0


class TestRender:
    def test_text_sections(self, store):
        text = agg.render_text(agg.aggregate(agg.load_records(store)))
        assert "== class distribution ==" in text
        assert "== why not DOALL ==" in text
        assert "siv" in text
        assert "InductionVariable" in text

    def test_json_round_trip(self, store):
        stats = agg.aggregate(agg.load_records(store))
        assert json.loads(agg.render_json(stats)) == json.loads(
            json.dumps(stats)
        )


class TestStrict:
    def test_clean_store_has_no_problems(self, store):
        assert agg.strict_problems(agg.load_records(store)) == []

    def test_empty_store(self):
        assert agg.strict_problems([]) == ["empty store: no run-log records found"]

    def test_schema_drift(self, store):
        records = agg.load_records(store)
        records[0]["schema"] = RUNLOG_SCHEMA + 1
        problems = agg.strict_problems(records)
        assert any("schema mismatch" in p for p in problems)

    def test_capture_error_record(self, store):
        records = agg.load_records(store) + [{"error": "boom", "origin": "x"}]
        problems = agg.strict_problems(records)
        assert any("capture error" in p for p in problems)

    def test_serial_loop_with_empty_chain(self, store):
        records = agg.load_records(store)
        for record in records:
            for loop in record["loops"]:
                loop["blocked_by"] = []
        problems = agg.strict_problems(records)
        assert any("empty" in p and "reason chain" in p for p in problems)


class TestDiff:
    def test_diff_shape_and_rendering(self, store, tmp_path):
        other = str(tmp_path / "runs-b")
        with recording(other):
            with origin("a.loop"):
                analyze_src(SERIAL)
            with origin("c.loop"):
                analyze_src(SERIAL)
        old = agg.aggregate(agg.load_records(store))
        new = agg.aggregate(agg.load_records(other))
        diff = agg.diff_stats(old, new)
        assert diff["blocked"]["siv"] == {"old": 1, "new": 2, "delta": 1}
        assert diff["doall_fraction"] == {"old": 0.5, "new": 0.0}
        text = agg.render_diff_text(diff)
        assert "siv" in text
        assert "+1" in text

    def test_identical_stores_diff_clean(self, store):
        stats = agg.aggregate(agg.load_records(store))
        diff = agg.diff_stats(stats, stats)
        assert diff["classes"] == {}
        assert diff["blocked"] == {}
        assert "unchanged" in agg.render_diff_text(diff)
