"""Why-not-DOALL attribution: structured reason chains on serial verdicts."""

from tests.conftest import analyze_src

from repro.dependence.graph import build_dependence_graph
from repro.dependence.loopinfo import analyze_parallelism
from repro.obs import observing
from repro.obs.attribution import REASON_SLUGS, BlockReason, why_not_doall
from repro.obs.explain import explain
from repro.report import format_report

SERIAL = """
L1: for i = 1 to n do
  A[i] = A[i-1] + 1
endfor
"""

DOALL = """
L1: for i = 1 to n do
  A[i] = B[i] + 1
endfor
"""

WRAPAROUND = """
j = 1
iml = n
L14: for i = 1 to n do
  A[i] = A[iml] + 1
  j = j + i
  iml = i
endfor
"""


def verdicts_of(program):
    return analyze_parallelism(
        program.result, build_dependence_graph(program.result)
    )


class TestBlockReason:
    def test_serial_loop_has_nonempty_chain(self):
        program = analyze_src(SERIAL)
        verdict = verdicts_of(program)["L1"]
        assert not verdict.parallelizable
        assert verdict.blockers
        for blocker in verdict.blockers:
            assert isinstance(blocker, BlockReason)
            assert blocker.reason in REASON_SLUGS
            assert blocker.carrier == "L1"

    def test_doall_loop_has_empty_chain(self):
        program = analyze_src(DOALL)
        verdict = verdicts_of(program)["L1"]
        assert verdict.parallelizable
        assert verdict.blockers == []

    def test_siv_cause_and_subscript_kinds(self):
        program = analyze_src(SERIAL)
        blocker = verdicts_of(program)["L1"].blockers[0]
        assert blocker.reason == "siv"
        assert blocker.array == "A"
        assert "linear" in blocker.subscripts[0]

    def test_range_blocked_without_ranges_phase(self):
        # symbolic trip count, no --ranges: refinement is range-blocked
        program = analyze_src(SERIAL)
        blocker = verdicts_of(program)["L1"].blockers[0]
        assert blocker.range_blocked

    def test_ranges_phase_clears_range_blocked_flag_shape(self):
        program = analyze_src(SERIAL, ranges=True)
        verdict = verdicts_of(program)["L1"]
        # still serial (a true flow dependence), but the attribution must
        # reflect whether a trip bound existed
        blockers = verdict.blockers
        assert blockers
        upper = program.result.ranges.trip_upper_bound("L1")
        assert all(b.range_blocked == (upper is None) for b in blockers)

    def test_describe_and_to_json_round_trip(self):
        program = analyze_src(SERIAL)
        blocker = verdicts_of(program)["L1"].blockers[0]
        text = blocker.describe()
        assert blocker.reason in text
        assert "->" in text
        as_json = blocker.to_json()
        assert as_json["reason"] == blocker.reason
        assert as_json["subscripts"] == list(blocker.subscripts)
        assert set(as_json) >= {
            "reason", "kind", "array", "source", "sink", "subscripts",
            "direction", "carrier", "range_blocked", "unknown_blocked",
        }

    def test_wraparound_loop_attributes_with_known_slug(self):
        program = analyze_src(WRAPAROUND)
        verdict = verdicts_of(program)["L14"]
        assert not verdict.parallelizable
        assert all(b.reason in REASON_SLUGS for b in verdict.blockers)


class TestSurfaces:
    def test_report_prints_blocked_by_lines(self):
        program = analyze_src(SERIAL)
        report = format_report(program)
        assert "parallelizable: no" in report
        assert "blocked by:" in report

    def test_doall_report_has_no_blocked_by(self):
        program = analyze_src(DOALL)
        assert "blocked by:" not in format_report(program)

    def test_explain_loop_header_renders_chain(self):
        program = analyze_src(SERIAL)
        text = explain(program, "L1")
        assert "loop L1" in text
        assert "parallelizable: no" in text
        assert "reason: siv" in text
        assert "subscripts:" in text

    def test_explain_doall_loop(self):
        program = analyze_src(DOALL)
        text = explain(program, "L1")
        assert "DOALL" in text

    def test_metrics_family_emitted(self):
        with observing() as obs:
            program = analyze_src(SERIAL)
            why_not_doall(
                program.result, "L1", verdicts_of(program)["L1"].carried
            )
        counters = obs.metrics.snapshot()["counters"]
        blocked = {k: v for k, v in counters.items() if k.startswith("dep.blocked.")}
        assert blocked
        assert all(key.split("dep.blocked.")[1] in REASON_SLUGS for key in blocked)


class TestFallback:
    def test_attribution_never_raises(self):
        program = analyze_src(SERIAL)
        carried = verdicts_of(program)["L1"].carried

        reasons = why_not_doall(object(), "L1", carried)  # bogus analysis
        assert len(reasons) == len(carried)
        assert all(r.reason in REASON_SLUGS for r in reasons)
