"""The ``repro trace`` CLI mode and the report-mode observability flags."""

import json

from repro.cli import main
from repro.obs.export import validate_chrome_trace

SOURCE = """\
j = 1
iml = n
L14: for i = 1 to n do
  A[i] = A[iml] + 1
  j = j + i
  iml = i
endfor
"""


def write_program(tmp_path, name="prog.loop", source=SOURCE):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


class TestTraceMode:
    def test_chrome_output_is_loadable(self, tmp_path, capsys):
        program = write_program(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["trace", program, "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) is None
        names = {e["name"] for e in document["traceEvents"]}
        assert "trace.target" in names
        assert "pipeline.analyze" in names
        assert "classify.scr" in names
        assert "traced 1/1 programs" in capsys.readouterr().out

    def test_jsonl_output(self, tmp_path):
        program = write_program(tmp_path)
        out = tmp_path / "trace.jsonl"
        assert main(["trace", program, "--format", "jsonl", "--out", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert any(r["type"] == "span" for r in records)
        assert any(r["type"] == "event" for r in records)

    def test_metrics_snapshot(self, tmp_path):
        program = write_program(tmp_path)
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["trace", program, "--out", str(out), "--metrics", str(metrics)]
        ) == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["classify.loops"] >= 1
        assert "time.pipeline.analyze_s" in snapshot["histograms"]

    def test_directory_of_programs(self, tmp_path, capsys):
        write_program(tmp_path, "a.loop")
        write_program(tmp_path, "b.loop", "L1: for i = 1 to n do\n  x = i\nendfor\n")
        out = tmp_path / "trace.json"
        assert main(["trace", str(tmp_path), "--out", str(out)]) == 0
        assert "traced 2/2 programs" in capsys.readouterr().out

    def test_missing_target(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", str(tmp_path / "nope"), "--out", str(out)]) == 2

    def test_broken_program_reported_not_fatal(self, tmp_path, capsys):
        good = write_program(tmp_path, "good.loop")
        bad = write_program(tmp_path, "bad.loop", "L1: for i = 1 to\n")
        out = tmp_path / "trace.json"
        assert main(["trace", good, bad, "--out", str(out)]) == 1
        captured = capsys.readouterr()
        assert "traced 1/2 programs" in captured.out
        assert "warning" in captured.err
        # the trace written so far is still loadable
        assert validate_chrome_trace(json.loads(out.read_text())) is None


class TestReportFlags:
    def test_explain_flag_prints_derivation(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main(["report", program, "--explain", "j"]) == 0
        out = capsys.readouterr().out
        assert "== explain j ==" in out
        assert "rule: scr.polynomial-recurrence" in out
        assert "solved x' = 1*x + (1 + h); x(0) = 1" in out

    def test_explain_repeats(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--explain", "i", "--explain", "iml"]) == 0
        out = capsys.readouterr().out
        assert "rule: scr.linear-recurrence" in out
        assert "rule: scr.wrap-around" in out

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        program = write_program(tmp_path)
        trace = tmp_path / "report-trace.json"
        metrics = tmp_path / "report-metrics.json"
        assert main(
            [program, "--trace", str(trace), "--metrics", str(metrics)]
        ) == 0
        assert validate_chrome_trace(json.loads(trace.read_text())) is None
        assert json.loads(metrics.read_text())["counters"]["classify.loops"] >= 1
        # the report itself still prints
        assert "(L14, 1, 1)" in capsys.readouterr().out

    def test_report_without_flags_unchanged(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program]) == 0
        out = capsys.readouterr().out
        assert "rule:" not in out
