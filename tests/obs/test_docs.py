"""docs/OBSERVABILITY.md must catalogue every span/event/metric/rule name.

Mirror of ``tests/diagnostics/test_docs.py``: the doc and the Python
catalogues (``repro.obs.SPAN_NAMES`` etc.) are checked in both
directions, so neither can drift from the other.
"""

import os
import re

import pytest

from repro.obs import EVENT_NAMES, METRIC_NAMES, RULE_NAMES, SPAN_NAMES

DOCS = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "OBSERVABILITY.md"
)

SECTIONS = {
    "Span catalogue": SPAN_NAMES,
    "Event catalogue": EVENT_NAMES,
    "Metric catalogue": METRIC_NAMES,
    "Rule catalogue": RULE_NAMES,
}


def read_docs():
    with open(DOCS) as handle:
        return handle.read()


def section_text(heading):
    text = read_docs()
    match = re.search(
        rf"^###? {re.escape(heading)}$(.*?)(?=^##)", text, re.MULTILINE | re.DOTALL
    )
    assert match, f"docs/OBSERVABILITY.md lacks a {heading!r} section"
    return match.group(1)


def documented_names(heading):
    """Backticked names from the section's bullet labels (before the dash)."""
    names = []
    for line in section_text(heading).splitlines():
        if not line.startswith("- `"):
            continue
        label = line.split(" — ")[0]
        for name in re.findall(r"`([^`]+)`", label):
            # `classify.class.<Classification>` / `time.<span>_s` document
            # dynamic-suffix families whose catalogue entry is the prefix
            names.append(name.split("<")[0] if "<" in name else name)
    return names


@pytest.mark.parametrize("heading", sorted(SECTIONS))
def test_every_catalogued_name_is_documented(heading):
    documented = set(documented_names(heading))
    missing = SECTIONS[heading] - documented
    assert not missing, f"{heading}: missing from docs: {sorted(missing)}"


@pytest.mark.parametrize("heading", sorted(SECTIONS))
def test_no_undocumented_names(heading):
    documented = documented_names(heading)
    unknown = [name for name in documented if name not in SECTIONS[heading]]
    assert not unknown, f"{heading}: docs mention unknown names: {unknown}"
    assert len(documented) == len(set(documented)), f"{heading}: duplicate entries"


def test_linked_from_readme_and_api_reference():
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    with open(os.path.join(root, "README.md")) as handle:
        assert "docs/OBSERVABILITY.md" in handle.read()
    with open(os.path.join(root, "docs", "API.md")) as handle:
        assert "OBSERVABILITY.md" in handle.read()
