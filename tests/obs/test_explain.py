"""Classification provenance and the ``--explain`` derivation renderer."""

from repro.core.classes import Invariant
from repro.obs.explain import explain, explain_lines
from repro.obs.provenance import Provenance, provenance_of, remember
from repro.symbolic.expr import Expr
from tests.conftest import analyze_src

SOURCE = """
j = 1
iml = n
L14: for i = 1 to n do
  k = iml + 1
  A[i] = A[iml] + k
  j = j + i
  iml = i
endfor
"""


class TestProvenance:
    def test_remember_then_read(self):
        cls = Invariant(Expr.const(3))
        assert remember(cls, "algebra.const") is cls
        prov = provenance_of(cls)
        assert isinstance(prov, Provenance)
        assert prov.rule == "algebra.const"
        assert prov.operands == ()

    def test_raw_record_promotes_once(self):
        cls = Invariant(Expr.const(3))
        remember(cls, "r", note=lambda: "lazy")
        # stored raw (no string built yet), promoted at first read
        assert isinstance(cls.provenance, tuple)
        prov = provenance_of(cls)
        assert prov.note == "lazy"
        assert cls.provenance is prov  # cached back
        assert provenance_of(cls) is prov

    def test_unrecorded_classification_has_none(self):
        assert provenance_of(Invariant(Expr.const(1))) is None

    def test_provenance_excluded_from_equality(self):
        a = Invariant(Expr.const(5))
        b = Invariant(Expr.const(5))
        remember(a, "algebra.const")
        assert a == b
        assert hash(a) == hash(b)


class TestExplain:
    def test_linear_induction_variable(self):
        text = explain(analyze_src(SOURCE), "i")
        assert "i.2: (L14, 1, 1)" in text
        assert "rule: scr.linear-recurrence" in text
        assert "solved x' = 1*x + (1); x(0) = 1" in text
        assert "rule: algebra.const" in text
        # the incremented copy derives from the header via the member rule
        assert "rule: scr.member" in text

    def test_polynomial_induction_variable(self):
        text = explain(analyze_src(SOURCE), "j")
        assert "j.2: (L14, 1, 1/2, 1/2)" in text
        assert "rule: scr.polynomial-recurrence" in text
        assert "solved x' = 1*x + (1 + h); x(0) = 1" in text

    def test_wrap_around_variable(self):
        text = explain(analyze_src(SOURCE), "iml")
        assert "wraparound(order 1; [n]; then (L14, 0, 1))" in text
        assert "rule: scr.wrap-around" in text
        assert "section 4.1" in text
        # the chain reaches both the invariant init and the linear carried value
        assert "rule: algebra.loop-invariant" in text
        assert "rule: scr.linear-recurrence" in text

    def test_operator_node_derived_from_region_context(self):
        # k = iml + 1 is classified per-operator (no SCR rule); explain
        # reconstructs the rule from the loop's retained region context
        text = explain(analyze_src(SOURCE), "k")
        assert "rule: algebra.add" in text
        assert "from iml.2" in text

    def test_copy_rule(self):
        text = explain(analyze_src(SOURCE), "iml")
        assert "rule: algebra.copy" in text  # iml.3 = i.2

    def test_top_level_name_is_invariant_axiom(self):
        text = explain(analyze_src(SOURCE), "n")
        assert "rule: algebra.top-level-invariant" in text

    def test_duplicate_operands_render_once(self):
        lines = explain_lines(analyze_src(SOURCE), "k")
        shown = [line for line in lines if "(already shown)" in line]
        assert shown  # "const 1" appears in both the add and the chain below

    def test_unknown_variable(self):
        text = explain(analyze_src(SOURCE), "nosuch")
        assert "no classification recorded" in text

    def test_depth_limit_stops_recursion(self):
        lines = explain_lines(analyze_src(SOURCE), "k", max_depth=1)
        assert any("(depth limit)" in line for line in lines)
