"""Exporters: Chrome trace-event output, JSON-lines, metrics JSON."""

import json

from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    metrics_json,
    validate_chrome_trace,
    write_chrome,
    write_jsonl,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import event, span, tracing


def traced_sample():
    with tracing() as tracer:
        with span("outer", function="main"):
            with span("inner", loop="L1"):
                event("decision", members=["i.2"], cycle=True)
    return tracer


class TestChromeTrace:
    def test_round_trip_structure(self):
        tracer = traced_sample()
        document = chrome_trace(tracer)
        assert validate_chrome_trace(document) is None
        events = document["traceEvents"]
        phases = [entry["ph"] for entry in events]
        assert phases.count("M") == 1  # process_name metadata
        assert phases.count("X") == 2  # two complete spans
        assert phases.count("i") == 1  # one instant event
        by_name = {entry["name"]: entry for entry in events}
        assert by_name["outer"]["args"] == {"function": "main"}
        assert by_name["inner"]["dur"] >= 0
        assert by_name["decision"]["args"]["members"] == ["i.2"]

    def test_written_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome(traced_sample(), str(path))
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) is None
        assert document["displayTimeUnit"] == "ms"

    def test_attrs_fall_back_to_str(self):
        class Opaque:
            def __str__(self):
                return "<opaque>"

        with tracing() as tracer:
            with span("s", obj=Opaque()):
                pass
        document = chrome_trace(tracer)
        json.dumps(document)  # nothing unserializable leaks through
        span_entry = [e for e in document["traceEvents"] if e["ph"] == "X"][0]
        assert span_entry["args"]["obj"] == "<opaque>"


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) is not None

    def test_rejects_empty_trace(self):
        assert validate_chrome_trace({"traceEvents": []}) is not None

    def test_rejects_missing_keys(self):
        document = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1}]}
        assert "tid" in validate_chrome_trace(document)

    def test_rejects_bad_timestamps(self):
        document = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1}
            ]
        }
        assert "ts" in validate_chrome_trace(document)

    def test_rejects_complete_event_without_duration(self):
        document = {
            "traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0}]
        }
        assert "dur" in validate_chrome_trace(document)


class TestJsonl:
    def test_one_object_per_record_in_timestamp_order(self):
        tracer = traced_sample()
        records = [json.loads(line) for line in jsonl_lines(tracer)]
        assert len(records) == 3
        assert [r["ts_ns"] for r in records] == sorted(r["ts_ns"] for r in records)
        assert {r["type"] for r in records} == {"span", "event"}
        outer = [r for r in records if r["name"] == "outer"][0]
        assert outer["depth"] == 0 and outer["parent"] is None

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(traced_sample(), str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)


class TestMetricsExport:
    def test_metrics_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("tarjan.nodes", 12)
        registry.observe("time.classify_s", 0.25)
        text = metrics_json(registry)
        assert json.loads(text)["counters"]["tarjan.nodes"] == 12
        path = tmp_path / "metrics.json"
        write_metrics(registry, str(path))
        assert json.loads(path.read_text()) == json.loads(text)
