"""The metrics registry and its pay-for-use emission helpers."""

from repro.obs import known_metric
from repro.obs.metrics import (
    MetricsRegistry,
    active,
    collecting,
    gauge,
    inc,
    observe,
)


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.inc("c", 4)
        assert registry.counters["c"].value == 5

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1)
        registry.set_gauge("g", 7)
        assert registry.gauges["g"].value == 7

    def test_histograms_summarize(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        histogram = registry.histograms["h"]
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_snapshot_is_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 3)
        registry.observe("h", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 3}
        assert snapshot["histograms"]["h"]["count"] == 1
        json.dumps(snapshot)  # must be serializable as-is

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 1)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestContextHelpers:
    def test_helpers_record_into_active_registry(self):
        with collecting() as registry:
            inc("c", 2)
            gauge("g", 9)
            observe("h", 0.5)
        assert registry.counters["c"].value == 2
        assert registry.gauges["g"].value == 9
        assert registry.histograms["h"].count == 1

    def test_helpers_are_noops_when_disabled(self):
        assert active() is None
        inc("c")
        gauge("g", 1)
        observe("h", 1)
        # a later context starts empty: nothing leaked from above
        with collecting() as registry:
            pass
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_nested_contexts_restore(self):
        with collecting() as outer:
            with collecting() as inner:
                inc("c")
                assert active() is inner
            assert active() is outer
        assert outer.counters == {}
        assert inner.counters["c"].value == 1


class TestCatalogue:
    def test_known_metric_exact_and_family(self):
        assert known_metric("tarjan.nodes")
        assert known_metric("classify.class.InductionVariable")
        assert known_metric("time.pipeline.analyze_s")
        assert not known_metric("bogus.metric")
