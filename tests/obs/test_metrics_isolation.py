"""Per-input metrics scoping: ``isolated()`` and the multi-input CLI loops.

Regression test for metrics-registry state bleed: one ``observing()``
context wrapped around a multi-input invocation used to accumulate every
input's counters into the single registry, so any per-input snapshot
(run-log records, per-target counters) taken after the first input
reported cumulative numbers.
"""

import json

from tests.conftest import analyze_src

from repro.obs import observing
from repro.obs.metrics import MetricsRegistry, collecting, isolated
from repro.obs.runlog import recording

ONE_LOOP = """
L1: for i = 1 to n do
  A[i] = B[i] + 1
endfor
"""

TWO_LOOPS = """
L1: for i = 1 to n do
  A[i] = B[i] + 1
endfor
L2: for j = 1 to n do
  C[j] = A[j] * 2
endfor
"""


class TestIsolated:
    def test_noop_without_parent_registry(self):
        with isolated() as inner:
            assert inner is None

    def test_fresh_registry_per_block_merged_into_parent(self):
        with collecting() as parent:
            with isolated() as first:
                first.inc("classify.loops", 2)
            with isolated() as second:
                second.inc("classify.loops", 3)
                assert second.counters["classify.loops"].value == 3  # no bleed
        assert parent.counters["classify.loops"].value == 5

    def test_merge_combines_all_metric_kinds(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.inc("c", 1)
        child.inc("c", 2)
        child.set_gauge("g", 7)
        child.observe("h", 1.0)
        child.observe("h", 3.0)
        parent.observe("h", 2.0)
        parent.merge(child)
        assert parent.counters["c"].value == 3
        assert parent.gauges["g"].value == 7
        histogram = parent.histograms["h"]
        assert histogram.count == 3
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_gauge_not_overwritten_by_unset_child(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.set_gauge("g", 5)
        child.gauge("g")  # created but never set
        parent.merge(child)
        assert parent.gauges["g"].value == 5


class TestNoBleedAcrossInputs:
    def test_per_input_counters_are_not_cumulative(self):
        seen = []
        with observing() as obs:
            for source, expected in ((ONE_LOOP, 1), (TWO_LOOPS, 2), (ONE_LOOP, 1)):
                with isolated() as inner:
                    analyze_src(source)
                seen.append((inner.counters["classify.loops"].value, expected))
        assert all(value == expected for value, expected in seen)
        # the parent still accumulated the invocation-wide total
        assert obs.metrics.counters["classify.loops"].value == 4

    def test_runlog_records_carry_per_input_counters(self, tmp_path):
        with observing():
            with recording(str(tmp_path / "runs")) as writer:
                for source in (ONE_LOOP, TWO_LOOPS):
                    with isolated():
                        analyze_src(source)
        with open(writer.path) as handle:
            first, second = [json.loads(line) for line in handle]
        assert first["counters"]["classify.loops"] == 1
        assert second["counters"]["classify.loops"] == 2  # not 3


class TestCliLoops:
    def test_corpus_report_records_are_isolated(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "one.loop").write_text(ONE_LOOP)
        (corpus / "two.loop").write_text(TWO_LOOPS)
        store = tmp_path / "runs"
        assert main([str(corpus), "--runlog", str(store)]) == 0
        capsys.readouterr()
        records = []
        for run_file in store.iterdir():
            with open(run_file) as handle:
                records += [json.loads(line) for line in handle]
        by_origin = {r["origin"]: r for r in records}
        assert len(by_origin) == 2
        one = next(r for o, r in by_origin.items() if o.endswith("one.loop"))
        two = next(r for o, r in by_origin.items() if o.endswith("two.loop"))
        assert one["counters"]["classify.loops"] == 1
        assert two["counters"]["classify.loops"] == 2
