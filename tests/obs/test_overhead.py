"""The observability layer's own cost: near-zero when off, measured when on.

The flight recorder follows the same single-gate contract as tracing and
metrics: with no ``recording()`` context live, the pipeline's per-function
``capture()`` hook is one module attribute read.  These smoke tests keep
that contract honest with generous absolute bounds (CI machines are
noisy; real regressions -- accidentally building the record with the gate
off -- are orders of magnitude past them).
"""

import os
import time

from tests.conftest import analyze_src

from repro.obs import observing
from repro.obs.runlog import capture, recording

SOURCE = """
L1: for i = 1 to n do
  A[i] = A[i-1] + 1
endfor
"""


class TestDisabledPath:
    def test_disabled_capture_is_cheap(self):
        program = analyze_src(SOURCE)
        calls = 20_000
        start = time.perf_counter()
        for _ in range(calls):
            capture(program)
        elapsed = time.perf_counter() - start
        # one bool read + return per call; 25us/call is ~100x headroom
        assert elapsed < calls * 25e-6, f"{elapsed / calls * 1e6:.2f}us per call"

    def test_disabled_run_touches_no_store(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        analyze_src(SOURCE, ranges=True, invariants=True)
        assert ".repro" not in os.listdir(str(tmp_path))

    def test_disabled_capture_returns_none_and_writes_nothing(self, tmp_path):
        program = analyze_src(SOURCE)
        store = tmp_path / "runs"
        with recording(str(store)):
            pass  # context closed: gate back off
        assert capture(program) is None
        for run_file in store.iterdir():
            assert run_file.stat().st_size == 0


class TestEnabledPath:
    def test_overhead_gauges_emitted_when_on(self, tmp_path):
        with observing() as obs:
            with recording(str(tmp_path / "runs")):
                analyze_src(SOURCE)
                analyze_src(SOURCE)
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["obs.overhead.runlog.records"] == 2
        assert snapshot["gauges"]["obs.overhead.runlog_s"] > 0

    def test_capture_cost_is_bounded(self, tmp_path):
        # the recorder's own gauge should report a sane per-record cost
        # (a record build is one dependence-graph pass over a tiny loop)
        with observing() as obs:
            with recording(str(tmp_path / "runs")):
                analyze_src(SOURCE)
        assert obs.metrics.snapshot()["gauges"]["obs.overhead.runlog_s"] < 1.0
