"""Observing the real pipeline: spans, events, metrics, cache stats."""

from repro.obs import (
    EVENT_NAMES,
    SPAN_NAMES,
    known_metric,
    observing,
)
from repro.obs.trace import tracing
from repro.symbolic import expr as expr_module
from tests.conftest import analyze_src

SOURCE = """
j = 1
iml = n
L14: for i = 1 to n do
  A[i] = A[iml] + 1
  j = j + i
  iml = i
endfor
"""


class TestObservedAnalyze:
    def test_spans_cover_the_pipeline_phases(self):
        with observing() as obs:
            analyze_src(SOURCE)
        names = {record.name for record in obs.tracer.spans}
        assert "pipeline.analyze" in names
        assert "frontend.parse" in names
        assert "ssa.construct" in names
        assert "classify" in names
        assert "classify.loop" in names

    def test_all_emitted_names_are_catalogued(self):
        with observing() as obs:
            analyze_src(SOURCE)
        span_names = {record.name for record in obs.tracer.spans}
        event_names = {record.name for record in obs.tracer.events}
        assert span_names <= SPAN_NAMES
        assert event_names <= EVENT_NAMES
        snapshot = obs.metrics.snapshot()
        for name in list(snapshot["counters"]) + list(snapshot["histograms"]):
            assert known_metric(name), f"unadvertised metric {name!r}"

    def test_nesting_pipeline_contains_classify(self):
        with observing() as obs:
            analyze_src(SOURCE)
        spans = obs.tracer.spans
        pipeline = [s for s in spans if s.name == "pipeline.analyze"][0]
        classify = [s for s in spans if s.name == "classify"][0]
        assert pipeline.start_ns <= classify.start_ns
        assert classify.end_ns <= pipeline.end_ns
        assert classify.depth > pipeline.depth

    def test_scr_events_carry_the_decisions(self):
        with observing() as obs:
            analyze_src(SOURCE)
        decisions = [e for e in obs.tracer.events if e.name == "classify.scr"]
        assert decisions
        classified = {}
        for record in decisions:
            classified.update(record.attrs["classes"])
        assert classified["i.2"] == "(L14, 1, 1)"
        assert any(e.attrs["cycle"] for e in decisions)

    def test_class_distribution_counters(self):
        with observing() as obs:
            analyze_src(SOURCE)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["classify.class.InductionVariable"] >= 2  # i and j families
        assert counters["classify.class.WrapAround"] >= 1  # iml
        assert counters["classify.loops"] == 1
        assert counters["tarjan.nodes"] > 0
        assert counters["tarjan.edges"] > 0
        assert counters["tarjan.scrs"] > 0

    def test_phase_time_histograms_recorded(self):
        with observing() as obs:
            analyze_src(SOURCE)
        histograms = obs.metrics.snapshot()["histograms"]
        assert histograms["time.pipeline.analyze_s"]["count"] == 1
        assert histograms["time.classify_s"]["count"] >= 1

    def test_untraced_analyze_records_nothing(self):
        with observing() as obs:
            pass  # context open and closed; analysis runs outside it
        analyze_src(SOURCE)
        assert obs.tracer.spans == []
        assert obs.metrics.snapshot()["counters"] == {}


class TestExprCacheStats:
    def test_cache_stats_shape(self):
        stats = expr_module.cache_stats()
        assert set(stats) == {"sym", "subst", "const"}
        for table in stats.values():
            assert set(table) == {"hits", "misses", "size"}
            assert all(isinstance(v, int) for v in table.values())

    def test_stats_move_under_analysis(self):
        before = expr_module.cache_stats()
        analyze_src(SOURCE)
        after = expr_module.cache_stats()
        touched = sum(
            after[t]["hits"] + after[t]["misses"] - before[t]["hits"] - before[t]["misses"]
            for t in ("sym", "subst", "const")
        )
        assert touched > 0

    def test_observed_run_records_cache_deltas(self):
        with observing() as obs:
            analyze_src(SOURCE)
        counters = obs.metrics.snapshot()["counters"]
        cache_keys = [k for k in counters if k.startswith("expr.cache.")]
        assert cache_keys  # per-analyze deltas of the memo tables
        assert all(counters[k] >= 0 for k in cache_keys)

    def test_reset_cache_stats(self):
        analyze_src(SOURCE)
        expr_module.reset_cache_stats()
        stats = expr_module.cache_stats()
        assert all(t["hits"] == 0 and t["misses"] == 0 for t in stats.values())


class TestDescribeAllTopLevel:
    def test_top_level_invariants_are_reported(self):
        # regression: names defined outside every loop used to be dropped
        program = analyze_src("x = 5\ny = x + 2\nL1: for i = 1 to x do\n  A[i] = y\nendfor")
        table = program.describe_all()
        assert "i.2" in table  # loop names still present
        assert table.get("x.1") == "invariant x.1"
        assert table.get("y.1") == "invariant y.1"

    def test_loopless_program_still_reports(self):
        table = analyze_src("x = 1\ny = x + 1\nreturn y").describe_all()
        assert table  # previously empty: no loops meant no output at all
        assert any(name.startswith("x") for name in table)
