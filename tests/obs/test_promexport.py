"""Prometheus text-exposition export of the metrics registry."""

import re

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import prometheus_text, write_prometheus

#: sample line: name, optional {labels}, space, value
SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+=\"[^\"]*\"\})? -?[0-9.e+-]+$"
)


def sample_lines(text):
    return [line for line in text.splitlines() if not line.startswith("#")]


class TestFormat:
    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_every_sample_line_is_well_formed(self):
        registry = MetricsRegistry()
        registry.inc("classify.loops", 3)
        registry.inc("classify.class.InductionVariable", 7)
        registry.inc("dep.blocked.siv", 2)
        registry.set_gauge("expr.cache.size", 41)
        registry.observe("time.classify_s", 0.25)
        registry.observe("time.classify_s", 0.75)
        text = prometheus_text(registry)
        for line in sample_lines(text):
            assert SAMPLE.match(line), line

    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.inc("classify.loops", 3)
        assert "repro_classify_loops_total 3" in prometheus_text(registry)

    def test_family_counters_become_labels(self):
        registry = MetricsRegistry()
        registry.inc("classify.class.InductionVariable", 7)
        registry.inc("classify.class.Unknown", 2)
        registry.inc("dep.blocked.siv", 1)
        registry.inc("resilience.degraded.ranges", 1)
        text = prometheus_text(registry)
        assert 'repro_classify_class_total{class="InductionVariable"} 7' in text
        assert 'repro_classify_class_total{class="Unknown"} 2' in text
        assert 'repro_dep_blocked_total{reason="siv"} 1' in text
        assert 'repro_resilience_degraded_total{phase="ranges"} 1' in text
        # one HELP/TYPE header per family, not per member
        assert text.count("# TYPE repro_classify_class_total") == 1

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.set_gauge("obs.overhead.runlog_s", 0.001)
        text = prometheus_text(registry)
        assert "# TYPE repro_obs_overhead_runlog_s gauge" in text
        assert "repro_obs_overhead_runlog_s 0.001" in text

    def test_unset_gauge_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("obs.overhead.runlog_s")  # created, never set
        assert prometheus_text(registry) == ""

    def test_time_histograms_share_a_labelled_family(self):
        registry = MetricsRegistry()
        registry.observe("time.classify_s", 0.25)
        registry.observe("time.classify_s", 0.75)
        registry.observe("time.ranges_s", 0.5)
        text = prometheus_text(registry)
        assert 'repro_time_seconds_count{span="classify"} 2' in text
        assert 'repro_time_seconds_sum{span="classify"} 1' in text
        assert 'repro_time_seconds_count{span="ranges"} 1' in text
        assert 'repro_time_seconds_min{span="classify"} 0.25' in text
        assert 'repro_time_seconds_max{span="classify"} 0.75' in text
        # contiguous families: every _count sample under one header
        assert text.count("# TYPE repro_time_seconds_count") == 1

    def test_families_are_contiguous(self):
        registry = MetricsRegistry()
        registry.observe("time.classify_s", 0.25)
        registry.observe("time.ranges_s", 0.5)
        text = prometheus_text(registry)
        families = []
        for line in sample_lines(text):
            name = line.split("{")[0].split(" ")[0]
            if not families or families[-1] != name:
                families.append(name)
        assert len(families) == len(set(families))

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.inc('classify.class.We"ird', 1)
        text = prometheus_text(registry)
        assert 'class="We\\"ird"' in text

    def test_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("classify.loops")
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, str(path))
        content = path.read_text()
        assert content.endswith("\n")
        assert "repro_classify_loops_total 1" in content
