"""The flight recorder: run-log records, gating, and the pipeline hook."""

import json
import os

from tests.conftest import analyze_src

from repro.obs import observing
from repro.obs import runlog
from repro.obs.runlog import (
    RUNLOG_SCHEMA,
    RunLogWriter,
    build_record,
    capture,
    recording,
    source_fingerprint,
)
from repro.resilience import FaultPlan, injecting

SERIAL = """
L1: for i = 1 to n do
  A[i] = A[i-1] + 1
endfor
"""

DOALL = """
L1: for i = 1 to n do
  A[i] = B[i] + 1
endfor
"""


def read_store(writer):
    with open(writer.path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestGating:
    def test_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        program = analyze_src(DOALL)
        assert capture(program) is None
        assert not os.path.exists(str(tmp_path / ".repro"))

    def test_recording_captures_each_analyze(self, tmp_path):
        with recording(str(tmp_path / "runs")) as writer:
            analyze_src(DOALL)
            analyze_src(SERIAL)
        assert writer.records_written == 2
        assert len(read_store(writer)) == 2

    def test_gate_restored_after_context(self, tmp_path):
        with recording(str(tmp_path / "runs")):
            pass
        assert runlog._RECORDING is False
        assert capture(analyze_src(DOALL)) is None

    def test_origin_labels_records(self, tmp_path):
        with recording(str(tmp_path / "runs")) as writer:
            with runlog.origin("examples/x.loop"):
                analyze_src(DOALL)
            analyze_src(SERIAL)
        records = read_store(writer)
        assert records[0]["origin"] == "examples/x.loop"
        assert records[1]["origin"] is None


class TestCrashSafeAppend:
    def test_each_record_is_one_complete_line(self, tmp_path):
        writer = RunLogWriter(str(tmp_path / "runs"))
        writer.write({"schema": RUNLOG_SCHEMA, "n": 1})
        writer.write({"schema": RUNLOG_SCHEMA, "n": 2})
        with open(writer.path) as handle:
            text = handle.read()
        assert text.endswith("\n")
        assert [json.loads(line)["n"] for line in text.splitlines()] == [1, 2]

    def test_append_does_not_clobber_existing_records(self, tmp_path):
        first = RunLogWriter(str(tmp_path / "runs"), run_id="r1")
        first.write({"schema": RUNLOG_SCHEMA, "n": 1})
        second = RunLogWriter(str(tmp_path / "runs"), run_id="r1")
        second.write({"schema": RUNLOG_SCHEMA, "n": 2})
        assert len(read_store(first)) == 2

    def test_serialization_failure_writes_nothing(self, tmp_path):
        # the record is serialized *before* the file is opened, so a
        # bad record cannot leave a torn half-line behind
        writer = RunLogWriter(str(tmp_path / "runs"))
        writer.write({"schema": RUNLOG_SCHEMA, "n": 1})
        circular = {}
        circular["self"] = circular
        try:
            writer.write(circular)
        except ValueError:
            pass
        assert len(read_store(writer)) == 1
        assert writer.records_written == 1


class TestRecordShape:
    def test_fields(self, tmp_path):
        with recording(str(tmp_path / "runs")) as writer:
            analyze_src(SERIAL)
        (record,) = read_store(writer)
        assert record["schema"] == RUNLOG_SCHEMA
        assert record["fingerprint"] == source_fingerprint(SERIAL)
        assert record["parallel"] == {"doall": 0, "serial": 1, "undecided": 0}
        assert record["blocked"] == {"siv": 1}
        (loop,) = record["loops"]
        assert loop["header"] == "L1"
        assert loop["parallel"] is False
        assert loop["blocked_by"]
        assert loop["blocked_by"][0]["reason"] == "siv"
        assert loop["trip"]["count"] == "n"
        assert loop["class_counts"]
        assert record["degradations"] == []

    def test_doall_record(self, tmp_path):
        with recording(str(tmp_path / "runs")) as writer:
            analyze_src(DOALL)
        (record,) = read_store(writer)
        assert record["parallel"]["doall"] == 1
        assert record["blocked"] == {}
        assert record["loops"][0]["blocked_by"] == []

    def test_ranges_and_invariants_sections(self, tmp_path):
        with recording(str(tmp_path / "runs")) as writer:
            analyze_src(SERIAL, ranges=True, invariants=True)
        (record,) = read_store(writer)
        assert record["ranges"]["values"] > 0
        assert record["invariants"] is not None

    def test_degraded_program_still_recorded(self, tmp_path):
        with recording(str(tmp_path / "runs")) as writer:
            with injecting(FaultPlan(points={"classify.loop"})):
                analyze_src(DOALL)
        (record,) = read_store(writer)
        assert record["degradations"]
        assert record["degradations"][0]["phase"]

    def test_phases_and_counters_under_observation(self, tmp_path):
        with observing() as obs:
            with recording(str(tmp_path / "runs")) as writer:
                analyze_src(DOALL)
                analyze_src(DOALL)
            total_parse = obs.tracer.phase_totals()["frontend.parse"]
        first, second = read_store(writer)
        assert first["phases"]["frontend.parse"] > 0
        # phases are per-record deltas against the shared tracer: the two
        # records partition the cumulative total instead of repeating it
        recorded = (
            first["phases"]["frontend.parse"] + second["phases"]["frontend.parse"]
        )
        assert abs(recorded - total_parse) < 1e-6
        assert first["counters"]["classify.loops"] >= 1

    def test_overhead_self_profiling(self, tmp_path):
        with observing() as obs:
            with recording(str(tmp_path / "runs")):
                analyze_src(DOALL)
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["obs.overhead.runlog.records"] == 1
        assert snapshot["gauges"]["obs.overhead.runlog_s"] >= 0


class TestFingerprint:
    def test_stable_and_distinct(self):
        assert source_fingerprint(DOALL) == source_fingerprint(DOALL)
        assert source_fingerprint(DOALL) != source_fingerprint(SERIAL)

    def test_ir_fallback(self):
        program = analyze_src(DOALL)
        fp = source_fingerprint(None, program.ssa)
        assert fp.startswith("ir-")
        assert fp == source_fingerprint(None, program.ssa)

    def test_unknown(self):
        assert source_fingerprint(None, None) == "unknown"


class TestResilience:
    def test_capture_error_degrades_to_error_record(self, tmp_path):
        writer = RunLogWriter(str(tmp_path / "runs"))
        with recording(writer=writer):
            record = capture(object())  # not an AnalyzedProgram
        assert "error" in record
        (stored,) = read_store(writer)
        assert stored["schema"] == RUNLOG_SCHEMA
        assert "error" in stored

    def test_build_record_is_json_serializable(self):
        program = analyze_src(SERIAL, ranges=True, invariants=True)
        record = build_record(program, "test")
        json.dumps(record)  # must not raise
