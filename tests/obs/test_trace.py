"""Span tracing: nesting, ordering, and the zero-cost disabled path."""

import pytest

from repro.obs.metrics import collecting
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    active,
    event,
    span,
    traced,
    tracing,
)


class TestSpanNesting:
    def test_spans_record_depth_and_parent(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        outer, inner, inner2 = tracer.spans
        assert [s.name for s in tracer.spans] == ["outer", "inner", "inner2"]
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.index
        assert inner2.depth == 1 and inner2.parent == outer.index

    def test_start_order_is_entry_order(self):
        with tracing() as tracer:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        assert [s.name for s in tracer.in_start_order()] == ["a", "b", "c"]

    def test_timestamps_are_monotone_and_nested(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        outer, inner = tracer.spans
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns
        assert outer.duration_ns >= inner.duration_ns >= 0

    def test_open_depth_balances(self):
        with tracing() as tracer:
            assert tracer.open_depth() == 0
            with span("s"):
                assert tracer.open_depth() == 1
            assert tracer.open_depth() == 0

    def test_span_survives_exception(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert tracer.open_depth() == 0
        assert tracer.spans[0].end_ns is not None

    def test_events_attach_to_enclosing_span(self):
        with tracing() as tracer:
            with span("outer"):
                event("tick", n=1)
        record = tracer.events[0]
        assert record.name == "tick"
        assert record.attrs == {"n": 1}
        assert record.parent == tracer.spans[0].index

    def test_phase_totals_sum_per_name(self):
        with tracing() as tracer:
            for _ in range(3):
                with span("phase"):
                    pass
        totals = tracer.phase_totals()
        assert set(totals) == {"phase"}
        assert totals["phase"] >= 0.0


class TestTracedDecorator:
    def test_traced_records_one_span(self):
        @traced("unit.phase")
        def fn(x):
            return x + 1

        with tracing() as tracer:
            assert fn(1) == 2
        assert [s.name for s in tracer.spans] == ["unit.phase"]
        assert fn.__traced_span__ == "unit.phase"

    def test_traced_closes_span_on_exception(self):
        @traced("unit.raises")
        def fn():
            raise RuntimeError("boom")

        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                fn()
        assert tracer.open_depth() == 0

    def test_traced_is_transparent_when_disabled(self):
        @traced("unit.phase")
        def fn(x):
            return x * 2

        assert fn(21) == 42


class TestDisabledZeroCost:
    def test_no_tracer_active_by_default(self):
        assert active() is None

    def test_span_returns_the_shared_null_singleton(self):
        # the disabled hot path must not allocate: every disabled span()
        # call returns the *same* object
        assert span("anything") is NULL_SPAN
        assert span("other", k=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with span("ignored") as record:
            assert record is None

    def test_event_is_noop_when_disabled(self):
        event("ignored", n=1)  # must not raise, records nowhere

    def test_nothing_recorded_outside_context(self):
        tracer = Tracer()
        with tracing(tracer):
            pass
        with span("after"):
            event("after")
        assert tracer.spans == []
        assert tracer.events == []

    def test_context_restores_previous_tracer(self):
        with tracing() as outer:
            with tracing() as inner:
                assert active() is inner
            assert active() is outer
        assert active() is None


class TestSpanTimeHistograms:
    def test_end_feeds_time_histogram_into_active_registry(self):
        with collecting() as registry:
            with tracing():
                with span("phase.x"):
                    pass
        histogram = registry.histograms["time.phase.x_s"]
        assert histogram.count == 1
        assert histogram.total >= 0.0

    def test_no_histograms_without_collecting(self):
        with tracing() as tracer:
            with span("phase.x"):
                pass
        assert tracer.spans[0].end_ns is not None  # still traced fine
