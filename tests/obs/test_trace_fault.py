"""Chrome traces stay valid under fault injection.

Degraded phases must still close their spans: a fault contained by the
resilient pipeline cannot leave the tracer's stack unbalanced or produce
a structurally invalid trace document.
"""

import pytest

from tests.conftest import analyze_src

from repro.obs import observing
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.resilience import FaultPlan, all_fault_points, injecting

SOURCE = """
j = 1
L1: for i = 1 to n do
  A[i] = A[i-1] + j
  j = j + i
endfor
"""

#: phases that run inside ``analyze(ranges=True, invariants=True)`` for
#: SOURCE and degrade (rather than abort) when faulted
DEGRADING_POINTS = (
    "classify.loop",
    "classify.tripcount",
    "closedform.fit",
    "ranges.compute",
    "invariants.compute",
    "scalar.gvn",
    "scalar.sccp",
)


@pytest.mark.parametrize("point", DEGRADING_POINTS)
def test_trace_closes_spans_under_fault(point):
    assert point in all_fault_points()
    with observing() as obs:
        with injecting(FaultPlan(points={point})):
            program = analyze_src(SOURCE, ranges=True, invariants=True)
    assert program.degradations, point
    assert obs.tracer.open_depth() == 0
    assert validate_chrome_trace(chrome_trace(obs.tracer)) is None


def test_dependence_graph_fault_keeps_trace_valid():
    # the graph is an optional phase of the report, not of analyze();
    # format_report contains the fault and must leave the trace balanced
    from repro.report import format_report

    with observing() as obs:
        program = analyze_src(SOURCE)
        with injecting(FaultPlan(points={"dependence.graph"})):
            report = format_report(program)
    assert "dependence" in report
    assert obs.tracer.open_depth() == 0
    assert validate_chrome_trace(chrome_trace(obs.tracer)) is None


def test_trace_valid_with_every_point_armed_at_once():
    with observing() as obs:
        with injecting(FaultPlan(points=set(DEGRADING_POINTS))):
            analyze_src(SOURCE, ranges=True, invariants=True)
    assert obs.tracer.open_depth() == 0
    document = chrome_trace(obs.tracer)
    assert validate_chrome_trace(document) is None
    # degradation events made it into the exported document
    names = {entry["name"] for entry in document["traceEvents"]}
    assert "resilience.degraded" in names
