"""Property-based tests: the classifier against the interpreter.

Random loop bodies are generated from a small statement grammar; every
closed form, monotonicity claim and periodicity claim the classifier makes
is then checked against the actual execution.  This is the strongest
correctness statement in the suite: the classifier may be *conservative*
(Unknown is always allowed) but never *wrong*.
"""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.classes import (
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.ir.interp import Interpreter
from repro.pipeline import analyze
from repro.symbolic.expr import ExprError

VARS = ["a", "b", "c", "d"]


@st.composite
def statements(draw):
    """One random loop-body statement over VARS."""
    kind = draw(st.sampled_from(["inc", "dec", "affine", "copy", "swapstep", "mulstep", "condinc"]))
    target = draw(st.sampled_from(VARS))
    source = draw(st.sampled_from(VARS))
    const = draw(st.integers(min_value=-3, max_value=3))
    if kind == "inc":
        return f"{target} = {target} + {abs(const)}"
    if kind == "dec":
        return f"{target} = {target} - {abs(const)}"
    if kind == "affine":
        return f"{target} = {source} + {const}"
    if kind == "copy":
        return f"{target} = {source}"
    if kind == "swapstep":
        return f"{target} = {3 + abs(const)} - {target}"
    if kind == "mulstep":
        return f"{target} = {target} * {abs(const) % 3 + 1} + {abs(const)}"
    if kind == "condinc":
        return (
            f"if i % 3 == {abs(const) % 3} then\n"
            f"    {target} = {target} + {abs(const)}\n"
            f"  endif"
        )
    raise AssertionError(kind)


@st.composite
def loop_programs(draw):
    inits = [f"{v} = {draw(st.integers(min_value=-4, max_value=4))}" for v in VARS]
    body = [f"  {draw(statements())}" for _ in range(draw(st.integers(1, 5)))]
    trips = draw(st.integers(min_value=0, max_value=9))
    lines = inits + [f"L1: for i = 1 to {trips} do"] + body + ["endfor"]
    return "\n".join(lines)


@settings(max_examples=120, deadline=None)
@given(loop_programs())
def test_classifications_sound_against_execution(source):
    program = analyze(source)
    result = Interpreter(program.ssa, record_history=True).run({})
    env = {}
    for name, values in result.value_history.items():
        if len(values) == 1:
            env.setdefault(name, Fraction(values[0]))
    for name, value in result.scalars.items():
        env.setdefault(name, Fraction(value))

    summary = program.result.loops.get("L1")
    if summary is None:
        return
    latches = summary.loop.latches
    for name, cls in summary.classifications.items():
        history = result.value_history.get(name, [])
        # closed forms index by iteration; history indexes by occurrence --
        # they only align for unconditionally executed definitions
        block = program.result._def_block.get(name)
        unconditional = block is not None and all(
            program.domtree.dominates(block, latch) for latch in latches
        )
        if isinstance(cls, (Invariant, InductionVariable, WrapAround, Periodic)):
            if not unconditional:
                continue
            for h, observed in enumerate(history):
                expected = cls.value_at(h)
                if expected is None:
                    break
                if any(s.startswith("$k") for s in expected.free_symbols()):
                    break
                try:
                    predicted = expected.evaluate(env)
                except ExprError:
                    break
                assert predicted == observed, (
                    f"{source}\n{name} classified {cls.describe()}: "
                    f"h={h} predicted {predicted} observed {observed}"
                )
        elif isinstance(cls, Monotonic):
            for earlier, later in zip(history, history[1:]):
                if cls.direction > 0:
                    assert later >= earlier, f"{source}\n{name} not nondecreasing"
                    if cls.strict:
                        assert later > earlier, f"{source}\n{name} not strict"
                else:
                    assert later <= earlier, f"{source}\n{name} not nonincreasing"
                    if cls.strict:
                        assert later < earlier, f"{source}\n{name} not strict"


@settings(max_examples=60, deadline=None)
@given(loop_programs(), st.integers(min_value=0, max_value=20))
def test_trip_counts_exact(source, _salt):
    """Exact constant trip counts must match the observed header count."""
    program = analyze(source)
    trip = program.result.trip_count("L1")
    constant = trip.constant()
    if constant is None or not trip.exact:
        return
    result = Interpreter(program.ssa, record_history=True).run({})
    header_phis = program.ssa.block("L1").phis()
    if not header_phis:
        return
    observed = len(result.value_history[header_phis[0].result])
    # the header phi evaluates tc + 1 times (the last visit exits)
    assert observed == constant + 1, source


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-5, max_value=5), st.integers(min_value=1, max_value=4),
       st.integers(min_value=-3, max_value=3), st.integers(min_value=0, max_value=8))
def test_affine_recurrences_always_solved(x0, mult, add, trips):
    """x = mult*x + add must always classify as IV/Invariant/Periodic and
    predict every value exactly."""
    source = (
        f"x = {x0}\nL1: for i = 1 to {trips} do\n  x = x * {mult} + {add}\nendfor\nreturn x"
    )
    program = analyze(source)
    cls = None
    try:
        cls = program.classification(program.ssa_name("x", "L1"))
    except KeyError:
        return  # completely constant-folded: fine
    # zero-trip loops legitimately classify as wrap-around (the steady
    # state is never observed); anything else must be an IV-family class
    assert isinstance(
        cls, (InductionVariable, Invariant, Periodic, WrapAround)
    ), cls.describe()
    result = Interpreter(program.ssa, record_history=True).run({})
    history = result.value_history[program.ssa_name("x", "L1")]
    for h, observed in enumerate(history):
        assert cls.value_at(h).constant_value() == observed
