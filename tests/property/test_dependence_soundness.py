"""Dependence analysis soundness against execution traces.

For random loop programs with array accesses, every conflict the
interpreter *observes* (two accesses to the same cell, at least one a
write) must be covered by an edge of the computed dependence graph.
A missing edge would be a miscompilation license; this test makes the
whole solver stack (subscript classification, SIV/GCD/Banerjee, the
periodic/monotonic/wrap-around translations, plausibility filtering)
answer to reality.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dependence.graph import build_dependence_graph
from repro.ir.interp import Interpreter, TraceRecorder
from repro.pipeline import analyze

SUBSCRIPTS = [
    "i",
    "i + 1",
    "i - 1",
    "2 * i",
    "2 * i + 1",
    "n - i",
    "5",
    "j",
    "k",
    "i % 3",
]


@st.composite
def array_programs(draw):
    lines = [
        "j = 1",
        "k = 0",
        "jo = 2",
    ]
    trips = draw(st.integers(min_value=0, max_value=8))
    lines.append(f"L1: for i = 1 to {trips} do")
    for _ in range(draw(st.integers(1, 4))):
        write = draw(st.booleans())
        sub = draw(st.sampled_from(SUBSCRIPTS))
        if write:
            lines.append(f"  A[{sub}] = i")
        else:
            lines.append(f"  x = A[{sub}]")
    # scalar evolution statements that create the interesting classes
    evolution = draw(
        st.sampled_from(
            [
                ["  t = j", "  j = jo", "  jo = t"],  # periodic
                ["  if A[i] > 0 then", "    k = k + 1", "  endif"],  # monotonic
                ["  k = i"],  # wrap-around for next iteration uses
                [],
            ]
        )
    )
    lines.extend(evolution)
    lines.append("endfor")
    return "\n".join(lines), trips


@settings(max_examples=100, deadline=None)
@given(array_programs())
def test_no_observed_conflict_escapes_the_graph(case):
    source, trips = case
    program = analyze(source)
    graph = build_dependence_graph(program.result)
    covered = {
        (edge.source.block, edge.source.position, edge.sink.block, edge.sink.position)
        for edge in graph.edges
    }

    trace = TraceRecorder()
    Interpreter(program.ssa, trace=trace).run({"n": 6} if "n" in program.ssa.params else {})
    for first, second in trace.conflicts():
        key = (first.block, first.position, second.block, second.position)
        assert key in covered, (
            f"missed dependence {first} -> {second}\n{source}\n"
            f"edges: {[repr(e) for e in graph.edges]}"
        )


@settings(max_examples=50, deadline=None)
@given(array_programs(), st.integers(min_value=0, max_value=10))
def test_exact_independence_never_contradicted(case, n_value):
    """Where the analysis *proves* independence for every orientation of a
    pair, the trace must show no conflict between those sites."""
    source, _ = case
    program = analyze(source)
    graph = build_dependence_graph(program.result)
    covered = {
        (edge.source.block, edge.source.position, edge.sink.block, edge.sink.position)
        for edge in graph.edges
    }
    trace = TraceRecorder()
    args = {"n": n_value} if "n" in program.ssa.params else {}
    Interpreter(program.ssa, trace=trace).run(args)
    for first, second in trace.conflicts():
        key = (first.block, first.position, second.block, second.position)
        assert key in covered
