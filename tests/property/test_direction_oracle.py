"""Direction-vector exactness against enumerated executions.

Stronger than edge coverage: for every *observed* conflict the interpreter
records the iteration vector of both accesses; the dependence edge between
those sites must have a direction vector that admits the observed signs.
This audits the sign conventions of the whole solver stack (including the
periodic '!=' and monotonic '='/'<=' translations and the plausibility
filtering) level by level.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dependence.graph import build_dependence_graph
from repro.ir.interp import Interpreter, TraceRecorder
from repro.pipeline import analyze

OUTER_SUBS = ["i", "i + 1", "2 * i", "n - i", "3", "j", "k"]
INNER_SUBS = ["x", "x + 1", "i", "i + x", "2 * x", "j"]


@st.composite
def nest_programs(draw):
    n = draw(st.integers(min_value=0, max_value=5))
    lines = [
        "j = 1",
        "jo = 2",
        "k = 0",
        f"L1: for i = 1 to {n} do",
    ]
    for _ in range(draw(st.integers(0, 2))):
        sub = draw(st.sampled_from(OUTER_SUBS))
        if draw(st.booleans()):
            lines.append(f"  A[{sub}] = i")
        else:
            lines.append(f"  y = A[{sub}]")
    inner = draw(st.booleans())
    if inner:
        m = draw(st.integers(min_value=0, max_value=4))
        lines.append(f"  L2: for x = 1 to {m} do")
        for _ in range(draw(st.integers(1, 2))):
            sub = draw(st.sampled_from(INNER_SUBS))
            if draw(st.booleans()):
                lines.append(f"    A[{sub}] = x")
            else:
                lines.append(f"    y = A[{sub}]")
        lines.append("  endfor")
    evolution = draw(
        st.sampled_from(
            [
                ["  t = j", "  j = jo", "  jo = t"],
                ["  if A[i] > 0 then", "    k = k + 1", "  endif"],
                [],
            ]
        )
    )
    lines.extend(evolution)
    lines.append("endfor")
    return "\n".join(lines), ("n" in "\n".join(lines))


def _loop_bodies(program):
    return {loop.header: set(loop.body) for loop in program.nest}


@settings(max_examples=120, deadline=None)
@given(nest_programs())
def test_observed_directions_admitted(case):
    source, has_n = case
    program = analyze(source)
    graph = build_dependence_graph(program.result)
    edges_by_sites = {}
    for edge in graph.edges:
        key = (
            edge.source.block,
            edge.source.position,
            edge.sink.block,
            edge.sink.position,
        )
        edges_by_sites.setdefault(key, []).append(edge)

    trace = TraceRecorder()
    args = {"n": 4} if "n" in program.ssa.params else {}
    Interpreter(
        program.ssa, trace=trace, track_loops=_loop_bodies(program)
    ).run(args)

    for first, second in trace.conflicts():
        key = (first.block, first.position, second.block, second.position)
        candidates = edges_by_sites.get(key, [])
        assert candidates, f"missed dependence {first} -> {second}\n{source}"
        admitted = False
        for edge in candidates:
            common = edge.result.common_loops
            signs = []
            usable = True
            for header in common:
                h1 = first.iteration_of(header)
                h2 = second.iteration_of(header)
                if h1 is None or h2 is None:
                    usable = False
                    break
                difference = h2 - h1
                signs.append(0 if difference == 0 else (1 if difference > 0 else -1))
            if not usable:
                admitted = True  # cannot audit: do not fail
                break
            if not edge.result.directions:
                admitted = True
                break
            for vector in edge.result.directions:
                if all(s in element for s, element in zip(signs, vector.elements)):
                    admitted = True
                    break
            if admitted:
                break
        assert admitted, (
            f"observed signs not admitted\n{source}\n"
            f"{first} -> {second}\nedges: {candidates}"
        )
