"""Soundness oracles for the invariants phase.

Two claims are held against the reference interpreter on randomly
branch-biased loops:

* every polynomial equality :func:`repro.invariants.poly.generate_invariants`
  emits must hold at **every** interpreter-observed header state (the
  invariants may be *missing* -- fewer equalities is always allowed --
  but never *wrong*);
* every :class:`~repro.core.classes.BranchDependent` header phi with
  numeric step bounds must move by a per-iteration delta inside
  ``[min_step, max_step]`` on every observed consecutive pair of header
  states.
"""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.classes import BranchDependent
from repro.ir.interp import Interpreter, InterpreterError
from repro.pipeline import analyze
from repro.symbolic.expr import ExprError

VARS = ["a", "b", "c", "d"]
FUEL = 200_000


def _run(program, args):
    try:
        return Interpreter(program.ssa, fuel=FUEL, record_history=True).run(
            args
        )
    except InterpreterError:
        return None  # e.g. out of fuel: nothing observed, nothing to check


def _entry_env(run):
    """Observable loop-entry environment: single-valued names + scalars."""
    env = {}
    for name, values in run.value_history.items():
        if len(values) == 1:
            env.setdefault(name, Fraction(values[0]))
    for name, value in run.scalars.items():
        env.setdefault(name, Fraction(value))
    return env


def assert_invariants_hold(program, args):
    """Every emitted equality holds at every observed header state."""
    info = program.result.invariants
    assert info is not None
    if info.degraded:
        return
    run = _run(program, args)
    if run is None:
        return
    env = _entry_env(run)
    for header, invariants in info.by_loop.items():
        summary = program.result.loops.get(header)
        if summary is None or summary.loop.parent is not None:
            continue  # inner-loop histories interleave outer iterations
        for invariant in invariants:
            histories = {
                v: run.value_history[v]
                for v in invariant.variables
                if v in run.value_history
            }
            if not histories:
                continue
            try:
                expected = invariant.value.evaluate(env)
            except ExprError:
                continue  # entry state not observable under these args
            trips = min(len(h) for h in histories.values())
            for h in range(trips):
                state = dict(env)
                for phi, history in histories.items():
                    state[phi] = Fraction(history[h])
                try:
                    observed = invariant.poly.evaluate(state)
                except ExprError:
                    break
                assert observed == expected, (
                    f"invariant {invariant.describe()} of {header} violated "
                    f"at header state {h}: {observed} != {expected}\n"
                    f"args={args}"
                )


def assert_step_bounds_sound(program, args):
    """Observed header-phi deltas stay inside BranchDependent bounds."""
    run = _run(program, args)
    if run is None:
        return
    for summary in program.result.loops.values():
        if summary.loop.parent is not None:
            continue
        header = program.ssa.blocks.get(summary.loop.header)
        header_phis = (
            {phi.result for phi in header.phis()} if header is not None else set()
        )
        for name, cls in summary.classifications.items():
            if name not in header_phis or not isinstance(cls, BranchDependent):
                continue
            lo, hi = cls.min_step(), cls.max_step()
            if lo is None or hi is None:
                continue  # symbolic steps carry no numeric claim
            history = run.value_history.get(name, [])
            for h, (earlier, later) in enumerate(zip(history, history[1:])):
                delta = Fraction(later) - Fraction(earlier)
                assert lo <= delta <= hi, (
                    f"{name} classified {cls.describe()} moved by {delta} "
                    f"at step {h} -> {h + 1}, outside [{lo}, {hi}]\n"
                    f"args={args}"
                )


@st.composite
def arm_statements(draw):
    """One statement for a branch arm: steps, couplings, accumulations."""
    kind = draw(st.sampled_from(["inc", "dec", "couple", "accum"]))
    target = draw(st.sampled_from(VARS))
    source = draw(st.sampled_from(VARS))
    const = draw(st.integers(min_value=0, max_value=4))
    if kind == "inc":
        return f"{target} = {target} + {const}"
    if kind == "dec":
        return f"{target} = {target} - {const}"
    if kind == "couple":
        return f"{target} = {target} + {source}"
    if kind == "accum":
        return f"{target} = {target} + {const} * i"
    raise AssertionError(kind)


@st.composite
def branchy_loops(draw):
    """A bounded loop whose body branches between biased update arms."""
    inits = [f"{v} = {draw(st.integers(min_value=-3, max_value=3))}" for v in VARS]
    cond_kind = draw(st.sampled_from(["mod", "cmp", "varcmp"]))
    if cond_kind == "mod":
        cond = f"i % {draw(st.integers(2, 4))} == {draw(st.integers(0, 2))}"
    elif cond_kind == "cmp":
        cond = f"i > {draw(st.integers(0, 5))}"
    else:
        cond = f"{draw(st.sampled_from(VARS))} > {draw(st.sampled_from(VARS))}"
    then_arm = [f"    {draw(arm_statements())}" for _ in range(draw(st.integers(1, 2)))]
    else_arm = [f"    {draw(arm_statements())}" for _ in range(draw(st.integers(1, 2)))]
    tail = [f"  {draw(arm_statements())}" for _ in range(draw(st.integers(0, 1)))]
    trips = draw(st.integers(min_value=0, max_value=8))
    lines = (
        inits
        + [f"L1: for i = 1 to {trips} do", f"  if {cond} then"]
        + then_arm
        + ["  else"]
        + else_arm
        + ["  endif"]
        + tail
        + ["endfor"]
    )
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(branchy_loops())
def test_emitted_equalities_hold_on_every_observed_state(source):
    program = analyze(source, ranges=True, invariants=True)
    assert_invariants_hold(program, {})


@settings(max_examples=60, deadline=None)
@given(branchy_loops())
def test_branch_dependent_step_bounds_are_sound(source):
    program = analyze(source, ranges=True, invariants=True)
    assert_step_bounds_sound(program, {})


@st.composite
def biased_counter_loops(draw):
    """While loops counting up by one of several strictly positive steps."""
    steps = draw(
        st.lists(
            st.integers(min_value=1, max_value=5),
            min_size=2,
            max_size=3,
            unique=True,
        )
    )
    factor = draw(st.integers(min_value=1, max_value=3))
    bound = draw(st.integers(min_value=1, max_value=12))
    arms = [f"    x = x + {steps[0]}", f"    y = y + {factor * steps[0]}"]
    alt = [f"    x = x + {steps[1]}", f"    y = y + {factor * steps[1]}"]
    lines = (
        ["x = 0", "y = 0", f"L1: while x < {bound} do", "  if a % 2 == 0 then"]
        + arms
        + ["  else"]
        + alt
        + ["  endif", "  a = a + 1", "endwhile"]
    )
    value = draw(st.integers(min_value=-4, max_value=4))
    return "\n".join(lines), value


@settings(max_examples=40, deadline=None)
@given(biased_counter_loops())
def test_while_counters_prove_and_keep_the_coupling(case):
    source, a = case
    program = analyze(source, ranges=True, invariants=True)
    assert_invariants_hold(program, {"a": a})
    assert_step_bounds_sound(program, {"a": a})
    # the coupling y == factor*x is linear and must actually be found
    # (unless ranges proved the whole loop dead and pruned every path)
    summary = program.result.invariants.path_summary_of("L1")
    if summary is not None and summary.complete:
        assert any(
            inv.degree == 1
            for inv in program.result.invariants.invariants_of("L1")
        )


def test_examples_corpus_is_sound():
    """Every embedded example passes both oracles on fixed samples."""
    import os

    from repro.diagnostics.driver import collect_targets

    examples = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
    for target in collect_targets([examples]):
        program = analyze(target.source, ranges=True, invariants=True)
        params = program.ssa.params
        for seed in (1, 3, 7):
            args = {param: seed for param in params}
            assert_invariants_hold(program, args)
            assert_step_bounds_sound(program, args)
