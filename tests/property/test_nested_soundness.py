"""Property tests over *nested* random loops.

The nested driver (exit values, symbolic trip counts, outer re-
classification) is the subtlest part of the system; here random two-level
nests are generated and every outer-loop closed form is audited against
execution, including the wrap-around and rotation statement shapes.
"""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.classes import InductionVariable, Invariant, Periodic, WrapAround
from repro.ir.interp import Interpreter
from repro.pipeline import analyze
from repro.symbolic.expr import ExprError

VARS = ["a", "b", "c"]


@st.composite
def nested_programs(draw):
    lines = [f"{v} = {draw(st.integers(-3, 3))}" for v in VARS]
    outer = draw(st.integers(0, 5))
    lines.append(f"L1: for i = 1 to {outer} do")

    prologue = draw(st.integers(0, 2))
    for _ in range(prologue):
        t = draw(st.sampled_from(VARS))
        s = draw(st.sampled_from(VARS))
        kind = draw(st.sampled_from(["inc", "affine", "rotate", "wrap"]))
        if kind == "inc":
            lines.append(f"  {t} = {t} + {draw(st.integers(0, 3))}")
        elif kind == "affine":
            lines.append(f"  {t} = {s} + {draw(st.integers(-2, 2))}")
        elif kind == "rotate":
            lines.append(f"  t0 = {t}")
            lines.append(f"  {t} = {s}")
            lines.append(f"  {s} = t0")
        else:
            lines.append(f"  {t} = i")

    inner_kind = draw(st.sampled_from(["const", "triangular"]))
    bound = str(draw(st.integers(0, 4))) if inner_kind == "const" else "i"
    lines.append(f"  L2: for j = 1 to {bound} do")
    for _ in range(draw(st.integers(1, 2))):
        t = draw(st.sampled_from(VARS))
        kind = draw(st.sampled_from(["inc", "mul"]))
        if kind == "inc":
            lines.append(f"    {t} = {t} + {draw(st.integers(0, 2))}")
        else:
            lines.append(f"    {t} = {t} * {draw(st.integers(1, 2))}")
    lines.append("  endfor")
    lines.append("endfor")
    return "\n".join(lines)


@settings(max_examples=120, deadline=None)
@given(nested_programs())
def test_outer_closed_forms_match_execution(source):
    program = analyze(source)
    result = Interpreter(program.ssa, record_history=True).run({})
    env = {}
    for name, values in result.value_history.items():
        if len(values) == 1:
            env.setdefault(name, Fraction(values[0]))
    for name, value in result.scalars.items():
        env.setdefault(name, Fraction(value))

    summary = program.result.loops.get("L1")
    if summary is None:
        return
    latches = summary.loop.latches
    for name, cls in summary.classifications.items():
        if not isinstance(cls, (Invariant, InductionVariable, WrapAround, Periodic)):
            continue
        if name not in result.value_history:
            continue
        block = program.result._def_block.get(name)
        if block is None or not all(
            program.domtree.dominates(block, latch) for latch in latches
        ):
            continue
        defining = program.result.defining_loop(name)
        if defining is None or defining.header != summary.label:
            continue  # an exit-value view of an inner-loop name: indexed
            # by the outer iteration, not by this name's occurrences
        for h, observed in enumerate(result.value_history[name]):
            expected = cls.value_at(h)
            if expected is None:
                break
            if any(s.startswith("$k") for s in expected.free_symbols()):
                break
            try:
                predicted = expected.evaluate(env)
            except ExprError:
                break
            assert predicted == observed, (
                f"{source}\n{name} classified {cls.describe()}: "
                f"h={h} predicted {predicted} observed {observed}"
            )


@settings(max_examples=80, deadline=None)
@given(nested_programs())
def test_inner_exit_values_match_execution(source):
    """Every computable exit value of the inner loop must equal the actual
    value after the loop, on every outer iteration that runs it.

    We verify through the *outer* classifications (which are built on the
    exit values): checked above.  Here we additionally check the inner trip
    count against the header visit counts when it is constant."""
    program = analyze(source)
    trip = program.result.trip_count("L2") if "L2" in program.result.loops else None
    if trip is None:
        return
    constant = trip.constant()
    if constant is None or not trip.exact:
        return
    result = Interpreter(program.ssa, record_history=True).run({})
    header_phis = program.ssa.block("L2").phis()
    if not header_phis:
        return
    visits = len(result.value_history.get(header_phis[0].result, []))
    outer_trip = program.result.trip_count("L1").constant()
    if outer_trip is None:
        return
    # the inner header runs (tc_inner + 1) times per outer iteration
    assert visits == outer_trip * (constant + 1), source
