"""Soundness oracle for the value-range analysis.

Every interval :func:`repro.ranges.compute_ranges` predicts must contain
every value the interpreter actually observes for that name -- for random
loop bodies and for parameterized programs driven with arguments drawn
from their ``assume`` ranges.  The analysis may be *imprecise* (wider is
always allowed, the full interval trivially so) but never *wrong*.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir.interp import Interpreter, InterpreterError
from repro.pipeline import analyze

VARS = ["a", "b", "c", "d"]
FUEL = 200_000


def assert_history_within_ranges(program, args):
    """Run the SSA function and check every observed value's interval."""
    info = program.result.ranges
    assert info is not None
    try:
        run = Interpreter(program.ssa, fuel=FUEL, record_history=True).run(args)
    except InterpreterError:
        return  # e.g. out of fuel: nothing observed, nothing to check
    for name, values in run.value_history.items():
        interval = info.range_of(name)
        for value in values:
            assert interval.contains(value), (
                f"{name} observed {value} outside predicted {interval}\n"
                f"args={args}\nhistory={values}"
            )
    for param, value in (args or {}).items():
        assert info.range_of(param).contains(value)


@st.composite
def statements(draw):
    """One random loop-body statement over VARS."""
    kind = draw(
        st.sampled_from(
            ["inc", "dec", "affine", "copy", "swapstep", "mulstep", "condinc"]
        )
    )
    target = draw(st.sampled_from(VARS))
    source = draw(st.sampled_from(VARS))
    const = draw(st.integers(min_value=-3, max_value=3))
    if kind == "inc":
        return f"{target} = {target} + {abs(const)}"
    if kind == "dec":
        return f"{target} = {target} - {abs(const)}"
    if kind == "affine":
        return f"{target} = {source} + {const}"
    if kind == "copy":
        return f"{target} = {source}"
    if kind == "swapstep":
        return f"{target} = {3 + abs(const)} - {target}"
    if kind == "mulstep":
        return f"{target} = {target} * {abs(const) % 3 + 1} + {abs(const)}"
    if kind == "condinc":
        return (
            f"if i % 3 == {abs(const) % 3} then\n"
            f"    {target} = {target} + {abs(const)}\n"
            f"  endif"
        )
    raise AssertionError(kind)


@st.composite
def loop_programs(draw):
    inits = [f"{v} = {draw(st.integers(min_value=-4, max_value=4))}" for v in VARS]
    body = [f"  {draw(statements())}" for _ in range(draw(st.integers(1, 5)))]
    trips = draw(st.integers(min_value=0, max_value=9))
    lines = inits + [f"L1: for i = 1 to {trips} do"] + body + ["endfor"]
    return "\n".join(lines)


@settings(max_examples=80, deadline=None)
@given(loop_programs())
def test_predicted_ranges_contain_every_observed_value(source):
    program = analyze(source, ranges=True)
    assert_history_within_ranges(program, {})


@st.composite
def assumed_programs(draw):
    """A parameterized loop whose trip count is bounded by ``assume``."""
    lo = draw(st.integers(min_value=-2, max_value=3))
    hi = lo + draw(st.integers(min_value=0, max_value=8))
    body = [f"  {draw(statements())}" for _ in range(draw(st.integers(1, 3)))]
    lines = (
        [f"assume n >= {lo}", f"assume n <= {hi}"]
        + [f"{v} = {draw(st.integers(min_value=-4, max_value=4))}" for v in VARS]
        + ["L1: for i = 1 to n do"]
        + body
        + ["endfor"]
    )
    n = draw(st.integers(min_value=lo, max_value=hi))
    return "\n".join(lines), n


@settings(max_examples=80, deadline=None)
@given(assumed_programs())
def test_assumed_ranges_sound_for_conforming_arguments(case):
    source, n = case
    program = analyze(source, ranges=True)
    assert_history_within_ranges(program, {"n": n})


def test_examples_corpus_is_sound():
    """Every embedded example program passes the oracle on fixed samples."""
    import os

    from repro.diagnostics.driver import collect_targets

    examples = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
    for target in collect_targets([examples]):
        program = analyze(target.source, ranges=True)
        params = program.ssa.params
        for seed in (1, 3, 7):
            args = {}
            for param in params:
                interval = program.result.ranges.range_of(param)
                value = seed
                lo, hi = interval.int_lower(), interval.int_upper()
                if lo is not None and value < lo:
                    value = lo
                if hi is not None and value > hi:
                    value = hi
                args[param] = value
            assert_history_within_ranges(program, args)
