"""Property tests on the compilation substrate itself.

* SSA construction and destruction preserve behaviour on random programs.
* The textual IR printer/parser round-trips behaviour.
* SCCP + simplification + copy propagation preserve behaviour.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.frontend.source import compile_source
from repro.ir.clone import clone_function
from repro.ir.interp import Interpreter
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.scalar.copyprop import propagate_copies
from repro.scalar.sccp import run_sccp
from repro.scalar.simplify import simplify_instructions
from repro.ssa.construct import construct_ssa
from repro.ssa.destruct import destruct_ssa

VARS = ["a", "b", "c"]


@st.composite
def programs(draw):
    lines = [f"{v} = {draw(st.integers(-3, 3))}" for v in VARS]
    n1 = draw(st.integers(0, 5))
    lines.append(f"L1: for i = 1 to {n1} do")
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["arith", "swap", "cond", "store"]))
        t = draw(st.sampled_from(VARS))
        s = draw(st.sampled_from(VARS))
        c = draw(st.integers(-2, 3))
        if kind == "arith":
            op = draw(st.sampled_from(["+", "-", "*"]))
            lines.append(f"  {t} = {s} {op} {c}")
        elif kind == "swap":
            lines.append(f"  t0 = {t}")
            lines.append(f"  {t} = {s}")
            lines.append(f"  {s} = t0")
        elif kind == "cond":
            lines.append(f"  if {s} > {c} then")
            lines.append(f"    {t} = {t} + 1")
            lines.append("  else")
            lines.append(f"    {t} = {t} - 1")
            lines.append("  endif")
        else:
            lines.append(f"  A[i] = {t}")
    lines.append("endfor")
    lines.append(f"return a * 100 + b * 10 + c")
    return "\n".join(lines)


def observe(function):
    result = Interpreter(function).run({})
    return result.return_value, result.arrays


@settings(max_examples=80, deadline=None)
@given(programs())
def test_ssa_construct_destruct_roundtrip(source):
    named = compile_source(source)
    expected = observe(named)

    ssa = clone_function(named)
    construct_ssa(ssa)
    assert observe(ssa) == expected

    destruct_ssa(ssa)
    assert observe(ssa) == expected


@settings(max_examples=60, deadline=None)
@given(programs())
def test_printer_parser_roundtrip(source):
    named = compile_source(source)
    expected = observe(named)
    reparsed = parse_function(print_function(named))
    assert observe(reparsed) == expected
    # idempotent printing
    assert print_function(reparsed) == print_function(named)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_scalar_opts_preserve_behaviour(source):
    named = compile_source(source)
    expected = observe(named)
    ssa = clone_function(named)
    construct_ssa(ssa)
    for _ in range(3):
        run_sccp(ssa)
        changed = simplify_instructions(ssa)
        changed += propagate_copies(ssa)
        if not changed:
            break
    assert observe(ssa) == expected


@settings(max_examples=50, deadline=None)
@given(programs())
def test_full_unrolling_preserves_behaviour(source):
    """Unrolling is the litmus test for trip counts: tc copies of the body
    must reproduce the loop exactly."""
    from repro.transforms import fully_unroll

    named = compile_source(source)
    expected = observe(named)
    count = fully_unroll(named, "L1", max_trips=8)
    if count is None:
        return
    assert observe(named) == expected
