"""Functions the frontend must *degrade*, never crash on.

Part of the committed real-Python mini-corpus (see ``kernels.py``).
Each function here trips a different ``PYF4xx`` code; the CI gate
(``--fail-on error``) tolerates them all -- degradations are warnings,
not defects.  The acceptance test pins the exact codes.
"""


def uses_strings(name):
    # PYF402: string literal (and concatenation) have no int lowering
    return name + "!"


def uses_dict(table, key):
    # PYF402: method call -- only len() and range() are modeled
    return table.get(key, 0)


def tuple_swap(a, b):
    # PYF401: tuple assignment target
    a, b = b, a
    return a


def list_builder(n):
    # PYF404: a local list is created, not a parameter
    out = []
    for i in range(n):
        out.append(i)
    return len(out)


def reads_loop_var(n):
    # PYF405: i is read after its loop; CPython keeps the last yielded
    # value while the counted lowering overshoots -- so it degrades
    total = 0
    for i in range(n):
        total += i
    return i + total


def keyword_only(*, flag):
    # PYF403: keyword-only parameters are not modeled
    return flag


def with_docstring_and_try(path):
    """PYF401: try/except has no IR shape."""
    try:
        return path
    except Exception:
        return 0


def float_math(x):
    # PYF402: float literal
    return x * 0.5


def comprehension(n):
    # PYF402: comprehensions are not modeled
    return sum(i * i for i in range(n))
