"""Array kernels: the DOALL-vs-serial bread and butter.

Part of the committed real-Python mini-corpus ``repro pylint`` runs in
CI (with ``--fail-on error``).  Every function here is ordinary CPython
-- the differential oracle executes them with ``exec`` against the IR
interpreter on random inputs.
"""


def scale(xs, factor):
    """Independent elementwise update: provably DOALL."""
    for i in range(len(xs)):
        xs[i] = xs[i] * factor
    return 0


def saxpy(xs, ys, a, n):
    assert n >= 0
    for i in range(n):
        xs[i] = a * xs[i] + ys[i]
    return 0


def prefix_sum(xs):
    """Loop-carried recurrence: serial, blocked by a carried dependence."""
    for i in range(1, len(xs)):
        xs[i] = xs[i] + xs[i - 1]
    return 0


def dot(xs, ys, n):
    assert n >= 0
    total = 0
    for i in range(n):
        total += xs[i] * ys[i]
    return total


def sum_of_squares(n):
    """The classic polynomial induction: total is degree-2 in i."""
    total = 0
    for i in range(n):
        total += i * i
    return total


def triangular(n):
    total = 0
    for i in range(n):
        total += i
    return total


def reverse_copy(xs, ys):
    n = len(xs)
    for i in range(n):
        ys[i] = xs[n - 1 - i]
    return 0


def count_positive(xs):
    count = 0
    for i in range(len(xs)):
        if xs[i] > 0:
            count += 1
    return count
