"""Integer numerics: floor division, modular walks, assert-driven bounds.

Part of the committed real-Python mini-corpus (see ``kernels.py``).
"""


def digits_sum(n):
    assert n >= 0
    total = 0
    while n > 0:
        total += n % 10
        n = n // 10
    return total


def gcd(a, b):
    assert a >= 0
    assert b >= 0
    while b != 0:
        remainder = a % b
        a = b
        b = remainder
    return a


def average_step(xs, step):
    """The asserts bound the divisor to [-3, 3] -- a range that still
    contains zero, which the RNG603 checker flags as a possible
    division by zero (a warning CI tolerates -- and a real hazard)."""
    assert step >= -3
    assert step <= 3
    total = 0
    for i in range(len(xs)):
        total += xs[i] // step
    return total


def halving_steps(n):
    assert n >= 1
    steps = 0
    while n > 1:
        n = n // 2
        steps += 1
    return steps


def horner(xs, x):
    acc = 0
    for i in range(len(xs)):
        acc = acc * x + xs[i]
    return acc


def last_element(xs):
    if len(xs) > 0:
        return xs[-1]
    return 0


def bounded_fill(xs, k):
    assert k >= 0
    assert k <= 8
    for i in range(k):
        xs[i] = i * 2
    return k


def alternating_sum(xs):
    total = 0
    sign = 1
    for i in range(len(xs)):
        total += sign * xs[i]
        sign = 0 - sign
    return total
