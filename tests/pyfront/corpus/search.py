"""Search and scan loops: while-shapes, branch-dependent updates.

Part of the committed real-Python mini-corpus (see ``kernels.py``).
"""


def linear_search(xs, needle):
    for i in range(len(xs)):
        if xs[i] == needle:
            return i
    return -1


def binary_search(xs, needle):
    lo = 0
    hi = len(xs)
    while lo < hi:
        mid = (lo + hi) // 2
        if xs[mid] < needle:
            lo = mid + 1
        else:
            hi = mid
    return lo


def weighted_tally(n):
    """Branch-dependent: total advances by 2 or by 5 depending on path."""
    total = 0
    for i in range(n):
        if i % 3 == 0:
            total += 2
        else:
            total += 5
    return total


def first_gap(xs):
    previous = 0
    for i in range(len(xs)):
        if xs[i] - previous > 1:
            return i
        previous = xs[i]
    return -1


def clamp_all(xs, lo, hi):
    for i in range(len(xs)):
        if xs[i] < lo:
            xs[i] = lo
        elif xs[i] > hi:
            xs[i] = hi
    return 0


def count_runs(xs):
    runs = 0
    i = 0
    n = len(xs)
    while i < n:
        j = i + 1
        while j < n and xs[j] == xs[i]:
            j += 1
        runs += 1
        i = j
    return runs
