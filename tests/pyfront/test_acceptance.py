"""PR acceptance: corpus-scale ingestion of real Python, zero crashes.

``pylint_paths`` is pointed at the committed mini-corpus *and* at this
repository's own source tree (``src/repro``) -- a thousand-plus real
CPython functions full of constructs the frontend does not model.  The
bar: every function either lowers or degrades with a PYF4xx record, no
exception ever escapes, and the corpus demonstrates the paper's
classification taxonomy on real code.
"""

import os

import pytest

from repro.diagnostics import Severity
from repro.pyfront import pylint_paths

HERE = os.path.dirname(__file__)
CORPUS = os.path.join(HERE, "corpus")
SRC = os.path.join(HERE, os.pardir, os.pardir, "src", "repro")


@pytest.fixture(scope="module")
def sweep():
    # any raised exception fails the fixture -- that *is* the crash test
    return pylint_paths([CORPUS, SRC])


def test_ingests_at_least_100_real_functions(sweep):
    assert sweep.functions >= 100
    assert sweep.lowered + sweep.degraded == sweep.functions


def test_every_degraded_function_left_a_pyf_record(sweep):
    degraded = [o for o in sweep.outcomes if not o.ok]
    assert len(degraded) == sweep.degraded
    origins_with_pyf = {
        d.origin.rsplit(":", 1)[0]
        for d in sweep.findings
        if d.code.startswith("PYF")
    }
    files_with_degradation = {o.origin.rsplit(":", 1)[0] for o in degraded}
    assert files_with_degradation <= origins_with_pyf


def test_own_source_tree_never_gates_ci(sweep):
    # src/repro and the corpus must stay clean of ERROR-severity findings,
    # because CI runs `repro pylint ... --fail-on error` over exactly this set
    errors = [d for d in sweep.findings if d.severity >= Severity.ERROR]
    assert errors == []


def _all_classes(sweep):
    return {
        described
        for outcome in sweep.outcomes
        for row in outcome.loops
        for described in row["classes"].values()
    }


def test_corpus_exhibits_linear_induction_variables(sweep):
    assert any(c.startswith("(L") and c.count(",") == 2 for c in _all_classes(sweep))


def test_corpus_exhibits_polynomial_induction(sweep):
    # degree >= 2 closed forms print with >= 4 tuple positions
    assert any(c.startswith("(L") and c.count(",") >= 3 for c in _all_classes(sweep))


def test_corpus_exhibits_branch_dependent_variables(sweep):
    assert any(c.startswith("branch-dependent(") for c in _all_classes(sweep))


def test_corpus_exhibits_periodic_variables(sweep):
    assert any(c.startswith("periodic(") for c in _all_classes(sweep))


def test_doall_and_serial_verdicts_on_real_code(sweep):
    verdicts = {row["parallel"] for o in sweep.outcomes for row in o.loops}
    assert True in verdicts and False in verdicts


def test_provable_oob_is_an_error_finding(tmp_path):
    # RNG601 is ERROR severity, so the demo lives here, not in the corpus
    path = tmp_path / "oob.py"
    path.write_text(
        "def smash(a):\n"
        "    assert len(a) == 4\n"
        "    a[5] = 1\n"
        "    return 0\n"
    )
    result = pylint_paths([str(path)])
    rng601 = [d for d in result.findings if d.code == "RNG601"]
    assert rng601 and rng601[0].severity == Severity.ERROR


def test_hostile_inputs_degrade_without_exception(tmp_path):
    hostile = {
        "syntax.py": "def broken(:\n",
        "empty.py": "",
        "nul.py": "def f():\n    return '\\x00'\n",
        "deep.py": "def f(x):\n    return " + "(" * 40 + "x" + ")" * 40 + "\n",
        "unicode.py": "def f(x):\n    return x + '\u00e9\u4e2d\u6587'\n",
    }
    for name, source in hostile.items():
        (tmp_path / name).write_text(source, encoding="utf-8")
    result = pylint_paths([str(tmp_path)])
    assert result.files == len(hostile)
