"""The ``repro pylint`` CLI surface: formats, gating, artifacts, runlogs."""

import json
import os

from repro.cli import main

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")

CLEAN = """
def doubled(xs):
    for i in range(len(xs)):
        xs[i] = xs[i] * 2
    return 0
"""

DEGRADED = """
def stringy(s):
    return s + "!"
"""


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        assert main(["pylint", str(path)]) == 0

    def test_missing_path_exits_two(self, capsys):
        assert main(["pylint", "definitely/not/a/file.py"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_directory_without_python_exits_two(self, tmp_path, capsys):
        assert main(["pylint", str(tmp_path)]) == 2
        assert "no Python files found" in capsys.readouterr().err

    def test_fail_on_never_tolerates_warnings(self, tmp_path):
        path = tmp_path / "deg.py"
        path.write_text(DEGRADED)
        assert main(["pylint", str(path)]) == 0

    def test_fail_on_warning_gates_degradations(self, tmp_path):
        path = tmp_path / "deg.py"
        path.write_text(DEGRADED)
        assert main(["pylint", "--fail-on", "warning", str(path)]) == 1

    def test_fail_on_error_passes_warning_only_corpus(self):
        assert main(["pylint", "--fail-on", "error", CORPUS]) == 0

    def test_fail_on_error_catches_provable_oob(self, tmp_path):
        path = tmp_path / "oob.py"
        path.write_text(
            "def smash(a):\n"
            "    assert len(a) == 4\n"
            "    a[5] = 1\n"
            "    return 0\n"
        )
        assert main(["pylint", "--fail-on", "error", str(path)]) == 1

    def test_fail_on_note_is_strictest(self, tmp_path):
        path = tmp_path / "noted.py"
        # an unrecognized assert drops with a PYF407 note
        path.write_text("def f(a, b):\n    assert a < b\n    return a\n")
        assert main(["pylint", str(path)]) == 0
        assert main(["pylint", "--fail-on", "note", str(path)]) == 1


class TestOutput:
    def test_text_report_sections(self, capsys):
        main(["pylint", CORPUS])
        out = capsys.readouterr().out
        assert "== corpus ==" in out
        assert "== loops ==" in out
        assert "DOALL" in out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        main(["pylint", "--format", "json", str(path)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["functions"] == 1
        assert payload["lowered"] == 1

    def test_out_writes_json_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "findings.json"
        main(["pylint", CORPUS, "--out", str(artifact)])
        payload = json.loads(artifact.read_text())
        assert payload["degraded"] >= 9
        # text still goes to stdout alongside the artifact
        assert "== corpus ==" in capsys.readouterr().out

    def test_no_ranges_suppresses_rng_findings(self, capsys):
        numeric = os.path.join(CORPUS, "numeric.py")
        main(["pylint", "--no-ranges", numeric])
        assert "RNG603" not in capsys.readouterr().out
        main(["pylint", numeric])
        assert "RNG603" in capsys.readouterr().out


class TestRunlog:
    def test_runlog_store_written_and_readable(self, tmp_path, capsys):
        store = tmp_path / "runs"
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        assert main(["pylint", str(path), "--runlog", str(store)]) == 0
        capsys.readouterr()
        assert main(["stats", str(store), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "python" in out
