"""Graceful degradation: every unsupported construct gets a PYF4xx record."""

import textwrap

import pytest

from repro.pyfront.lower import compile_module


def degrade_codes(source, name=None):
    """Compile one function and return its (diag_code, code) pairs."""
    module = compile_module(textwrap.dedent(source), origin="deg.py")
    assert module.error is None
    table = {cf.qualname: cf for cf in module.functions}
    cf = table[name] if name else module.functions[0]
    assert not cf.ok
    assert cf.function is None
    return [(d.diag_code, d.code) for d in cf.degradations]


CASES = [
    # statements -> PYF401
    ("def f(x):\n    try:\n        return x\n    except Exception:\n        return 0\n", "PYF401"),
    ("def f(x):\n    with open(x):\n        pass\n    return 0\n", "PYF401"),
    ("def f(a, b):\n    a, b = b, a\n    return a\n", "PYF401"),
    ("def f(n):\n    for i in range(n):\n        pass\n    else:\n        return 1\n    return 0\n", "PYF401"),
    ("def f(n):\n    raise ValueError(n)\n", "PYF401"),
    ("def f(n):\n    del n\n    return 0\n", "PYF401"),
    ("def f(n):\n    import os\n    return n\n", "PYF401"),
    ("def f(n):\n    for i in range(0, n, n):\n        pass\n    return 0\n", "PYF401"),
    ("@staticmethod\ndef f(n):\n    return n\n", "PYF401"),
    ("def f(n):\n    break\n", "PYF401"),
    # expressions -> PYF402
    ("def f(x):\n    return x * 0.5\n", "PYF402"),
    ("def f(s):\n    return s + 'suffix'\n", "PYF402"),
    ("def f(t, k):\n    return t.get(k, 0)\n", "PYF402"),
    ("def f(n):\n    return [i for i in range(n)]\n", "PYF402"),
    ("def f(xs):\n    return xs[1:3]\n", "PYF402"),
    ("def f(x):\n    return undefined_global + x\n", "PYF402"),
    ("def f(x):\n    return x ** 2\n", "PYF402"),
    ("def f(n):\n    out = []\n    return n\n", "PYF402"),  # bare list literal
    # signatures -> PYF403
    ("def f(*args):\n    return 0\n", "PYF403"),
    ("def f(**kwargs):\n    return 0\n", "PYF403"),
    ("def f(*, flag):\n    return flag\n", "PYF403"),
    # type confusion -> PYF404
    ("def f(xs):\n    out = []\n    out[0] = 1\n    return xs[0]\n", "PYF404"),
    ("def f(xs):\n    xs = 3\n    return xs[0]\n", "PYF404"),
]


@pytest.mark.parametrize("source,expected", CASES)
def test_construct_degrades_with_expected_code(source, expected):
    codes = degrade_codes(source)
    assert expected in [diag for diag, _ in codes], codes


def test_loop_variable_reassigned_inside_loop():
    codes = degrade_codes(
        """
        def f(n):
            for i in range(n):
                i = 0
            return n
        """
    )
    assert ("PYF405", "loop-variable-reassigned") in codes


def test_loop_variable_read_after_loop():
    codes = degrade_codes(
        """
        def f(n):
            total = 0
            for i in range(n):
                total += i
            return i + total
        """
    )
    assert ("PYF405", "loop-variable-read-after-loop") in codes


def test_async_function_degrades():
    module = compile_module("async def f(n):\n    return n\n", origin="a.py")
    (cf,) = module.functions
    assert not cf.ok
    assert cf.degradations[0].diag_code == "PYF401"


def test_syntax_error_yields_module_record_not_exception():
    module = compile_module("def broken(:\n", origin="bad.py")
    assert module.error is not None
    assert module.error.diag_code == "PYF406"
    assert module.functions == []


def test_null_byte_source_never_raises():
    module = compile_module("def f():\n    return \x00\n", origin="nul.py")
    assert module.error is not None
    assert module.error.diag_code == "PYF406"


def test_validator_reports_all_problems_not_just_first():
    codes = degrade_codes(
        """
        def f(x):
            y = x * 0.5
            try:
                return y
            except Exception:
                return 0
        """
    )
    diags = {diag for diag, _ in codes}
    assert {"PYF401", "PYF402"} <= diags


def test_one_bad_function_does_not_poison_siblings():
    module = compile_module(
        textwrap.dedent(
            """
            def bad(x):
                return x + "oops"

            def good(x):
                return x + 1
            """
        ),
        origin="mix.py",
    )
    table = {cf.qualname: cf for cf in module.functions}
    assert not table["bad"].ok
    assert table["good"].ok


def test_degradation_records_carry_scope_and_phase():
    module = compile_module("def f(x):\n    return x * 0.5\n", origin="s.py")
    (cf,) = module.functions
    record = cf.degradations[0]
    assert record.phase == "pyfront.lower"
    assert record.action == "skipped"
    assert "f" in (record.scope or "")


@pytest.mark.parametrize(
    "source",
    [
        "lambda: 0",
        "x = 1\n",
        "class C:\n    pass\n",
        "",
        "# just a comment\n",
    ],
)
def test_non_function_modules_compile_to_empty(source):
    module = compile_module(source, origin="misc.py")
    assert module.error is None
    assert module.functions == []
