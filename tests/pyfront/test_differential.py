"""Differential oracle: lowered IR vs CPython on random inputs.

Every corpus function that lowers cleanly is executed twice per random
input -- once by CPython ``exec`` of its original source, once by the IR
interpreter on the compiled function -- and the results (return value and
final list contents) must be identical.  Inputs on which CPython itself
raises (failed precondition asserts, index errors, division by zero) are
discarded: both sides are out of contract there.

Negative *constant* indices in source (``xs[-1]``) are rewritten by the
lowerer to length-relative form and compare cleanly.  Computed-negative
indices would diverge (Python wraps, the IR does not), but the corpus
only ever indexes with loop counters and asserted-nonnegative scalars.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.ir.interp import Interpreter, InterpreterError
from repro.pyfront.lower import LEN_SUFFIX, compile_module

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


def _compiled_corpus():
    functions = []
    for filename in ("kernels.py", "search.py", "numeric.py"):
        path = os.path.join(CORPUS, filename)
        with open(path, "r", encoding="utf-8") as handle:
            module = compile_module(handle.read(), origin=path)
        functions.extend(cf for cf in module.functions if cf.ok)
    return functions


COMPILED = _compiled_corpus()


def _int_strategy(cf, name):
    """Bound the draw by the function's own asserted preconditions, so
    precondition-heavy corpus functions don't starve on assume()."""
    lo, hi = -6, 8
    for target, relation, bound in cf.function.assumptions:
        if target != name:
            continue
        if relation == ">=":
            lo = max(lo, bound)
        elif relation == ">":
            lo = max(lo, bound + 1)
        elif relation == "<=":
            hi = min(hi, bound)
        elif relation == "<":
            hi = min(hi, bound - 1)
    return st.integers(lo, max(lo, hi))


def _python_reference(cf, ints, lists):
    env = {"__builtins__": {"range": range, "len": len}}
    exec(cf.source, env)
    fn = env[cf.qualname]
    kwargs = dict(ints)
    copies = {name: list(values) for name, values in lists.items()}
    kwargs.update(copies)
    try:
        returned = fn(**kwargs)
    except Exception:
        return None  # out of contract -- caller discards the input
    return {"return": returned, "lists": copies}


def _ir_run(cf, ints, lists):
    scalars = dict(ints)
    arrays = {}
    for name, values in lists.items():
        scalars[name + LEN_SUFFIX] = len(values)
        arrays[name] = {(i,): v for i, v in enumerate(values)}
    result = Interpreter(cf.function).run(scalars, arrays)
    final = {
        name: [result.arrays[name].get((i,), values[i]) for i in range(len(values))]
        for name, values in lists.items()
    }
    return {"return": result.return_value, "lists": final}


def _normalize(value):
    if isinstance(value, bool):
        return int(value)
    return value


@pytest.mark.parametrize("cf", COMPILED, ids=lambda cf: cf.qualname)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)
@given(data=st.data())
def test_ir_matches_cpython(cf, data):
    ints = {}
    lists = {}
    for name, kind in cf.params:
        if kind == "list":
            lists[name] = data.draw(
                st.lists(st.integers(-8, 12), max_size=6), label=name
            )
        else:
            ints[name] = data.draw(_int_strategy(cf, name), label=name)

    expected = _python_reference(cf, ints, lists)
    assume(expected is not None)

    try:
        actual = _ir_run(cf, ints, lists)
    except InterpreterError as err:  # pragma: no cover - a real divergence
        pytest.fail(
            f"{cf.qualname}: CPython succeeded but the IR raised {err} "
            f"on ints={ints} lists={lists}"
        )

    assert _normalize(actual["return"]) == _normalize(expected["return"]), (
        cf.qualname,
        ints,
        lists,
    )
    assert actual["lists"] == expected["lists"], (cf.qualname, ints, lists)


def test_corpus_actually_exercises_the_oracle():
    # guard against silently compiling nothing (e.g. a corpus rename)
    assert len(COMPILED) >= 20
    kinds = {kind for cf in COMPILED for _, kind in cf.params}
    assert kinds == {"int", "list"}
