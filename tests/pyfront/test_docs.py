"""docs/PYTHON.md must stay in lockstep with the frontend's surface."""

import os
import re

from repro.diagnostics import all_codes
from repro.pyfront import SUPPORTED

DOCS = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "PYTHON.md")


def read_docs():
    with open(DOCS, encoding="utf-8") as handle:
        return handle.read()


def test_every_supported_construct_is_documented():
    text = read_docs()
    missing = [key for key in SUPPORTED if f"| `{key}` |" not in text]
    assert not missing, f"constructs missing from docs/PYTHON.md: {missing}"


def test_no_phantom_constructs_documented():
    text = read_docs()
    documented = re.findall(r"^\| `([a-z-]+)` \|", text, re.MULTILINE)
    unknown = [key for key in documented if key not in SUPPORTED]
    assert not unknown, f"docs table mentions unknown constructs: {unknown}"


def test_every_pyf_code_is_documented():
    text = read_docs()
    pyf = [code for code in all_codes() if code.startswith("PYF")]
    assert pyf, "PYF family missing from the registry"
    missing = [code for code in pyf if code not in text]
    assert not missing, f"PYF codes missing from docs/PYTHON.md: {missing}"


def test_no_phantom_pyf_codes_documented():
    text = read_docs()
    documented = set(re.findall(r"PYF\d{3}", text))
    unknown = documented - set(all_codes())
    assert not unknown, f"docs mention unregistered PYF codes: {unknown}"


def test_cross_links_exist():
    text = read_docs()
    for target in ("LANGUAGE.md", "DIAGNOSTICS.md", "SERVICE.md", "RANGES.md"):
        assert target in text

    here = os.path.dirname(DOCS)
    for source in (
        os.path.join(here, "LANGUAGE.md"),
        os.path.join(here, "DIAGNOSTICS.md"),
        os.path.join(here, os.pardir, "README.md"),
    ):
        with open(source, encoding="utf-8") as handle:
            assert "PYTHON.md" in handle.read(), f"{source} must link PYTHON.md"
