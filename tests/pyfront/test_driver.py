"""Corpus driver: pylint_paths end-to-end over the committed mini-corpus."""

import json
import os

import pytest

from repro.diagnostics import DiagnosticCollector, Severity
from repro.obs import runlog
from repro.obs.aggregate import aggregate, load_records, validate_record
from repro.pyfront import pylint_paths, render_corpus_json, render_corpus_text

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


@pytest.fixture(scope="module")
def corpus_result():
    return pylint_paths([CORPUS])


def test_corpus_counts(corpus_result):
    assert corpus_result.files == 4
    assert corpus_result.functions == corpus_result.lowered + corpus_result.degraded
    assert corpus_result.lowered >= 20
    # degrade.py exists to fail -- every function in it must degrade
    assert corpus_result.degraded >= 9


def test_every_outcome_has_origin_and_qualname(corpus_result):
    for outcome in corpus_result.outcomes:
        assert outcome.origin.startswith(CORPUS)
        assert outcome.qualname


def test_no_errors_from_committed_corpus(corpus_result):
    errors = [
        d
        for d in corpus_result.findings
        if d.severity >= Severity.ERROR
    ]
    assert errors == []


def test_degradations_surface_as_pyf_warnings(corpus_result):
    pyf = [d for d in corpus_result.findings if d.code.startswith("PYF")]
    assert pyf
    for diag in pyf:
        assert diag.origin and ".py:" in diag.origin


def test_divisor_hazard_found_in_numeric_corpus(corpus_result):
    rng603 = [d for d in corpus_result.findings if d.code == "RNG603"]
    assert any("average_step" in (d.function or "") for d in rng603)


def test_parallel_and_serial_loops_both_present(corpus_result):
    verdicts = {
        (outcome.qualname, row["parallel"])
        for outcome in corpus_result.outcomes
        for row in outcome.loops
    }
    parallel = {name for name, ok in verdicts if ok}
    serial = {name for name, ok in verdicts if not ok}
    assert "scale" in parallel
    assert "prefix_sum" in serial


def test_serial_loops_carry_blocker_reasons(corpus_result):
    for outcome in corpus_result.outcomes:
        if outcome.qualname != "prefix_sum":
            continue
        for row in outcome.loops:
            if not row["parallel"]:
                assert row["blocked_by"], row
                return
    pytest.fail("prefix_sum serial loop not found")


def test_render_text_mentions_counts_and_verdicts(corpus_result):
    text = render_corpus_text(corpus_result)
    assert "== corpus ==" in text
    assert "DOALL" in text
    assert "serial[" in text


def test_render_json_round_trips(corpus_result):
    payload = json.loads(render_corpus_json(corpus_result))
    assert payload["functions"] == corpus_result.functions
    assert payload["lowered"] == corpus_result.lowered
    assert payload["degraded"] == corpus_result.degraded
    assert isinstance(payload["findings"], list)


def test_missing_path_raises_oserror():
    with pytest.raises(OSError):
        pylint_paths([os.path.join(CORPUS, "no_such_file.py")])


def test_shared_collector_is_used():
    out = DiagnosticCollector()
    result = pylint_paths([CORPUS], collector=out)
    assert result.collector is out
    assert out.sorted()


def test_runlog_records_tag_python_and_validate(tmp_path):
    store = tmp_path / "runs"
    with runlog.recording(str(store)):
        pylint_paths([CORPUS])
    records = list(load_records(str(store)))
    assert records
    for record in records:
        assert validate_record(record) is None, validate_record(record)
        assert record["source_lang"] == "python"


def test_aggregate_reports_python_language(tmp_path):
    store = tmp_path / "runs"
    with runlog.recording(str(store)):
        pylint_paths([CORPUS])
    stats = aggregate(load_records(str(store)))
    assert stats["languages"].get("python", 0) > 0


def test_degraded_functions_get_skip_records(tmp_path):
    store = tmp_path / "runs"
    with runlog.recording(str(store)):
        pylint_paths([os.path.join(CORPUS, "degrade.py")])
    records = list(load_records(str(store)))
    # every degraded function still leaves a schema-valid trace
    assert len(records) >= 9
    for record in records:
        assert validate_record(record) is None
        assert record["degradations"]
