"""Lowering correctness: real Python functions into named IR."""

import textwrap

import pytest

from repro.ir.interp import Interpreter, InterpreterError
from repro.pyfront.lower import LEN_SUFFIX, compile_module


def compile_one(source, name=None):
    module = compile_module(textwrap.dedent(source), origin="test.py")
    table = {cf.qualname: cf for cf in module.functions}
    cf = table[name] if name else module.functions[0]
    assert cf.ok, [d.message for d in cf.degradations]
    return cf


def run(cf, args=None, lists=None):
    """Execute a compiled function with Python-style list arguments."""
    scalars = dict(args or {})
    arrays = {}
    for array, values in (lists or {}).items():
        scalars[array + LEN_SUFFIX] = len(values)
        arrays[array] = {(i,): v for i, v in enumerate(values)}
    result = Interpreter(cf.function).run(scalars, arrays)
    return result


class TestStraightLine:
    def test_arithmetic_and_return(self):
        cf = compile_one(
            """
            def f(a, b):
                c = a * 3 - b
                return c + 2
            """
        )
        assert run(cf, {"a": 5, "b": 4}).return_value == 13

    def test_bare_and_none_return(self):
        cf = compile_one(
            """
            def f(a):
                if a > 0:
                    return
                return None
            """
        )
        assert run(cf, {"a": 1}).return_value is None
        assert run(cf, {"a": -1}).return_value is None

    def test_multi_target_assignment(self):
        cf = compile_one(
            """
            def f(n):
                a = b = n + 1
                return a + b
            """
        )
        assert run(cf, {"n": 3}).return_value == 8

    def test_bool_literals_are_ints(self):
        cf = compile_one(
            """
            def f():
                x = True
                return x + True + False
            """
        )
        assert run(cf).return_value == 2


class TestFloorDivision:
    """CPython floors; the IR truncates -- the expansion must bridge."""

    @pytest.mark.parametrize("a", range(-7, 8))
    @pytest.mark.parametrize("b", [-3, -2, -1, 1, 2, 3])
    def test_floordiv_matches_cpython(self, a, b):
        cf = compile_one("def f(a, b):\n    return a // b\n")
        assert run(cf, {"a": a, "b": b}).return_value == a // b

    @pytest.mark.parametrize("a", range(-7, 8))
    @pytest.mark.parametrize("b", [-3, -2, -1, 1, 2, 3])
    def test_mod_matches_cpython(self, a, b):
        cf = compile_one("def f(a, b):\n    return a % b\n")
        assert run(cf, {"a": a, "b": b}).return_value == a % b

    def test_division_by_zero_raises_like_cpython(self):
        cf = compile_one("def f(a, b):\n    return a // b\n")
        with pytest.raises(InterpreterError):
            run(cf, {"a": 1, "b": 0})

    def test_augmented_floordiv(self):
        cf = compile_one(
            """
            def f(a, b):
                a //= b
                return a
            """
        )
        assert run(cf, {"a": -7, "b": 2}).return_value == -4


class TestLoops:
    def test_range_one_arg(self):
        cf = compile_one(
            """
            def f(n):
                s = 0
                for i in range(n):
                    s += i
                return s
            """
        )
        assert run(cf, {"n": 5}).return_value == 10
        assert run(cf, {"n": 0}).return_value == 0
        assert run(cf, {"n": -3}).return_value == 0

    def test_range_three_args_negative_step(self):
        cf = compile_one(
            """
            def f(n):
                s = 0
                for i in range(n, 0, -2):
                    s += i
                return s
            """
        )
        assert run(cf, {"n": 7}).return_value == 7 + 5 + 3 + 1

    def test_range_stop_evaluated_once(self):
        # CPython evaluates range(n) before the loop; mutating n inside
        # must not change the trip count
        cf = compile_one(
            """
            def f(n):
                count = 0
                for i in range(n):
                    n = 0
                    count += 1
                return count
            """
        )
        assert run(cf, {"n": 4}).return_value == 4

    def test_for_over_list_binds_elements(self):
        cf = compile_one(
            """
            def f(xs):
                total = 0
                for x in xs:
                    total += x
                return total
            """
        )
        assert run(cf, lists={"xs": [3, -1, 4]}).return_value == 6

    def test_while_with_break_continue(self):
        cf = compile_one(
            """
            def f(n):
                total = 0
                i = 0
                while True:
                    i += 1
                    if i > 100:
                        break
                    if i % 2 == 0:
                        continue
                    if i > n:
                        break
                    total += i
                return total
            """
        )
        assert run(cf, {"n": 7}).return_value == 1 + 3 + 5 + 7

    def test_nested_loops(self):
        cf = compile_one(
            """
            def f(n):
                total = 0
                for i in range(n):
                    for j in range(i):
                        total += 1
                return total
            """
        )
        assert run(cf, {"n": 5}).return_value == 0 + 1 + 2 + 3 + 4

    def test_sequential_loop_variable_reuse_is_allowed(self):
        cf = compile_one(
            """
            def f(n):
                s = 0
                for i in range(n):
                    s += i
                for i in range(n):
                    s += i
                return s
            """
        )
        assert run(cf, {"n": 4}).return_value == 12


class TestConditions:
    def test_chained_comparison_short_circuits(self):
        cf = compile_one(
            """
            def f(a, b, c):
                if a < b < c:
                    return 1
                return 0
            """
        )
        assert run(cf, {"a": 1, "b": 2, "c": 3}).return_value == 1
        assert run(cf, {"a": 1, "b": 5, "c": 3}).return_value == 0
        assert run(cf, {"a": 9, "b": 2, "c": 3}).return_value == 0

    def test_and_or_not(self):
        cf = compile_one(
            """
            def f(a, b):
                if a > 0 and not (b > 0 or a > 10):
                    return 1
                return 0
            """
        )
        assert run(cf, {"a": 5, "b": -1}).return_value == 1
        assert run(cf, {"a": 5, "b": 1}).return_value == 0
        assert run(cf, {"a": 11, "b": -1}).return_value == 0

    def test_integer_truthiness(self):
        cf = compile_one(
            """
            def f(a):
                if a:
                    return 1
                return 0
            """
        )
        assert run(cf, {"a": -7}).return_value == 1
        assert run(cf, {"a": 0}).return_value == 0

    def test_comparison_as_value(self):
        cf = compile_one(
            """
            def f(a, b):
                return (a < b) + (a == b)
            """
        )
        assert run(cf, {"a": 1, "b": 2}).return_value == 1
        assert run(cf, {"a": 2, "b": 2}).return_value == 1
        assert run(cf, {"a": 3, "b": 2}).return_value == 0


class TestLists:
    def test_subscript_store_and_load(self):
        cf = compile_one(
            """
            def f(xs):
                for i in range(len(xs)):
                    xs[i] = xs[i] * 2 + 1
                return 0
            """
        )
        result = run(cf, lists={"xs": [1, 2, 3]})
        assert [result.arrays["xs"][(i,)] for i in range(3)] == [3, 5, 7]

    def test_negative_constant_index(self):
        cf = compile_one(
            """
            def f(xs):
                return xs[-1] + xs[-2]
            """
        )
        assert run(cf, lists={"xs": [10, 20, 30]}).return_value == 50

    def test_augmented_subscript(self):
        cf = compile_one(
            """
            def f(xs, k):
                xs[k] += 5
                return xs[k]
            """
        )
        result = run(cf, {"k": 1}, lists={"xs": [1, 2, 3]})
        assert result.return_value == 7
        assert result.arrays["xs"][(1,)] == 7

    def test_len_reads_length_parameter(self):
        cf = compile_one("def f(xs):\n    return len(xs)\n")
        assert f"xs{LEN_SUFFIX}" in cf.function.params
        assert run(cf, lists={"xs": [5, 6]}).return_value == 2


class TestAsserts:
    def test_scalar_assert_becomes_assumption(self):
        cf = compile_one(
            """
            def f(n):
                assert n >= 0
                return n
            """
        )
        assert ("n", ">=", 0) in cf.function.assumptions

    def test_flipped_assert_normalizes(self):
        cf = compile_one(
            """
            def f(n):
                assert 10 > n
                return n
            """
        )
        assert ("n", "<", 10) in cf.function.assumptions

    def test_len_equality_sets_concrete_extent(self):
        cf = compile_one(
            """
            def f(xs):
                assert len(xs) == 4
                return xs[0]
            """
        )
        assert cf.function.array_extents["xs"] == [4]

    def test_unrecognized_assert_drops_with_note(self):
        module = compile_module(
            "def f(a, b):\n    assert a < b\n    return a\n", origin="t.py"
        )
        (cf,) = module.functions
        assert cf.ok
        assert [d.diag_code for d in cf.degradations] == ["PYF407"]


class TestModuleStructure:
    def test_nested_and_method_qualnames(self):
        module = compile_module(
            textwrap.dedent(
                """
                class Outer:
                    def method(self, x):
                        return x

                def top(n):
                    def inner(m):
                        return m
                    return n
                """
            ),
            origin="q.py",
        )
        names = [cf.qualname for cf in module.functions]
        assert names == ["Outer.method", "top", "top.inner"]

    def test_origin_carries_line_numbers(self):
        module = compile_module("\n\ndef late(n):\n    return n\n", origin="x.py")
        assert module.functions[0].origin == "x.py:3"
