"""Runlog schema 2: the source_lang field and schema-1 compatibility.

The schema bump must not orphan existing stores: schema-1 records (which
predate ``source_lang``) stay readable, aggregate as DSL runs, and diff
cleanly against schema-2 stores.
"""

import json

from repro.cli import main
from repro.obs import runlog
from repro.obs.aggregate import (
    READABLE_SCHEMAS,
    aggregate,
    diff_stats,
    load_records,
    strict_problems,
    validate_record,
)
from repro.obs.runlog import RUNLOG_SCHEMA
from repro.pipeline import analyze

DSL = """
i = 0
L1: for i = 1 to n do
  A[i] = A[i] + 1
endfor
return i
"""


def schema1_record():
    """A record as the previous release wrote it: schema 1, no source_lang."""
    return {
        "schema": 1,
        "ts": 1700000000.0,
        "origin": "legacy.loop",
        "function": "legacy",
        "fingerprint": "f" * 16,
        "loops": [
            {
                "header": "L1",
                "depth": 1,
                "trip": None,
                "parallel": True,
                "blocked_by": [],
                "class_counts": {"InductionVariable": 1},
            }
        ],
        "classes": {"InductionVariable": 1},
        "parallel": {"doall": 1, "serial": 0, "undecided": 0},
        "blocked": {},
        "degradations": [],
        "ranges": None,
        "invariants": None,
    }


def write_store(path, records):
    path.mkdir(parents=True, exist_ok=True)
    target = path / "legacy.jsonl"
    with open(target, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


def test_schema_constants():
    assert RUNLOG_SCHEMA == 2
    assert READABLE_SCHEMAS == {1, 2}


def test_schema1_record_still_validates():
    assert validate_record(schema1_record()) is None


def test_unknown_schema_is_still_rejected():
    record = schema1_record()
    record["schema"] = RUNLOG_SCHEMA + 1
    problem = validate_record(record)
    assert problem is not None and "schema mismatch" in problem


def test_new_records_carry_source_lang(tmp_path):
    store = tmp_path / "runs"
    with runlog.recording(str(store)):
        analyze(DSL)
    (record,) = load_records(str(store))
    assert record["schema"] == RUNLOG_SCHEMA
    assert record["source_lang"] == "loop"


def test_source_lang_context_overrides(tmp_path):
    store = tmp_path / "runs"
    with runlog.recording(str(store)), runlog.source_lang("python"):
        analyze(DSL)
    (record,) = load_records(str(store))
    assert record["source_lang"] == "python"


def test_schema1_records_aggregate_as_dsl_runs(tmp_path):
    store = write_store(tmp_path / "legacy", [schema1_record()])
    stats = aggregate(load_records(store))
    assert stats["languages"] == {"loop": 1}


def test_mixed_store_passes_strict(tmp_path):
    store = tmp_path / "mixed"
    with runlog.recording(str(store)):
        analyze(DSL)
    write_store(store, [schema1_record()])
    records = load_records(str(store))
    assert len(records) == 2
    assert strict_problems(records) == []


def test_diff_against_schema1_store(tmp_path):
    old = write_store(tmp_path / "old", [schema1_record()])
    new = tmp_path / "new"
    with runlog.recording(str(new)), runlog.source_lang("python"):
        analyze(DSL)
    diff = diff_stats(aggregate(load_records(old)), aggregate(load_records(str(new))))
    assert diff  # shape sanity; rendering below is the readability bar


def test_stats_diff_cli_reads_schema1(tmp_path, capsys):
    old = write_store(tmp_path / "old", [schema1_record()])
    new = tmp_path / "new"
    with runlog.recording(str(new)):
        analyze(DSL)
    assert main(["stats", "--diff", old, str(new)]) == 0
    assert capsys.readouterr().out.strip()


def test_languages_line_renders(tmp_path, capsys):
    store = tmp_path / "runs"
    with runlog.recording(str(store)), runlog.source_lang("python"):
        analyze(DSL)
    assert main(["stats", str(store)]) == 0
    out = capsys.readouterr().out
    assert "source languages" in out
    assert "python" in out


def test_torn_write_recovery_still_green_on_schema2(tmp_path):
    store = tmp_path / "runs"
    with runlog.recording(str(store)):
        analyze(DSL)
    files = sorted((store).glob("*.jsonl"))
    assert files
    # simulate a crash mid-write: append half a record to the tail
    with open(files[0], "a", encoding="utf-8") as handle:
        handle.write('{"schema": 2, "truncat')
    records = load_records(str(store))
    assert strict_problems(records) == []
