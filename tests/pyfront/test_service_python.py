"""``language: "python"`` through the analysis service.

In-process ``run_job`` coverage for the python branch, plus a socket-level
check that the server validates the language option like any other
request field.
"""

import pytest

from repro.obs.aggregate import validate_record
from repro.resilience.retry import RetryPolicy
from repro.service import AnalysisServer, ServiceClient
from repro.service.worker import run_job

PY_GOOD = """\
def triangular(n):
    total = 0
    for i in range(n):
        total += i
    return total

def scale(xs, factor):
    for i in range(len(xs)):
        xs[i] = xs[i] * factor
    return 0
"""

PY_MIXED = PY_GOOD + """\

def stringy(s):
    return s + "!"
"""

PY_BROKEN = "def broken(:\n"


class TestRunJobPython:
    def test_python_module_builds_a_merged_record(self):
        response = run_job(
            {"id": 1, "source": PY_GOOD, "options": {"language": "python"}}
        )
        assert response["ok"], response
        record = response["record"]
        assert validate_record(record) is None
        assert record["source_lang"] == "python"
        assert record["functions"] == {"total": 2, "lowered": 2, "degraded": 0}
        assert record["loops"]
        assert response["degraded"] is False

    def test_degraded_functions_are_reported_not_fatal(self):
        response = run_job(
            {"id": 2, "source": PY_MIXED, "options": {"language": "python"}}
        )
        assert response["ok"]
        record = response["record"]
        assert record["functions"]["degraded"] == 1
        assert record["functions"]["lowered"] == 2
        assert any(
            d["diag_code"].startswith("PYF") for d in record["degradations"]
        )

    def test_syntax_error_is_a_python_syntax_error_failure(self):
        response = run_job(
            {"id": 3, "source": PY_BROKEN, "options": {"language": "python"}}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "python-syntax-error"

    def test_report_option_names_each_function(self):
        response = run_job(
            {
                "id": 4,
                "source": PY_GOOD,
                "options": {"language": "python", "report": True},
            }
        )
        assert "triangular" in response["report"]
        assert "scale" in response["report"]

    def test_default_language_still_parses_the_dsl(self):
        dsl = "i = 0\nL1: for i = 1 to n do\n  i = i + 0\nendfor\n"
        response = run_job({"id": 5, "source": dsl, "options": {}})
        assert response["ok"]
        assert response["record"]["source_lang"] == "loop"


@pytest.fixture(scope="class")
def served():
    server = AnalysisServer(
        pool_size=1,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.05),
    )
    host, port = server.start()
    try:
        yield host, port
    finally:
        server.stop(grace_s=5.0)


class TestServerLanguageOption:
    def test_python_analyze_over_the_wire(self, served):
        host, port = served
        with ServiceClient(host, port, timeout_s=30.0) as client:
            response = client.analyze(PY_GOOD, options={"language": "python"})
        assert response["status"] == "ok"
        (result,) = response["results"]
        assert result["record"]["source_lang"] == "python"

    def test_unknown_language_is_malformed(self, served):
        host, port = served
        with ServiceClient(host, port, timeout_s=30.0) as client:
            response = client.analyze(PY_GOOD, options={"language": "fortran"})
        assert response["status"] == "error"
        assert response["error"]["code"] == "malformed-request"
        assert "language" in response["error"]["message"]
