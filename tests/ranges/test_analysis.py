"""The value-range analysis: per-class intervals, trips, pipeline wiring."""

import pytest

from repro.pipeline import analyze
from repro.ranges import RangeInfo, compute_ranges
from repro.ranges.interval import Interval
from repro.resilience.faultinject import FaultPlan, injecting

ASSUMED = """
assume n >= 1
assume n <= 50
array A[200]
L1: for i = 1 to n do
  A[i + 100] = A[i] + 1
endfor
return n
"""


def ranges_of(source, **kwargs):
    program = analyze(source, ranges=True, **kwargs)
    assert program.result.ranges is not None
    return program, program.result.ranges


class TestAssumptions:
    def test_assume_bounds_parameters(self):
        _, info = ranges_of(ASSUMED)
        assert info.range_of("n") == Interval(1, 50)

    def test_relations(self):
        source = """
assume a < 10
assume b > 0
assume c == 7
x = a + b + c
L1: for i = 1 to 2 do
  x = x + 1
endfor
"""
        _, info = ranges_of(source)
        assert info.range_of("a") == Interval.at_most(9)
        assert info.range_of("b") == Interval.at_least(1)
        assert info.range_of("c") == Interval.point(7)

    def test_conflicting_assumes_intersect(self):
        source = """
assume n >= 5
assume n >= 10
L1: for i = 1 to n do
  x = i
endfor
"""
        _, info = ranges_of(source)
        assert info.range_of("n") == Interval.at_least(10)


class TestTripRanges:
    def test_constant_trip_is_a_point(self):
        _, info = ranges_of("L1: for i = 1 to 10 do\n  x = i\nendfor")
        assert info.trips["L1"] == Interval.point(10)
        assert info.trip_upper_bound("L1") == 10

    def test_symbolic_trip_uses_assumptions(self):
        _, info = ranges_of(ASSUMED)
        assert info.trips["L1"] == Interval(1, 50)
        assert info.trip_upper_bound("L1") == 50

    def test_unbounded_symbolic_trip(self):
        _, info = ranges_of("L1: for i = 1 to n do\n  x = i\nendfor")
        assert info.trip_upper_bound("L1") is None
        assert info.trip_range("L1").contains(0)

    def test_missing_header_defaults_to_nonnegative(self):
        info = RangeInfo(function="f")
        assert info.trip_range("L9") == Interval.at_least(0)
        assert info.trip_upper_bound("L9") is None


class TestClassIntervals:
    def test_linear_iv_exact_span(self):
        program, info = ranges_of("L1: for i = 1 to 10 do\n  x = i\nendfor")
        name = program.ssa_name("i", "L1")
        # the header phi covers the exiting evaluation too: i leaves at 11
        assert info.range_of(name) == Interval(1, 11)
        # a body use sees only the executed iterations
        assert info.range_of("x.1") == Interval(1, 10)

    def test_polynomial_iv_enumerated(self):
        source = """
x = 0
L1: for i = 1 to 10 do
  x = x + i
endfor
"""
        program, info = ranges_of(source)
        name = program.ssa_name("x", "L1")
        # x takes 0, 1, 3, ..., 45 across executed iterations and exits at 55
        assert info.range_of(name) == Interval(0, 55)

    def test_geometric_iv_bounded_below(self):
        source = """
j = 1
L1: for i = 1 to 5 do
  j = 2 * j + 1
endfor
"""
        program, info = ranges_of(source)
        name = program.ssa_name("j", "L1")
        # j at the header: 1, 3, 7, 15, 31, exiting at 63
        assert info.range_of(name) == Interval(1, 63)

    def test_periodic_flip_flop_hull(self):
        source = """
x = 1
L1: for i = 1 to n do
  x = 5 - x
endfor
"""
        program, info = ranges_of(source)
        name = program.ssa_name("x", "L1")
        # x alternates 1, 4, 1, 4, ... -- finite hull despite unknown trips
        assert info.range_of(name) == Interval(1, 4)

    def test_monotonic_half_bounded(self):
        source = """
k = 0
L1: for i = 1 to n do
  if i < 5 then
    k = k + 2
  endif
  x = k
endfor
"""
        program, info = ranges_of(source)
        name = program.ssa_name("k", "L1")
        interval = info.range_of(name)
        assert interval.lo == 0 and not interval.hi.is_finite

    def test_invariant_is_a_point(self):
        source = """
c = 7
L1: for i = 1 to n do
  x = c + 1
endfor
"""
        _, info = ranges_of(source)
        assert info.range_of("c.1") == Interval.point(7)
        assert info.range_of("x.1") == Interval.point(8)


class TestOperatorPropagation:
    def test_compare_result_is_boolean(self):
        program, info = ranges_of("L1: for i = 1 to 10 do\n  x = i\nendfor")
        booleans = [
            iv
            for name, iv in info.values.items()
            if name.startswith("$") and iv == Interval(0, 1)
        ]
        assert booleans, "no compare temporary got the [0, 1] range"

    def test_arithmetic_follows_operands(self):
        _, info = ranges_of(ASSUMED)
        # the store address temp: i + 100 over i in [1, 50]
        assert any(
            iv == Interval(101, 150) for iv in info.values.values()
        ), sorted(info.values.items())

    def test_propagation_only_narrows(self):
        # every operator pass intersects, so re-running compute_ranges on
        # the same result is idempotent
        program = analyze(ASSUMED, ranges=True)
        again = compute_ranges(program.result)
        assert again.values == program.result.ranges.values


class TestPipelineWiring:
    def test_off_by_default(self):
        program = analyze(ASSUMED)
        assert program.result.ranges is None

    def test_attached_when_requested(self):
        program = analyze(ASSUMED, ranges=True)
        assert isinstance(program.result.ranges, RangeInfo)
        assert not program.result.ranges.degraded

    def test_fault_degrades_to_top_without_aborting(self):
        with injecting(FaultPlan(points={"ranges.compute"})):
            program = analyze(ASSUMED, ranges=True)
        info = program.result.ranges
        assert info is not None and info.degraded
        assert info.range_of("n").is_top
        assert info.trip_upper_bound("L1") is None
        assert program.degraded
        assert any(r.phase == "ranges.compute" for r in program.degradations)

    def test_metrics_counted(self):
        from repro.obs.metrics import MetricsRegistry, collecting

        with collecting(MetricsRegistry()) as registry:
            analyze(ASSUMED, ranges=True)
        counters = registry.snapshot()["counters"]
        assert counters["ranges.values"] > 0
        assert counters["ranges.loops"] == 1
        assert counters["ranges.trips.bounded"] == 1

    def test_span_traced(self):
        from repro.obs.trace import Tracer, tracing

        with tracing(Tracer()) as tracer:
            analyze(ASSUMED, ranges=True)
        assert any(span.name == "ranges" for span in tracer.spans)


class TestRangeTightenedDependence:
    def test_serial_without_ranges_doall_with(self):
        from repro.dependence.loopinfo import analyze_parallelism

        plain = analyze(ASSUMED)
        assert not analyze_parallelism(plain.result)["L1"].parallelizable

        ranged = analyze(ASSUMED, ranges=True)
        verdict = analyze_parallelism(ranged.result)["L1"]
        assert verdict.parallelizable
        assert not verdict.carried

    def test_tightened_edges_are_annotated(self):
        from repro.dependence.graph import build_dependence_graph

        source = """
assume n >= 1
assume n <= 50
L1: for i = 1 to n do
  A[i] = A[i] + 1
endfor
"""
        program = analyze(source, ranges=True)
        graph = build_dependence_graph(program.result)
        notes = [note for edge in graph.edges for note in edge.result.notes]
        assert "trip bounds tightened by value ranges" in notes

    def test_single_trip_loop_cannot_carry(self):
        from repro.dependence.loopinfo import analyze_parallelism

        source = """
assume n <= 1
L1: for i = 2 to n do
  A[i] = A[i - 1] + 1
endfor
"""
        plain = analyze(source)
        assert not analyze_parallelism(plain.result)["L1"].parallelizable
        ranged = analyze(source, ranges=True)
        assert analyze_parallelism(ranged.result)["L1"].parallelizable


class TestFrontendDeclarations:
    def test_assumptions_recorded(self):
        program = analyze(ASSUMED)
        assert ("n", ">=", 1) in program.named_ir.assumptions
        assert ("n", "<=", 50) in program.named_ir.assumptions

    def test_array_extents_recorded(self):
        program = analyze(ASSUMED)
        assert program.named_ir.array_extents["A"] == (200,)
        assert program.ssa.array_extents["A"] == (200,)

    def test_symbolic_extent(self):
        source = """
array A[n, 20]
L1: for i = 1 to 5 do
  A[i, i] = 1
endfor
"""
        program = analyze(source)
        assert program.ssa.array_extents["A"] == ("n", 20)

    def test_negative_assume_bound(self):
        source = """
assume t >= -3
L1: for i = 1 to 2 do
  x = t
endfor
"""
        _, info = ranges_of(source)
        assert info.range_of("t") == Interval.at_least(-3)

    def test_assume_on_array_rejected(self):
        source = """
array A[10]
assume A >= 1
L1: for i = 1 to 2 do
  A[i] = 1
endfor
"""
        with pytest.raises(Exception):
            analyze(source)
