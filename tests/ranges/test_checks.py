"""The RNG6xx checker suite against crafted programs."""

import pytest

from repro.diagnostics.diagnostic import DiagnosticCollector
from repro.pipeline import analyze
from repro.ranges import check_ranges


def run_checks(source, **kwargs):
    program = analyze(source, ranges=True, **kwargs)
    collector = DiagnosticCollector()
    emitted = check_ranges(program.result, program.result.ranges, collector)
    assert emitted == len(collector.diagnostics)
    return collector.diagnostics


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestSubscriptBounds:
    def test_rng601_provably_out_of_bounds(self):
        diagnostics = run_checks(
            """
array A[10]
L1: for i = 20 to 30 do
  A[i] = 1
endfor
"""
        )
        assert "RNG601" in codes(diagnostics)
        finding = next(d for d in diagnostics if d.code == "RNG601")
        assert finding.severity.name == "ERROR"
        assert "out of bounds" in finding.message

    def test_rng602_provably_in_bounds(self):
        diagnostics = run_checks(
            """
assume n >= 1
assume n <= 50
array A[200]
L1: for i = 1 to n do
  A[i + 100] = A[i] + 1
endfor
return n
"""
        )
        assert codes(diagnostics).count("RNG602") == 2  # one load, one store
        assert "RNG601" not in codes(diagnostics)

    def test_symbolic_extent_uses_its_range(self):
        diagnostics = run_checks(
            """
assume m >= 100
array A[m]
L1: for i = 1 to 50 do
  A[i] = 1
endfor
"""
        )
        # the narrowest possible extent is 100, so i in [1, 50] is in bounds
        assert "RNG602" in codes(diagnostics)
        assert "RNG601" not in codes(diagnostics)

    def test_no_finding_without_extent_declaration(self):
        diagnostics = run_checks(
            """
L1: for i = 20 to 30 do
  A[i] = 1
endfor
"""
        )
        assert "RNG601" not in codes(diagnostics)
        assert "RNG602" not in codes(diagnostics)

    def test_unknown_index_is_not_judged(self):
        diagnostics = run_checks(
            """
array A[10]
L1: for i = 1 to n do
  A[B[i]] = 1
endfor
"""
        )
        assert "RNG601" not in codes(diagnostics)


class TestDivisionByZero:
    def test_rng603_divisor_straddles_zero(self):
        diagnostics = run_checks(
            """
assume d >= -2
assume d <= 3
L1: for i = 1 to 5 do
  x = 10 / d
endfor
""",
            optimize=False,
        )
        assert "RNG603" in codes(diagnostics)

    def test_silent_when_divisor_excludes_zero(self):
        diagnostics = run_checks(
            """
assume d >= 1
assume d <= 3
L1: for i = 1 to 5 do
  x = 10 / d
endfor
""",
            optimize=False,
        )
        assert "RNG603" not in codes(diagnostics)

    def test_silent_on_unknown_divisor(self):
        # an unconstrained divisor would fire on every division: pure noise
        diagnostics = run_checks(
            """
L1: for i = 1 to 5 do
  x = 10 / d
endfor
""",
            optimize=False,
        )
        assert "RNG603" not in codes(diagnostics)


class TestSelfUpdates:
    def test_rng604_zero_step(self):
        diagnostics = run_checks(
            """
s = 4
L1: for i = 1 to n do
  s = s + 0
endfor
""",
            optimize=False,
        )
        assert "RNG604" in codes(diagnostics)

    def test_silent_on_nonzero_step(self):
        diagnostics = run_checks(
            """
s = 4
L1: for i = 1 to n do
  s = s + 1
endfor
""",
            optimize=False,
        )
        assert "RNG604" not in codes(diagnostics)


class TestEmptyLoops:
    def test_rng605_provably_empty(self):
        diagnostics = run_checks(
            """
assume n <= 0
L1: for i = 1 to n do
  x = i
endfor
"""
        )
        assert "RNG605" in codes(diagnostics)

    def test_silent_when_possibly_nonempty(self):
        diagnostics = run_checks(
            """
assume n <= 5
L1: for i = 1 to n do
  x = i
endfor
"""
        )
        assert "RNG605" not in codes(diagnostics)


class TestBranches:
    def test_rng606_never_taken(self):
        diagnostics = run_checks(
            """
assume n >= 10
x = 0
if n < 5 then
  x = 1
endif
L1: for i = 1 to n do
  y = x
endfor
""",
            optimize=False,
        )
        assert "RNG606" in codes(diagnostics)
        finding = next(d for d in diagnostics if d.code == "RNG606")
        assert "never taken" in finding.message

    def test_silent_on_undecided_branch(self):
        diagnostics = run_checks(
            """
x = 0
if n < 5 then
  x = 1
endif
L1: for i = 1 to n do
  y = x
endfor
""",
            optimize=False,
        )
        assert "RNG606" not in codes(diagnostics)


class TestDegradedInfo:
    def test_all_top_info_proves_nothing(self):
        from repro.ranges import RangeInfo

        program = analyze(
            """
array A[10]
L1: for i = 20 to 30 do
  A[i] = 1
endfor
"""
        )
        collector = DiagnosticCollector()
        emitted = check_ranges(
            program.result, RangeInfo.top_info("main"), collector
        )
        assert emitted == 0
