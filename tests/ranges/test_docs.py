"""docs/RANGES.md must catalogue every RNG6xx check and stay linked.

Mirror of ``tests/resilience/test_docs.py``: the doc and the diagnostics
registry (category ``ranges``) are checked in both directions so neither
can drift from the other.
"""

import os
import re

import pytest

from repro.diagnostics.registry import all_checks, check_info

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
DOCS = os.path.join(ROOT, "docs", "RANGES.md")

RANGE_CODES = {info.code for info in all_checks() if info.category == "ranges"}

CLASS_NAMES = [
    "Invariant",
    "InductionVariable",
    "WrapAround",
    "Periodic",
    "Monotonic",
    "Unknown",
]


def read_docs():
    with open(DOCS) as handle:
        return handle.read()


def checker_section():
    match = re.search(
        r"^## The RNG6xx checker suite$(.*?)(?=^##)",
        read_docs(),
        re.MULTILINE | re.DOTALL,
    )
    assert match, "docs/RANGES.md lacks the RNG6xx checker-suite section"
    return match.group(1)


def documented_codes():
    """Backticked codes from the section's bullet labels (before the dash)."""
    codes = []
    for line in checker_section().splitlines():
        if not line.startswith("- `"):
            continue
        label = line.split(" — ")[0]
        codes.extend(re.findall(r"`([^`]+)`", label))
    return codes


def test_every_registered_range_code_is_documented():
    missing = RANGE_CODES - set(documented_codes())
    assert not missing, f"missing from docs/RANGES.md: {sorted(missing)}"


def test_no_undocumented_or_duplicate_codes():
    documented = documented_codes()
    unknown = [code for code in documented if code not in RANGE_CODES]
    assert not unknown, f"docs mention unregistered codes: {unknown}"
    assert len(documented) == len(set(documented)), "duplicate bullets"


def test_documented_severities_match_the_registry():
    """Each bullet states its severity as ``(error|warning|note)``."""
    for line in checker_section().splitlines():
        match = re.match(r"- `([^`]+)` — \((error|warning|note)\)", line)
        if not match and line.startswith("- `"):
            pytest.fail(f"bullet lacks a severity annotation: {line!r}")
        if match:
            code, severity = match.groups()
            assert check_info(code).severity.name.lower() == severity, code


def test_derivation_table_covers_every_classification():
    text = read_docs()
    for name in CLASS_NAMES:
        assert f"`{name}`" in text, f"{name} missing from derivation table"


def test_linked_from_readme_and_related_docs():
    with open(os.path.join(ROOT, "README.md")) as handle:
        assert "docs/RANGES.md" in handle.read()
    for doc in ("API.md", "LANGUAGE.md", "DIAGNOSTICS.md", "OBSERVABILITY.md"):
        with open(os.path.join(ROOT, "docs", doc)) as handle:
            assert "RANGES.md" in handle.read(), f"docs/{doc} lacks the link"


def test_ranges_doc_links_back():
    text = read_docs()
    for doc in ("LANGUAGE.md", "DIAGNOSTICS.md", "OBSERVABILITY.md", "ROBUSTNESS.md"):
        assert f"({doc})" in text, f"docs/RANGES.md does not link {doc}"
