"""Interning semantics: hash-consing must be observationally invisible.

``Bound``/``Interval`` interning (and the int fast path underneath it)
may only change identity and speed -- never ``==``, ``hash``, or any
analysis result.  These tests pin that contract, the ``cache_stats()``
surface, and the absence of cross-function state in the memo tables.
"""

from fractions import Fraction

from repro.obs import observing
from repro.pipeline import analyze
from repro.ranges.interval import (
    EMPTY,
    NEG_INF,
    POS_INF,
    TOP,
    Bound,
    Interval,
    cache_stats,
    reset_cache_stats,
    set_interning,
)


class TestValueSemantics:
    def test_interned_equals_fresh(self):
        assert Bound.of(3) == Bound(Fraction(3))
        assert hash(Bound.of(3)) == hash(Bound(Fraction(3)))
        assert Interval.point(3) == Interval(Fraction(3), Fraction(3))
        assert hash(Interval.point(3)) == hash(Interval(Fraction(3), Fraction(3)))

    def test_integral_fractions_collapse_to_ints(self):
        bound = Bound.of(Fraction(6, 2))
        assert type(bound.value) is int and bound.value == 3
        assert bound == Bound.of(3) and hash(bound) == hash(Bound.of(3))
        half = Bound.of(Fraction(1, 2))
        assert isinstance(half.value, Fraction)

    def test_singletons(self):
        assert Interval.top() is TOP
        assert Interval.empty_interval() is EMPTY
        assert Bound.of(0) is Bound.of(0)
        assert Interval.point(5) is Interval.point(5)
        assert -POS_INF is NEG_INF and -NEG_INF is POS_INF


class TestCacheStats:
    def test_hit_and_miss_accounting(self):
        reset_cache_stats()
        Bound.of(7)  # pre-populated small-int table
        assert cache_stats()["bound"]["hits"] >= 1
        before = cache_stats()["bound"]["misses"]
        Bound.of(10**9)  # far outside the interned range
        assert cache_stats()["bound"]["misses"] == before + 1
        reset_cache_stats()
        stats = cache_stats()
        assert stats["bound"]["hits"] == stats["bound"]["misses"] == 0
        assert stats["bound"]["size"] > 0 and stats["point"]["size"] > 0

    def test_metrics_exported_during_observed_analyze(self):
        source = "x = 0\nL1: for i = 1 to 10 do\n  x = x + 2\nendfor"
        with observing() as obs:
            analyze(source, ranges=True)
        counters = obs.metrics.snapshot()["counters"]
        assert "interval.cache.bound.hits" in counters
        assert "interval.cache.point.hits" in counters
        assert counters["ranges.fixpoint.insts"] > 0
        assert counters["ranges.fixpoint.visits"] >= counters["ranges.fixpoint.insts"]
        gauges = obs.metrics.snapshot()["gauges"]
        assert gauges["interval.cache.size"] > 0


def _range_values(source, intern):
    previous = set_interning(intern)
    try:
        program = analyze(source, ranges=True)
        return dict(program.result.ranges.values)
    finally:
        set_interning(previous)


class TestInterningInvisibility:
    def test_disabled_interning_still_equal(self):
        previous = set_interning(False)
        try:
            a = Interval.point(3)
            b = Interval.point(3)
            assert a is not b and a == b
            assert Interval.top() is not TOP and Interval.top() == TOP
            assert Interval.empty_interval() == EMPTY
        finally:
            set_interning(previous)

    def test_analysis_identical_with_and_without_interning(self):
        source = "\n".join(
            [
                "assume n <= 20",
                "x = 0",
                "y = 100",
                "L1: for i = 1 to n do",
                "  x = x + 3",
                "  y = y - 2",
                "endfor",
            ]
        )
        assert _range_values(source, True) == _range_values(source, False)

    def test_no_cross_function_cache_leakage(self):
        first = "x = 0\nL1: for i = 1 to 10 do\n  x = x + 2\nendfor"
        second = "y = 5\nL1: for i = 1 to 3 do\n  y = y - 1\nendfor"
        _range_values(first, True)  # warm the interned tables with another program
        warmed = _range_values(second, True)
        isolated = _range_values(second, False)  # no shared tables at all
        assert warmed == isolated
