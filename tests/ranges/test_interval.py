"""Unit tests for the shared interval algebra (Bound + Interval)."""

from fractions import Fraction

import pytest

from repro.ranges.interval import NEG_INF, POS_INF, Bound, Interval


class TestBound:
    def test_of_coerces_and_passes_through(self):
        assert Bound.of(3) == Bound(Fraction(3))
        assert Bound.of(Fraction(1, 2)).value == Fraction(1, 2)
        assert Bound.of(POS_INF) is POS_INF

    def test_ordering_with_infinities(self):
        assert NEG_INF < Bound.of(-(10**9)) < Bound.of(0) < POS_INF
        assert NEG_INF <= NEG_INF
        assert POS_INF >= POS_INF
        assert not (POS_INF < POS_INF)

    def test_equality_against_numbers(self):
        assert Bound.of(5) == 5
        assert Bound.of(Fraction(1, 2)) == Fraction(1, 2)
        assert POS_INF != 5

    def test_addition(self):
        assert Bound.of(2) + Bound.of(3) == 5
        assert POS_INF + Bound.of(7) == POS_INF
        assert Bound.of(7) + NEG_INF == NEG_INF

    def test_indeterminate_sum_raises(self):
        with pytest.raises(ValueError, match="indeterminate"):
            POS_INF + NEG_INF

    def test_negation(self):
        assert -POS_INF == NEG_INF
        assert -Bound.of(3) == -3

    def test_multiplication_signs(self):
        assert Bound.of(-2) * POS_INF == NEG_INF
        assert NEG_INF * NEG_INF == POS_INF
        assert Bound.of(3) * Bound.of(-4) == -12

    def test_zero_times_infinity_is_zero(self):
        # the hull convention: a zero factor pins the product
        assert Bound.of(0) * POS_INF == 0
        assert NEG_INF * Bound.of(0) == 0

    def test_floor_and_ceil(self):
        assert Bound.of(Fraction(7, 2)).floor_int() == 3
        assert Bound.of(Fraction(7, 2)).ceil_int() == 4
        assert POS_INF.floor_int() is None
        assert NEG_INF.ceil_int() is None

    def test_repr(self):
        assert repr(POS_INF) == "+inf"
        assert repr(NEG_INF) == "-inf"
        assert repr(Bound.of(3)) == "3"


class TestIntervalBasics:
    def test_constructor_coerces_ints(self):
        iv = Interval(0, 10)
        assert iv.lo == 0 and iv.hi == 10

    def test_point_and_top(self):
        assert Interval.point(4).is_point
        assert Interval.top().is_top
        assert not Interval(0, 1).is_top

    def test_contains(self):
        iv = Interval(1, 50)
        assert iv.contains(1) and iv.contains(50) and iv.contains(25)
        assert not iv.contains(0) and not iv.contains(51)
        assert not Interval.empty_interval().contains(0)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 3))
        assert not Interval(0, 10).contains_interval(Interval(2, 11))
        assert Interval(0, 10).contains_interval(Interval.empty_interval())
        assert not Interval.empty_interval().contains_interval(Interval(1, 1))

    def test_hull(self):
        assert Interval.hull([3, -1, 7]) == Interval(-1, 7)
        assert Interval.hull([]).empty


class TestIntervalAlgebra:
    def test_addition(self):
        assert Interval(1, 2) + Interval(10, 20) == Interval(11, 22)
        assert (Interval.at_least(0) + Interval.point(5)) == Interval.at_least(5)

    def test_subtraction(self):
        assert Interval(1, 2) - Interval(1, 2) == Interval(-1, 1)

    def test_negation(self):
        assert -Interval(1, 3) == Interval(-3, -1)
        assert -Interval.at_least(2) == Interval.at_most(-2)

    def test_multiplication_corners(self):
        assert Interval(-2, 3) * Interval(-5, 4) == Interval(-15, 12)
        assert Interval(2, 3) * Interval.at_least(1) == Interval.at_least(2)

    def test_scale(self):
        assert Interval(1, 2).scale(-3) == Interval(-6, -3)

    def test_union_and_intersect(self):
        assert Interval(0, 2).union(Interval(5, 7)) == Interval(0, 7)
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 1).intersect(Interval(2, 3)).empty

    def test_empty_propagates(self):
        empty = Interval.empty_interval()
        assert (empty + Interval(0, 1)).empty
        assert (empty * Interval(0, 1)).empty
        assert empty.union(Interval(1, 2)) == Interval(1, 2)

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(5, 9))
        assert not Interval(0, 4).intersects(Interval(5, 9))

    def test_integer_views(self):
        iv = Interval(Fraction(1, 2), Fraction(9, 2))
        assert iv.int_lower() == 1
        assert iv.int_upper() == 4
        assert Interval.top().int_upper() is None
        assert Interval.empty_interval().int_lower() is None

    def test_repr(self):
        assert repr(Interval(1, 50)) == "[1, 50]"
        assert repr(Interval.top()) == "[-inf, +inf]"
        assert repr(Interval.empty_interval()) == "Interval(empty)"
