"""Worklist-fixpoint equivalence: bit-identical to the reference re-sweep.

The def-use worklist (:func:`repro.ranges.analysis._fixpoint_worklist`)
must compute exactly the intervals of the historical whole-function
re-sweep it replaced -- on random programs, on parameterized programs,
and on every embedded example.  The re-sweep survives (not exported) as
:func:`repro.ranges.analysis._compute_resweep` purely for these tests.
"""

import os

from hypothesis import given, settings

from repro.core.driver import classify_function
from repro.pipeline import analyze
from repro.ranges.analysis import MAX_PASSES, _compute, _compute_resweep

from tests.property.test_range_soundness import assumed_programs, loop_programs


def _both_fixpoints(source):
    """(worklist RangeInfo, re-sweep RangeInfo) for one program."""
    program = analyze(source)
    result = classify_function(program.ssa)
    fast = _compute(result.function, result)
    slow = _compute_resweep(result.function, result)
    return fast, slow


def assert_equivalent(source):
    fast, slow = _both_fixpoints(source)
    assert set(fast.values) == set(slow.values)
    for name in slow.values:
        assert fast.values[name] == slow.values[name], (
            f"{name}: worklist {fast.values[name]} != re-sweep {slow.values[name]}"
        )
    assert fast.trips == slow.trips


@settings(max_examples=60, deadline=None)
@given(loop_programs())
def test_worklist_matches_resweep_on_random_loops(source):
    assert_equivalent(source)


@settings(max_examples=60, deadline=None)
@given(assumed_programs())
def test_worklist_matches_resweep_on_assumed_programs(case):
    source, _ = case
    assert_equivalent(source)


def test_worklist_matches_resweep_on_examples_corpus():
    from repro.diagnostics.driver import collect_targets

    examples = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
    targets = collect_targets([examples])
    assert targets, "examples corpus must not be empty"
    for target in targets:
        assert_equivalent(target.source)


def test_worklist_visit_counters_are_recorded():
    source = "\n".join(
        [
            "x = 0",
            "y = 10",
            "L1: for i = 1 to 8 do",
            "  x = x + 2",
            "  y = y - 1",
            "endfor",
        ]
    )
    program = analyze(source)
    result = classify_function(program.ssa)
    info = _compute(result.function, result)
    assert info.fixpoint_insts > 0
    # every instruction is visited at least once, and re-visits only
    # happen on actual narrowings -- strictly better than the re-sweep's
    # passes * insts worst case
    assert info.fixpoint_visits >= info.fixpoint_insts
    assert info.fixpoint_visits <= MAX_PASSES * info.fixpoint_insts
    assert 0 <= info.fixpoint_narrowed <= info.fixpoint_visits
