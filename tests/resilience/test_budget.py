"""Resource budgets: caps degrade the affected scope, never crash."""

import pytest

from repro.pipeline import analyze
from repro.resilience import budget as budget_mod
from repro.resilience.budget import (
    SERVICE_BUDGET,
    AnalysisBudget,
    active,
    budgeted,
    charge_expr_terms,
    check_deadline,
    matrix_dim_allowed,
    phase_deadline,
    unroll_cap,
)
from repro.resilience.errors import BudgetExceeded
from repro.symbolic.expr import Expr

POLY_SRC = """
i = 0
x = 0
L1: while i < 10 do
  x = x + i
  i = i + 1
endwhile
"""


class TestBudgetInstallation:
    def test_default_is_unbudgeted(self):
        assert active() is None
        assert budget_mod._EXPR_TERM_CAP is None

    def test_budgeted_none_is_a_noop(self):
        with budgeted(None):
            assert active() is None

    def test_budgeted_installs_and_restores(self):
        budget = AnalysisBudget(max_expr_terms=8)
        with budgeted(budget):
            assert active() is budget
            assert budget_mod._EXPR_TERM_CAP == 8
        assert active() is None
        assert budget_mod._EXPR_TERM_CAP is None

    def test_nested_budgets_restore_outer(self):
        outer = AnalysisBudget(max_expr_terms=100)
        inner = AnalysisBudget(max_expr_terms=5)
        with budgeted(outer):
            with budgeted(inner):
                assert active() is inner
                assert budget_mod._EXPR_TERM_CAP == 5
            assert active() is outer
            assert budget_mod._EXPR_TERM_CAP == 100


class TestExprTermCap:
    def test_charge_without_budget_is_free(self):
        charge_expr_terms(10**9)  # no cap installed: no-op

    def test_charge_raises_past_cap(self):
        with budgeted(AnalysisBudget(max_expr_terms=4)):
            charge_expr_terms(4)
            with pytest.raises(BudgetExceeded) as info:
                charge_expr_terms(5)
        assert info.value.code == "budget-expr-terms"

    def test_multiplication_checks_the_cap(self):
        a = sum((Expr.sym(f"a{i}") for i in range(5)), Expr.const(0))
        b = sum((Expr.sym(f"b{i}") for i in range(5)), Expr.const(0))
        assert len((a * b).terms()) == 25  # uncapped: fine
        with budgeted(AnalysisBudget(max_expr_terms=10)):
            with pytest.raises(BudgetExceeded):
                a * b

    def test_substitution_checks_the_cap(self):
        big = sum((Expr.sym(f"a{i}") for i in range(6)), Expr.const(0))
        target = Expr.sym("x") + 1
        with budgeted(AnalysisBudget(max_expr_terms=3)):
            with pytest.raises(BudgetExceeded):
                target.substitute({"x": big})


class TestMatrixAndUnrollCaps:
    def test_matrix_dim_allowed_without_budget(self):
        assert matrix_dim_allowed(10**6)

    def test_matrix_dim_respects_budget(self):
        with budgeted(AnalysisBudget(max_matrix_dim=3)):
            assert matrix_dim_allowed(3)
            assert not matrix_dim_allowed(4)

    def test_unroll_cap_clamps(self):
        assert unroll_cap(500) == 500
        with budgeted(AnalysisBudget(max_unroll_trips=16)):
            assert unroll_cap(500) == 16
            assert unroll_cap(8) == 8

    def test_unroll_transform_declines_past_cap(self):
        from repro.analysis.loopsimplify import simplify_loops
        from repro.frontend.source import compile_source
        from repro.transforms import fully_unroll

        src = (
            "s = 0\nL1: for i = 1 to 20 do\n  s = s + i\nendfor\nreturn s"
        )
        named = compile_source(src)
        simplify_loops(named)
        with budgeted(AnalysisBudget(max_unroll_trips=5)):
            assert fully_unroll(named, "L1") is None  # 20 trips > cap 5
        # without the budget the same loop unrolls fine
        named = compile_source(src)
        simplify_loops(named)
        assert fully_unroll(named, "L1") == 20


class TestDeadlines:
    def test_deadline_noop_without_budget(self):
        with phase_deadline("classify"):
            check_deadline("classify")  # no raise

    def test_expired_deadline_raises(self):
        with budgeted(AnalysisBudget(phase_deadline_s=0.0)):
            with phase_deadline("classify"):
                import time

                time.sleep(0.01)
                with pytest.raises(BudgetExceeded) as info:
                    check_deadline("classify")
        assert info.value.code == "budget-deadline"
        assert info.value.phase == "classify"

    def test_zero_deadline_degrades_analysis_not_crashes(self):
        program = analyze(POLY_SRC, budget=AnalysisBudget(phase_deadline_s=0.0))
        assert program.degraded
        assert any(r.code == "budget-deadline" for r in program.degradations)
        assert all(r.diag_code == "RES503" for r in program.degradations
                   if r.code.startswith("budget-"))


class TestClosedFormBudget:
    def test_matrix_cap_degrades_polynomial_to_monotonic(self):
        from repro.obs.metrics import MetricsRegistry, collecting

        baseline = analyze(POLY_SRC)
        x_name = baseline.ssa_name("x", "L1")
        assert baseline.result.describe(x_name).startswith("(L1, 0,")

        with collecting(MetricsRegistry()) as registry:
            program = analyze(POLY_SRC, budget=AnalysisBudget(max_matrix_dim=1))
        description = program.result.describe(program.ssa_name("x", "L1"))
        assert "monotonic" in description or "unknown" in description
        assert registry.snapshot()["counters"].get("closedform.degraded", 0) > 0

    def test_service_budget_happy_path_is_clean(self):
        program = analyze(POLY_SRC, budget=SERVICE_BUDGET)
        assert not program.degraded
        x_name = program.ssa_name("x", "L1")
        assert program.result.describe(x_name).startswith("(L1, 0,")
