"""Chaos suite: inject every fault point across the examples corpus.

The contract under test is the tentpole guarantee: **no single injected
fault can make ``analyze()`` escape with an exception** -- the result is
always a structurally valid :class:`~repro.pipeline.AnalyzedProgram`
where every SSA name still answers ``classification_of`` (possibly
``Unknown``) and the containment is visible in ``degradations``.

``CHAOS_SEED=<int>`` narrows the seeded sweep to one seed (CI runs the
three defaults in separate jobs).
"""

import os

import pytest

from repro.diagnostics.driver import collect_targets
from repro.pipeline import AnalyzedProgram, analyze
from repro.resilience.errors import InjectedFault
from repro.resilience.faultinject import FAULT_POINTS, FaultPlan, injecting

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
CORPUS = collect_targets([EXAMPLES])

DEFAULT_SEEDS = [101, 202, 303, 404]
SEEDS = (
    [int(os.environ["CHAOS_SEED"])]
    if os.environ.get("CHAOS_SEED")
    else DEFAULT_SEEDS
)


def assert_valid(program, origin):
    """The degraded-but-valid contract for one analyzed program."""
    assert isinstance(program, AnalyzedProgram), origin
    for name in program.ssa.definitions():
        classification = program.result.classification_of(name)
        assert classification is not None, (origin, name)
        assert isinstance(classification.describe(), str), (origin, name)
    assert isinstance(program.describe_all(), dict), origin
    for summary in program.result.loops.values():
        assert summary.trip is not None, origin


def test_corpus_is_substantial():
    # the harvest must keep finding the embedded example programs
    assert len(CORPUS) >= 10


@pytest.mark.parametrize("point", sorted(FAULT_POINTS))
def test_single_point_never_escapes_analyze(point):
    """Arm one point at full rate over the whole corpus: no escape."""
    for target in CORPUS:
        # every optional phase on, so every fault point is reachable
        with injecting(FaultPlan(points={point})) as plan:
            program = analyze(target.source, ranges=True, invariants=True)
        assert_valid(program, target.origin)
        if plan.fired:
            assert program.degraded, (point, target.origin)
            assert any(
                record.code in ("injected-fault", "internal-error")
                for record in program.degradations
            ), (point, target.origin)


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_sweep_never_escapes_analyze(seed):
    """A pseudo-random multi-point sweep (rate 0.3) over the corpus."""
    fired_total = 0
    for target in CORPUS:
        with injecting(FaultPlan(seed=seed, rate=0.3)) as plan:
            program = analyze(target.source, ranges=True, invariants=True)
        assert_valid(program, target.origin)
        fired_total += len(plan.fired)
        if plan.fired:
            assert program.degraded, (seed, target.origin)
    assert fired_total > 0  # the sweep must actually inject something


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_sweep_is_deterministic(seed):
    """Same seed + same corpus = byte-identical injection decisions."""

    def sweep():
        fired = []
        for target in CORPUS:
            with injecting(FaultPlan(seed=seed, rate=0.3)) as plan:
                analyze(target.source, ranges=True, invariants=True)
            fired.append(tuple(plan.fired))
        return fired

    assert sweep() == sweep()


def test_strict_mode_escapes_on_injection():
    """--strict-errors must surface the injected fault, corpus-wide."""
    target = CORPUS[0]
    with injecting(FaultPlan(points={"classify.function"})):
        with pytest.raises(InjectedFault):
            analyze(target.source, strict=True)
