"""The report-mode resilience flags: ``--inject`` and ``--strict-errors``."""

from repro.cli import main
from repro.resilience.errors import InjectedFault
from repro.resilience.faultinject import all_fault_points

SOURCE = """\
i = 0
x = 0
L1: while i < 10 do
  x = x + i
  i = i + 1
endwhile
"""


def write_program(tmp_path, name="prog.loop", source=SOURCE):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


class TestInjectFlag:
    def test_inject_list_prints_the_catalogue(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "list"]) == 0
        out = capsys.readouterr().out
        for point in all_fault_points():
            assert point in out

    def test_unknown_point_is_a_usage_error(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "no.such"]) == 2
        assert "unknown fault point" in capsys.readouterr().err

    def test_injection_degrades_and_reports(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "classify.loop"]) == 0
        out = capsys.readouterr().out
        assert "== resilience ==" in out
        assert "[RES501]" in out
        assert "[degraded]" in out

    def test_injection_surfaces_in_lint_diagnostics(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "classify.loop", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "RES501" in out

    def test_clean_run_has_no_resilience_section(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program]) == 0
        assert "== resilience ==" not in capsys.readouterr().out


class TestStrictErrorsFlag:
    def test_strict_propagates_the_injected_fault(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main(
            [program, "--inject", "classify.loop", "--strict-errors"]
        ) == 1
        assert "injected fault" in capsys.readouterr().err

    def test_strict_clean_run_succeeds(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--strict-errors"]) == 0
        assert "loop L1" in capsys.readouterr().out
