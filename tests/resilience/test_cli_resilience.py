"""The report-mode resilience flags: ``--inject`` and ``--strict-errors``."""

from repro.cli import main
from repro.resilience.errors import InjectedFault
from repro.resilience.faultinject import all_fault_points

SOURCE = """\
i = 0
x = 0
L1: while i < 10 do
  x = x + i
  i = i + 1
endwhile
"""


def write_program(tmp_path, name="prog.loop", source=SOURCE):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


class TestInjectFlag:
    def test_inject_list_prints_the_catalogue(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "list"]) == 0
        out = capsys.readouterr().out
        for point in all_fault_points():
            assert point in out

    def test_unknown_point_is_a_usage_error(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "no.such"]) == 2
        assert "unknown fault point" in capsys.readouterr().err

    def test_injection_degrades_and_reports(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "classify.loop"]) == 0
        out = capsys.readouterr().out
        assert "== resilience ==" in out
        assert "[RES501]" in out
        assert "[degraded]" in out

    def test_injection_surfaces_in_lint_diagnostics(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--inject", "classify.loop", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "RES501" in out

    def test_clean_run_has_no_resilience_section(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program]) == 0
        assert "== resilience ==" not in capsys.readouterr().out


class TestBudgetFlags:
    """``--deadline-s`` / ``--max-expr-terms`` degrade, never crash."""

    def test_impossible_deadline_degrades_the_report(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--deadline-s", "0.0000001"]) == 0
        out = capsys.readouterr().out
        assert "== resilience ==" in out
        assert "budget-request-deadline" in out
        assert "[RES503]" in out

    def test_impossible_deadline_degrades_lint_mode(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main(["lint", program, "--deadline-s", "0.0000001"]) == 0
        out = capsys.readouterr().out
        assert "budget-request-deadline" in out
        assert "RES503" in out

    def test_generous_budget_leaves_the_run_clean(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main(
            [program, "--deadline-s", "600", "--max-expr-terms", "100000"]
        ) == 0
        out = capsys.readouterr().out
        assert "loop L1" in out
        assert "== resilience ==" not in out

    def test_strict_errors_propagates_the_deadline(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main(
            [program, "--deadline-s", "0.0000001", "--strict-errors"]
        ) == 1
        assert "deadline" in capsys.readouterr().err


class TestStrictErrorsFlag:
    def test_strict_propagates_the_injected_fault(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main(
            [program, "--inject", "classify.loop", "--strict-errors"]
        ) == 1
        assert "injected fault" in capsys.readouterr().err

    def test_strict_clean_run_succeeds(self, tmp_path, capsys):
        program = write_program(tmp_path)
        assert main([program, "--strict-errors"]) == 0
        assert "loop L1" in capsys.readouterr().out
