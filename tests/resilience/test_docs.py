"""docs/ROBUSTNESS.md must catalogue every error code and fault point.

Mirror of ``tests/obs/test_docs.py`` / ``tests/diagnostics/test_docs.py``:
the doc and the Python catalogues (``ERROR_CODES``, ``FAULT_POINTS``) are
checked in both directions so neither can drift from the other.
"""

import os
import re

import pytest

from repro.resilience.errors import ERROR_CODES, error_code_info
from repro.resilience.faultinject import FAULT_POINTS

DOCS = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "ROBUSTNESS.md"
)

SECTIONS = {
    "Error-code catalogue": set(ERROR_CODES),
    "Fault-point catalogue": set(FAULT_POINTS),
}


def read_docs():
    with open(DOCS) as handle:
        return handle.read()


def section_text(heading):
    text = read_docs()
    match = re.search(
        rf"^###? {re.escape(heading)}$(.*?)(?=^##)",
        text,
        re.MULTILINE | re.DOTALL,
    )
    assert match, f"docs/ROBUSTNESS.md lacks a {heading!r} section"
    return match.group(1)


def documented_names(heading):
    """Backticked names from the section's bullet labels (before the dash)."""
    names = []
    for line in section_text(heading).splitlines():
        if not line.startswith("- `"):
            continue
        label = line.split(" — ")[0]
        names.extend(re.findall(r"`([^`]+)`", label))
    return names


@pytest.mark.parametrize("heading", sorted(SECTIONS))
def test_every_catalogued_name_is_documented(heading):
    documented = set(documented_names(heading))
    missing = SECTIONS[heading] - documented
    assert not missing, f"{heading}: missing from docs: {sorted(missing)}"


@pytest.mark.parametrize("heading", sorted(SECTIONS))
def test_no_undocumented_names(heading):
    documented = documented_names(heading)
    unknown = [name for name in documented if name not in SECTIONS[heading]]
    assert not unknown, f"{heading}: docs mention unknown names: {unknown}"
    assert len(documented) == len(set(documented)), f"{heading}: duplicates"


def test_documented_policies_match_the_registry():
    """Each error-code bullet states its policy as ``(degrade|retry|abort)``."""
    for line in section_text("Error-code catalogue").splitlines():
        match = re.match(r"- `([^`]+)` — \((degrade|retry|abort)\)", line)
        if not match and line.startswith("- `"):
            pytest.fail(f"bullet lacks a policy annotation: {line!r}")
        if match:
            code, policy = match.groups()
            assert error_code_info(code).policy.value == policy, code


def test_res_diag_codes_are_cross_referenced():
    text = read_docs()
    for code in ("RES501", "RES502", "RES503", "RES504", "RES505"):
        assert code in text, f"{code} not mentioned in docs/ROBUSTNESS.md"


def test_linked_from_readme_and_api_reference():
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    with open(os.path.join(root, "README.md")) as handle:
        assert "docs/ROBUSTNESS.md" in handle.read()
    with open(os.path.join(root, "docs", "API.md")) as handle:
        assert "ROBUSTNESS.md" in handle.read()
    # the related catalogues link back
    with open(os.path.join(root, "docs", "DIAGNOSTICS.md")) as handle:
        assert "ROBUSTNESS.md" in handle.read()
    with open(os.path.join(root, "docs", "OBSERVABILITY.md")) as handle:
        assert "ROBUSTNESS.md" in handle.read()
