"""The structured error taxonomy: codes, policies, adaptation."""

import pytest

from repro.resilience.errors import (
    ERROR_CODES,
    BudgetExceeded,
    InjectedFault,
    MissingPhiError,
    RecoveryPolicy,
    ReproError,
    TransientFault,
    all_error_codes,
    error_code_info,
    wrap_exception,
)


class TestRegistry:
    def test_every_code_has_policy_and_description(self):
        for code in all_error_codes():
            info = error_code_info(code)
            assert info.code == code
            assert isinstance(info.policy, RecoveryPolicy)
            assert info.description

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError, match="no-such-code"):
            error_code_info("no-such-code")

    def test_abort_codes_are_exactly_the_input_and_tooling_errors(self):
        aborting = {
            code
            for code in all_error_codes()
            if error_code_info(code).policy is RecoveryPolicy.ABORT
        }
        assert aborting == {
            "frontend-error",
            "sanitizer-violation",
            "malformed-request",
            "request-overflow",
        }

    def test_retry_codes_are_exactly_the_transient_failures(self):
        retrying = {
            code
            for code in all_error_codes()
            if error_code_info(code).policy is RecoveryPolicy.RETRY
        }
        assert retrying == {"transient-fault", "worker-crash"}


class TestReproError:
    def test_defaults(self):
        error = ReproError("boom")
        assert error.code == "internal-error"
        assert error.policy is RecoveryPolicy.DEGRADE
        assert error.phase is None
        assert str(error) == "boom"

    def test_explicit_code_sets_policy(self):
        error = ReproError("nope", code="frontend-error")
        assert error.policy is RecoveryPolicy.ABORT

    def test_policy_override(self):
        error = ReproError("x", code="internal-error", policy=RecoveryPolicy.ABORT)
        assert error.policy is RecoveryPolicy.ABORT

    def test_unknown_code_rejected_at_construction(self):
        with pytest.raises(KeyError):
            ReproError("x", code="made-up")

    def test_subclass_default_codes(self):
        assert BudgetExceeded("b").code == "budget-deadline"
        assert InjectedFault("i").code == "injected-fault"
        assert TransientFault("t").code == "transient-fault"
        assert TransientFault("t").policy is RecoveryPolicy.RETRY
        assert MissingPhiError("m").code == "missing-header-phi"

    def test_missing_phi_error_is_a_keyerror(self):
        # pre-taxonomy callers catch KeyError; the subclass keeps them working
        with pytest.raises(KeyError):
            raise MissingPhiError("no phi")
        assert issubclass(MissingPhiError, ReproError)


class TestWrapException:
    def test_repro_error_is_identity_and_fills_phase(self):
        error = ReproError("x")
        wrapped = wrap_exception(error, "classify.loop")
        assert wrapped is error
        assert wrapped.phase == "classify.loop"

    def test_existing_phase_is_kept(self):
        error = ReproError("x", phase="ssa.construct")
        assert wrap_exception(error, "classify.loop").phase == "ssa.construct"

    def test_generic_exception_becomes_internal_error(self):
        wrapped = wrap_exception(KeyError("k"), "classify.loop")
        assert wrapped.code == "internal-error"
        assert wrapped.policy is RecoveryPolicy.DEGRADE
        assert wrapped.phase == "classify.loop"
        assert "KeyError" in wrapped.message

    def test_frontend_error_aborts(self):
        from repro.frontend.lexer import FrontendError

        wrapped = wrap_exception(FrontendError("bad", 1, 2), "frontend")
        assert wrapped.code == "frontend-error"
        assert wrapped.policy is RecoveryPolicy.ABORT

    def test_sanitizer_error_aborts(self):
        from repro.diagnostics.sanitizer import SanitizerError

        wrapped = wrap_exception(
            SanitizerError("gvn", []), "pipeline.optimize"
        )
        assert wrapped.code == "sanitizer-violation"
        assert wrapped.policy is RecoveryPolicy.ABORT

    def test_messageless_exception_uses_type_name(self):
        wrapped = wrap_exception(ValueError(), "x")
        assert "ValueError" in wrapped.message

    def test_catalogue_registration_rejects_duplicates(self):
        from repro.resilience.errors import _register

        existing = next(iter(ERROR_CODES))
        with pytest.raises(ValueError, match="registered twice"):
            _register(existing, RecoveryPolicy.DEGRADE, "dup")
