"""Deterministic fault injection: plans, determinism, point reachability."""

import pytest

from repro.pipeline import analyze
from repro.resilience.errors import InjectedFault, TransientFault
from repro.resilience.faultinject import (
    FAULT_POINTS,
    FaultPlan,
    active_plan,
    all_fault_points,
    fault_point,
    injecting,
)

# one program that drives every pipeline-internal fault point: a loop
# with a polynomial IV (closedform.fit) and an affine recurrence
# (closedform.recurrence)
PIPELINE_SRC = """
i = 0
x = 0
j = 1
L1: while i < 10 do
  x = x + i
  j = 2 * j + 1
  i = i + 1
endwhile
"""

#: fault points that fire inside a plain ``analyze()`` of PIPELINE_SRC
PIPELINE_POINTS = {
    "frontend.parse",
    "frontend.lower",
    "analysis.loop-simplify",
    "ssa.construct",
    "scalar.sccp",
    "scalar.simplify",
    "scalar.gvn",
    "scalar.copyprop",
    "classify.function",
    "classify.loop",
    "classify.tripcount",
    "closedform.fit",
    "closedform.recurrence",
}
#: fault points at direct entry points (transforms, dependence graph)
DIRECT_POINTS = set(FAULT_POINTS) - PIPELINE_POINTS


class TestFaultPlan:
    def test_unknown_points_rejected(self):
        with pytest.raises(ValueError, match="unknown fault points"):
            FaultPlan(points={"no.such"})

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(rate=1.5)

    def test_point_filter(self):
        plan = FaultPlan(points={"classify.loop"})
        assert not plan.should_trip("scalar.gvn")
        assert plan.should_trip("classify.loop")
        assert plan.fired == [("classify.loop", 0)]

    def test_only_first(self):
        plan = FaultPlan(points={"classify.loop"}, only_first=True)
        assert plan.should_trip("classify.loop")
        assert not plan.should_trip("classify.loop")
        assert plan.hits["classify.loop"] == 2

    def test_seeded_stream_is_deterministic(self):
        def run(seed):
            plan = FaultPlan(seed=seed, rate=0.5)
            return [plan.should_trip("classify.loop") for _ in range(64)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_rate_zero_never_trips_but_counts(self):
        plan = FaultPlan(seed=1, rate=0.0)
        assert not any(plan.should_trip("scalar.gvn") for _ in range(16))
        assert plan.hits["scalar.gvn"] == 16
        assert plan.fired == []


class TestFaultPoint:
    def test_noop_without_a_plan(self):
        assert active_plan() is None
        fault_point("classify.loop")  # no raise
        fault_point("not.even.registered")  # validation only when armed

    def test_unknown_name_rejected_when_armed(self):
        with injecting(FaultPlan()):
            with pytest.raises(ValueError, match="not in FAULT_POINTS"):
                fault_point("not.registered")

    def test_armed_point_raises_injected_fault(self):
        with injecting("classify.loop"):
            with pytest.raises(InjectedFault) as info:
                fault_point("classify.loop")
        assert info.value.phase == "classify.loop"

    def test_transient_plan_raises_transient_fault(self):
        with injecting(FaultPlan(points={"scalar.gvn"}, transient=True)):
            with pytest.raises(TransientFault):
                fault_point("scalar.gvn")

    def test_injection_counts_the_metric(self):
        from repro.obs.metrics import MetricsRegistry, collecting

        with collecting(MetricsRegistry()) as registry:
            with injecting("classify.loop"):
                with pytest.raises(InjectedFault):
                    fault_point("classify.loop")
        counters = registry.snapshot()["counters"]
        assert counters["resilience.faults.injected"] == 1

    def test_plan_scope_restored(self):
        with injecting("classify.loop") as plan:
            assert active_plan() is plan
        assert active_plan() is None


class TestReachability:
    """Every catalogued fault point must actually fire somewhere."""

    def test_catalogue_is_partitioned(self):
        assert PIPELINE_POINTS <= set(FAULT_POINTS)
        assert PIPELINE_POINTS | DIRECT_POINTS == set(FAULT_POINTS)
        assert all_fault_points() == sorted(FAULT_POINTS)

    def test_every_pipeline_point_is_hit_by_analyze(self):
        # rate=0.0 observes invocations without tripping anything
        with injecting(FaultPlan(seed=1, rate=0.0)) as plan:
            program = analyze(PIPELINE_SRC)
        assert not program.degraded
        missing = PIPELINE_POINTS - set(plan.hits)
        assert not missing, f"never invoked under analyze(): {sorted(missing)}"

    @pytest.mark.parametrize("point", sorted(PIPELINE_POINTS))
    def test_pipeline_point_trips_and_is_contained(self, point):
        with injecting(FaultPlan(points={point})) as plan:
            program = analyze(PIPELINE_SRC)
        assert plan.fired, f"{point} armed but never fired"
        assert program.degraded
        assert any(r.code == "injected-fault" for r in program.degradations)

    @pytest.mark.parametrize("point", sorted(DIRECT_POINTS))
    def test_direct_point_trips_at_its_entry(self, point):
        program = analyze(PIPELINE_SRC)
        summary = next(iter(program.result.loops.values()))
        drivers = {
            "dependence.graph": lambda: __import__(
                "repro.dependence.graph", fromlist=["build_dependence_graph"]
            ).build_dependence_graph(program.result),
            "transform.strength-reduce": lambda: _transforms().strength_reduce(
                program.ssa, program.result, summary.loop
            ),
            "transform.ivsubst": lambda: (
                _transforms().substitute_induction_variables(
                    program.ssa, program.result, summary.loop
                )
            ),
            "transform.licm": lambda: _transforms().hoist_invariants(
                program.ssa, program.result, summary.loop
            ),
            "transform.peel": lambda: _transforms().peel_first_iteration(
                program.ssa, summary.label
            ),
            "transform.normalize": lambda: _transforms().normalize_loop(
                program.ssa, summary.label
            ),
            "transform.unroll": lambda: _transforms().fully_unroll(
                program.ssa, summary.label
            ),
            "transform.materialize": lambda: _materialize(),
            "ranges.compute": lambda: __import__(
                "repro.ranges", fromlist=["compute_ranges"]
            ).compute_ranges(program.result),
            "invariants.compute": lambda: __import__(
                "repro.invariants", fromlist=["compute_invariants"]
            ).compute_invariants(program.result),
            # the serving layer's points fire at their entry guards, so
            # none of these need a started pool or a live server
            "serve.dispatch": lambda: __import__(
                "repro.service.pool", fromlist=["WorkerPool"]
            ).WorkerPool(size=1).submit({"source": "i = 0\n"}),
            "serve.worker": lambda: __import__(
                "repro.service.worker", fromlist=["run_job"]
            ).run_job({"source": "i = 0\n"}),
            "serve.cache": lambda: __import__(
                "repro.service.cache", fromlist=["ResultCache"]
            ).ResultCache(4).get("k"),
        }
        with injecting(FaultPlan(points={point})) as plan:
            with pytest.raises(InjectedFault):
                drivers[point]()
        assert plan.fired == [(point, 0)]


def _transforms():
    import repro.transforms as transforms

    return transforms


def _materialize():
    from repro.ir.function import Function
    from repro.symbolic.expr import Expr
    from repro.transforms import materialize_expr

    function = Function("f")
    block = function.add_block("entry")
    return materialize_expr(function, block, 0, Expr.const(1))
