"""Isolation boundaries: scoped containment, strict mode, surfacing."""

import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.trace import Tracer, tracing
from repro.resilience.errors import (
    BudgetExceeded,
    ReproError,
    TransientFault,
)
from repro.resilience.isolation import (
    DegradationLog,
    absorb,
    active_log,
    diagnostics_of,
    isolating,
    resilient,
    run_optional,
    strict_active,
    strict_errors,
)


class TestScoping:
    def test_no_context_by_default(self):
        assert active_log() is None
        assert not strict_active()
        assert not isolating()

    def test_resilient_installs_a_log(self):
        with resilient() as log:
            assert active_log() is log
            assert isolating()
        assert active_log() is None

    def test_strict_disables_isolation_inside_resilient(self):
        with resilient(), strict_errors(True):
            assert not isolating()

    def test_resilient_accepts_an_external_log(self):
        log = DegradationLog()
        with resilient(log) as active:
            assert active is log


class TestAbsorb:
    def test_reraises_original_outside_resilient(self):
        error = KeyError("legacy")
        with pytest.raises(KeyError) as info:
            absorb(error, "classify.loop")
        assert info.value is error  # original type + identity preserved

    def test_reraises_in_strict_mode(self):
        with resilient(), strict_errors(True):
            with pytest.raises(ValueError):
                absorb(ValueError("x"), "classify.loop")

    def test_abort_policy_always_raises(self):
        from repro.frontend.lexer import FrontendError

        with resilient():
            with pytest.raises(FrontendError):
                absorb(FrontendError("bad input", 1, 1), "frontend")

    def test_degrade_policy_records(self):
        with resilient() as log:
            record = absorb(KeyError("k"), "classify.loop", scope="L1")
        assert record is log.records[0]
        assert record.phase == "classify.loop"
        assert record.code == "internal-error"
        assert record.scope == "L1"
        assert record.action == "degraded"
        assert record.diag_code == "RES501"

    def test_budget_errors_map_to_res503(self):
        with resilient() as log:
            absorb(BudgetExceeded("out of terms", code="budget-expr-terms"),
                   "classify.loop")
        assert log.records[0].diag_code == "RES503"

    def test_repro_error_phase_wins_over_boundary_phase(self):
        with resilient() as log:
            absorb(ReproError("x", phase="closedform.fit"), "classify.loop")
        assert log.records[0].phase == "closedform.fit"


class TestRunOptional:
    def test_success_passes_through(self):
        with resilient() as log:
            assert run_optional("phase", lambda: 42) == 42
        assert not log.records

    def test_failure_skips_and_returns_default(self):
        with resilient() as log:
            result = run_optional(
                "dependence.graph", lambda: 1 // 0, default="dflt"
            )
        assert result == "dflt"
        assert log.records[0].action == "skipped"
        assert log.records[0].diag_code == "RES502"

    def test_transient_failure_retried_once(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise TransientFault("blip")
            return "ok"

        with resilient() as log:
            assert run_optional("scalar.gvn", flaky) == "ok"
        assert len(calls) == 2
        assert [r.action for r in log.records] == ["retried"]
        assert log.records[0].diag_code == "RES504"

    def test_retry_failure_then_skips(self):
        def always_flaky():
            raise TransientFault("blip")

        with resilient() as log:
            assert run_optional("scalar.gvn", always_flaky, default=3) == 3
        assert [r.action for r in log.records] == ["retried", "skipped"]

    def test_outside_resilient_reraises(self):
        with pytest.raises(ZeroDivisionError):
            run_optional("phase", lambda: 1 // 0)


class TestSurfacing:
    def test_record_increments_metric_and_emits_event(self):
        with collecting(MetricsRegistry()) as registry, \
                tracing(Tracer()) as tracer:
            with resilient() as log:
                log.record("classify.loop", "internal-error", "boom",
                           scope="L1")
        counters = registry.snapshot()["counters"]
        assert counters["resilience.degraded.classify.loop"] == 1
        events = [e for e in tracer.events if e.name == "resilience.degraded"]
        assert len(events) == 1
        assert events[0].attrs["phase"] == "classify.loop"
        assert events[0].attrs["scope"] == "L1"

    def test_diagnostics_of_publishes_res_codes(self):
        with resilient() as log:
            absorb(KeyError("k"), "classify.loop", scope="L1")
            absorb(BudgetExceeded("b", code="budget-expr-terms"), "classify")
        collector = diagnostics_of(log.records)
        codes = sorted(d.code for d in collector)
        assert codes == ["RES501", "RES503"]
        first = collector.sorted()[0]
        assert first.origin == "resilience"
