"""Per-loop / per-phase containment observed through ``analyze()``."""

import pytest

from repro.core.driver import DegradedLoopSummary
from repro.core.tripcount import TripCountKind
from repro.pipeline import AnalyzedProgram, analyze
from repro.resilience.errors import InjectedFault, MissingPhiError
from repro.resilience.faultinject import FaultPlan, injecting

SRC = """
i = 0
x = 0
L1: while i < 10 do
  x = x + i
  i = i + 1
endwhile
"""

NESTED_SRC = """
i = 0
L1: while i < 10 do
  j = 0
  L2: while j < 5 do
    A[i] = A[i] + j
    j = j + 1
  endwhile
  i = i + 1
endwhile
"""


class TestLoopContainment:
    def test_injected_loop_failure_degrades_that_loop(self):
        with injecting(FaultPlan(points={"classify.loop"})):
            program = analyze(SRC)
        summary = program.result.loops["L1"]
        assert isinstance(summary, DegradedLoopSummary)
        assert summary.degraded
        assert summary.classifications == {}
        assert summary.trip.kind is TripCountKind.UNKNOWN
        record = program.degradations[0]
        assert record.phase == "classify.loop"
        assert record.scope == "L1"
        assert record.diag_code == "RES501"

    def test_healthy_loop_summaries_are_not_degraded(self):
        program = analyze(SRC)
        assert not program.degraded
        assert not program.result.loops["L1"].degraded

    def test_inner_loop_failure_spares_the_outer_loop(self):
        with injecting(FaultPlan(points={"classify.loop"}, only_first=True)):
            program = analyze(NESTED_SRC)
        # loops are classified inner-first: the injected fault hits L2
        degraded = [h for h, s in program.result.loops.items() if s.degraded]
        healthy = [h for h, s in program.result.loops.items() if not s.degraded]
        assert len(degraded) == 1 and len(healthy) == 1
        outer = program.result.loops[healthy[0]]
        assert outer.classifications  # the other loop still classified

    def test_tripcount_failure_keeps_classifications(self):
        with injecting(FaultPlan(points={"classify.tripcount"})):
            program = analyze(SRC)
        summary = program.result.loops["L1"]
        assert summary.trip.kind is TripCountKind.UNKNOWN
        assert summary.classifications  # classification survived
        assert program.result.describe(
            program.ssa_name("i", "L1")
        ).startswith("(L1,")
        assert any(r.phase == "classify.tripcount"
                   for r in program.degradations)


class TestPhaseContainment:
    def test_scalar_pass_failure_skips_optimize(self):
        with injecting(FaultPlan(points={"scalar.gvn"})):
            program = analyze(SRC)
        assert isinstance(program, AnalyzedProgram)
        skipped = [r for r in program.degradations if r.action == "skipped"]
        assert skipped and skipped[0].diag_code == "RES502"
        # the unoptimized pipeline still classifies the IV
        assert program.result.describe(
            program.ssa_name("i", "L1")
        ).startswith("(L1,")

    def test_transient_optimize_failure_retries_and_succeeds(self):
        plan = FaultPlan(points={"scalar.sccp"}, only_first=True,
                         transient=True)
        with injecting(plan):
            program = analyze(SRC)
        assert [r.action for r in program.degradations] == ["retried"]
        assert program.degradations[0].diag_code == "RES504"
        assert program.result.describe(
            program.ssa_name("i", "L1")
        ).startswith("(L1,")

    def test_frontend_failure_degrades_to_empty_program(self):
        with injecting(FaultPlan(points={"frontend.parse"})):
            program = analyze(SRC)
        assert isinstance(program, AnalyzedProgram)
        assert not program.result.loops
        assert program.degradations[0].diag_code == "RES505"

    def test_ssa_failure_degrades_to_empty_classifications(self):
        with injecting(FaultPlan(points={"ssa.construct"})):
            program = analyze(SRC)
        assert isinstance(program, AnalyzedProgram)
        assert not program.result.loops or all(
            not s.classifications for s in program.result.loops.values()
        )
        assert any(r.diag_code == "RES505" for r in program.degradations)

    def test_real_frontend_errors_still_raise(self):
        from repro.frontend.lexer import FrontendError

        with pytest.raises(FrontendError):
            analyze("L1: while do\n")


class TestStrictMode:
    def test_strict_reraises_injected_fault(self):
        with injecting(FaultPlan(points={"classify.loop"})):
            with pytest.raises(InjectedFault):
                analyze(SRC, strict=True)

    def test_strict_clean_run_matches_default(self):
        program = analyze(SRC, strict=True)
        assert not program.degraded
        assert program.result.describe(
            program.ssa_name("x", "L1")
        ).startswith("(L1, 0,")


class TestSsaNameRegression:
    """``ssa_name`` raises MissingPhiError, never a bare KeyError crash."""

    def test_missing_variable_raises_missing_phi(self):
        program = analyze(SRC)
        with pytest.raises(MissingPhiError):
            program.ssa_name("nosuch", "L1")

    def test_missing_header_raises_missing_phi(self):
        program = analyze(SRC)
        with pytest.raises(MissingPhiError):
            program.ssa_name("i", "L999")

    def test_still_catchable_as_keyerror(self):
        program = analyze(SRC)
        with pytest.raises(KeyError):
            program.ssa_name("nosuch", "L1")

    def test_degraded_program_lookup_degrades_not_crashes(self):
        with injecting(FaultPlan(points={"frontend.parse"})):
            program = analyze(SRC)
        with pytest.raises(MissingPhiError):
            program.ssa_name("i", "L1")


class TestClosedFormGuards:
    def test_fit_polynomial_none_on_oversized_system(self):
        from repro.resilience.budget import AnalysisBudget, budgeted
        from repro.symbolic.closedform import ClosedForm

        values = [0, 1, 4, 9, 16]
        assert ClosedForm.fit_polynomial(values) is not None
        with budgeted(AnalysisBudget(max_matrix_dim=2)):
            assert ClosedForm.fit_polynomial(values) is None

    def test_fit_none_on_oversized_mixed_system(self):
        from repro.resilience.budget import AnalysisBudget, budgeted
        from repro.symbolic.closedform import ClosedForm

        values = [1, 3, 7]  # degree 1 + one geometric base: a 3x3 system
        with budgeted(AnalysisBudget(max_matrix_dim=2)):
            assert ClosedForm.fit(values, degree=1, bases=[2]) is None

    def test_singular_matrix_degrades_not_raises(self, monkeypatch):
        from repro.obs.metrics import MetricsRegistry, collecting
        from repro.symbolic import closedform as cf
        from repro.symbolic.rational import Matrix, MatrixError

        def singular(self):
            raise MatrixError("singular matrix")

        monkeypatch.setattr(Matrix, "inverse", singular)
        with collecting(MetricsRegistry()) as registry:
            assert cf.ClosedForm.fit_polynomial([0, 1, 4]) is None
        assert registry.snapshot()["counters"]["closedform.degraded"] == 1


class TestReportSurfacing:
    def test_report_shows_resilience_section(self):
        from repro.report import format_report

        with injecting(FaultPlan(points={"classify.loop"})):
            program = analyze(SRC)
        text = format_report(program)
        assert "== resilience ==" in text
        assert "[RES501]" in text
        assert "[degraded]" in text  # the loop header line is flagged

    def test_clean_report_has_no_resilience_section(self):
        from repro.report import format_report

        text = format_report(analyze(SRC))
        assert "== resilience ==" not in text

    def test_lint_driver_publishes_res_diagnostics(self):
        from repro.diagnostics.driver import lint_source

        with injecting(FaultPlan(points={"classify.loop"})):
            findings = lint_source(SRC, execution=False)
        assert any(d.code == "RES501" for d in findings)
