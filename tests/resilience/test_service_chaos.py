"""Chaos on the serving path: seeded faults through the full worker pool.

The serving analogue of :mod:`tests.resilience.test_chaos`: with the
``serve.*`` fault points armed at a seeded rate inside real worker
processes, every request must still produce a protocol-valid response
(``ok`` or ``degraded``, never silence, never ``error`` for valid
input), every degraded response must carry its DegradationRecord and
RES5xx diagnostic, and the server must end the sweep alive and drain
cleanly.

``CHAOS_SEED=<int>`` narrows the sweep to one seed, mirroring the
pipeline chaos suite's CI sharding.
"""

import os

import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.resilience.retry import RetryPolicy
from repro.service import AnalysisServer, ServiceClient

DEFAULT_SEEDS = [101, 505]
SEEDS = (
    [int(os.environ["CHAOS_SEED"])]
    if os.environ.get("CHAOS_SEED")
    else DEFAULT_SEEDS
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05)

#: distinct fingerprints so the sweep exercises both shards and the
#: breaker tracks several keys
PROGRAMS = [
    f"i = 0\nx = 0\nL1: while i < {bound} do\n  x = x + i\n  i = i + 1\nendwhile\n"
    for bound in (10, 20, 30, 40)
]

RES_CODES = {"RES501", "RES506", "RES507", "RES508"}


def sweep(seed, requests=16):
    """Run one seeded chaos sweep; returns (statuses, server snapshots)."""
    with collecting(MetricsRegistry()):
        server = AnalysisServer(
            pool_size=2,
            retry_policy=FAST_RETRY,
            cache_capacity=0,  # every request must reach the faulty worker
            breaker_threshold=3,
            breaker_cooldown_s=0.05,
            fault_spec={
                "points": ["serve.worker"],
                "rate": 0.4,
                "seed": seed,
            },
        )
        host, port = server.start()
        statuses = []
        try:
            with ServiceClient(host, port, timeout_s=30.0) as client:
                for index in range(requests):
                    response = client.analyze(
                        PROGRAMS[index % len(PROGRAMS)]
                    )
                    statuses.append(
                        (
                            response["status"],
                            response["results"][0].get("error", {}).get("code"),
                        )
                    )
                    check_contract(response)
                assert client.health()["alive"] is True
                pool = client.stats()["pool"]
        finally:
            server.stop(grace_s=5.0)
        assert server.wait(timeout=1.0)
    return statuses, pool


def check_contract(response):
    """One response against the serving contract."""
    assert response["status"] in ("ok", "degraded")
    for result in response["results"]:
        if result["status"] == "ok":
            assert result["record"]["loops"]
            continue
        assert result["degradations"], result
        record = result["degradations"][-1]
        assert record["code"] == result["error"]["code"]
        assert record["diag_code"] in RES_CODES
        assert result["diagnostics"][0]["code"] == record["diag_code"]
        # the per-request registry saw this degradation
        counters = response["metrics"]["counters"]
        degraded = [
            name for name in counters if name.startswith("resilience.degraded.")
        ]
        assert degraded, counters


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_crash_sweep_obeys_the_contract(seed):
    statuses, pool = sweep(seed)
    assert len(statuses) == 16
    assert pool["alive"] == pool["size"] == 2
    # the sweep must actually inject something: crashes either recover
    # through retry (ok responses, crashes counted) or exhaust into
    # worker-crash / circuit-open degradations
    assert pool["crashes"] > 0, statuses
    assert any(status == "ok" for status, _code in statuses)


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_sweep_is_deterministic(seed):
    """Same seed = same per-request status/code sequence, twice."""
    first, _ = sweep(seed, requests=8)
    second, _ = sweep(seed, requests=8)
    assert first == second
