"""Tests for scalar-memory promotion (the paper's LD/ST ssalink shape)."""

from repro.ir.interp import Interpreter
from repro.ir.parser import parse_function
from repro.pipeline import analyze_function
from repro.scalar.mem2reg import promote_scalars

MEMORY_COUNTER = """
func f(n) arrays(count, A) {
entry:
  store @count, 0
  jump L1
L1:
  %c = load @count
  %c2 = add %c, 1
  store @count, %c2
  store @A[%c2], %c2
  %t = cmp %c2 < %n
  branch %t, L1, exit
exit:
  %r = load @count
  return %r
}
"""


class TestPromotion:
    def test_promotes_and_preserves(self):
        f = parse_function(MEMORY_COUNTER)
        expected = Interpreter(f).run({"n": 5})
        f2 = parse_function(MEMORY_COUNTER)
        promoted = promote_scalars(f2)
        assert promoted == ["count"]
        assert "count" not in f2.arrays
        result = Interpreter(f2).run({"n": 5})
        assert result.return_value == expected.return_value == 5
        assert result.arrays.get("A") == expected.arrays.get("A")

    def test_promoted_counter_classifies_as_iv(self):
        """The paper's memory-resident counter becomes a plain linear IV."""
        from repro.core.classes import InductionVariable

        f = parse_function(MEMORY_COUNTER)
        promote_scalars(f)
        from repro.analysis.loopsimplify import simplify_loops

        simplify_loops(f)
        program = analyze_function(f)
        header_phi = program.ssa.block("L1").phis()
        classes = [program.classification(p.result) for p in header_phi]
        assert any(
            isinstance(c, InductionVariable) and c.step == 1 for c in classes
        )

    def test_subscripted_arrays_untouched(self):
        f = parse_function(MEMORY_COUNTER)
        promote_scalars(f)
        from repro.ir.instructions import Load, Store

        accesses = [i for b in f for i in b if isinstance(i, (Load, Store))]
        assert all(i.array == "A" for i in accesses)

    def test_mixed_use_not_promoted(self):
        source = """
func f() arrays(x) {
entry:
  store @x, 1
  %v = load @x[0]
  return %v
}
"""
        f = parse_function(source)
        assert promote_scalars(f) == []

    def test_name_collision_resolved(self):
        source = """
func f(count) arrays(count2) {
entry:
  %a = copy %count
  store @count2, %a
  %v = load @count2
  return %v
}
"""
        f = parse_function(source)
        promoted = promote_scalars(f)
        assert promoted == ["count2"]
        assert Interpreter(f).run({"count": 9}).return_value == 9
