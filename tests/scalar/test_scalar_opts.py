"""Tests for SCCP, copy propagation, DCE and simplification."""

from repro.frontend.source import compile_source
from repro.ir.instructions import Assign, Phi
from repro.ir.interp import Interpreter
from repro.ir.parser import parse_function
from repro.ir.values import Const, Ref
from repro.scalar.copyprop import propagate_copies
from repro.scalar.dce import eliminate_dead_code
from repro.scalar.sccp import BOTTOM, run_sccp
from repro.scalar.simplify import simplify_instructions
from repro.ssa.construct import construct_ssa


def to_ssa(source):
    f = compile_source(source)
    construct_ssa(f)
    return f


class TestSCCP:
    def test_constant_chain(self):
        f = to_ssa("a = 2\nb = a + 3\nc = b * b\nreturn c")
        result = run_sccp(f, apply=False)
        constants = {
            name: v for name, v in result.values.items() if isinstance(v, int)
        }
        assert 2 in constants.values()
        assert 5 in constants.values()
        assert 25 in constants.values()

    def test_params_are_bottom(self):
        f = to_ssa("return n")
        result = run_sccp(f, apply=False)
        assert result.values["n"] == BOTTOM

    def test_loop_variable_is_bottom(self):
        f = to_ssa("i = 0\nfor i = 1 to n do\n  x = i\nendfor\nreturn i")
        result = run_sccp(f, apply=False)
        header_phi = f.block("loop1").phis()[0] if "loop1" in f.blocks else None
        bottoms = [n for n, v in result.values.items() if v == BOTTOM]
        assert any(n.startswith("i.") for n in bottoms)

    def test_conditional_constant(self):
        """SCCP's defining feature: the false branch is never executed."""
        f = to_ssa("x = 1\nif x > 0 then\n  y = 5\nelse\n  y = 7\nendif\nreturn y")
        result = run_sccp(f, apply=False)
        assert result.constant_of(_phi_result(f)) == 5

    def test_apply_rewrites_uses(self):
        f = to_ssa("a = 4\nb = a + n\nreturn b")
        run_sccp(f)
        add = [i for b in f for i in b if i.result and i.result.startswith("b")][0]
        assert Const(4) in add.uses()

    def test_mul_zero_identity(self):
        f = to_ssa("b = n * 0\nreturn b")
        result = run_sccp(f, apply=False)
        assert result.constant_of(_name_of(f, "b")) == 0

    def test_constant_compare_folds(self):
        f = to_ssa("x = 3\nc = 0\nif x < 5 then\n  c = 1\nendif\nreturn c")
        result = run_sccp(f, apply=False)
        values = set(result.values.values())
        assert 1 in values

    def test_semantics_preserved(self):
        source = "a = 3\ns = 0\nfor i = a to n do\n  s = s + i\nendfor\nreturn s"
        f1 = to_ssa(source)
        expected = Interpreter(f1).run({"n": 9}).return_value
        f2 = to_ssa(source)
        run_sccp(f2)
        assert Interpreter(f2).run({"n": 9}).return_value == expected


class TestCopyProp:
    def test_chain_collapsed(self):
        f = parse_function(
            "func f(n) {\ne:\n  %a = copy %n\n  %b = copy %a\n  %c = add %b, 1\n  return %c\n}"
        )
        assert propagate_copies(f) >= 1
        add = f.block("e").instructions[2]
        assert add.lhs == Ref("n")

    def test_constant_copy(self):
        f = parse_function(
            "func f() {\ne:\n  %a = copy 7\n  %b = add %a, 1\n  return %b\n}"
        )
        propagate_copies(f)
        assert Const(7) in f.block("e").instructions[1].uses()

    def test_no_copies_no_change(self):
        f = parse_function("func f(n) {\ne:\n  %b = add %n, 1\n  return %b\n}")
        assert propagate_copies(f) == 0


class TestDCE:
    def test_dead_removed_live_kept(self):
        f = parse_function(
            """
func f(n) arrays(A) {
e:
  %dead = add %n, 1
  %live = add %n, 2
  store @A[0], %live
  return
}
"""
        )
        assert eliminate_dead_code(f) == 1
        names = [i.result for b in f for i in b if i.result]
        assert names == ["live"]

    def test_transitive_liveness(self):
        f = parse_function(
            "func f(n) {\ne:\n  %a = add %n, 1\n  %b = add %a, 1\n  return %b\n}"
        )
        assert eliminate_dead_code(f) == 0

    def test_branch_condition_live(self):
        f = parse_function(
            "func f(n) {\ne:\n  %c = cmp %n < 3\n  branch %c, a, b\na:\n  return\nb:\n  return\n}"
        )
        assert eliminate_dead_code(f) == 0

    def test_dead_phi_cycle_removed(self):
        f = parse_function(
            """
func f(c) {
e:
  %x.0 = copy 1
  jump h
h:
  %x.1 = phi [e: %x.0, h: %x.2]
  %x.2 = add %x.1, 1
  branch %c, h, out
out:
  return
}
"""
        )
        assert eliminate_dead_code(f) == 3


class TestSimplify:
    def test_identities(self):
        f = parse_function(
            """
func f(n) {
e:
  %a = add %n, 0
  %b = mul %a, 1
  %c = sub %b, %b
  %d = exp %n, 0
  %e1 = div %n, 1
  %f1 = mod %n, 1
  return %c
}
"""
        )
        count = simplify_instructions(f)
        assert count == 6
        kinds = [type(i).__name__ for i in f.block("e").instructions]
        assert all(k == "Assign" for k in kinds)

    def test_single_input_phi(self):
        f = parse_function(
            "func f(n) {\ne:\n  jump b\nb:\n  %p = phi [e: %n]\n  return %p\n}"
        )
        assert simplify_instructions(f) == 1
        assert isinstance(f.block("b").instructions[0], Assign)

    def test_phi_with_equal_inputs(self):
        f = parse_function(
            """
func f(c, n) {
e:
  branch %c, a, b
a:
  jump j
b:
  jump j
j:
  %p = phi [a: %n, b: %n]
  return %p
}
"""
        )
        assert simplify_instructions(f) == 1

    def test_semantics_preserved(self):
        source = "y = x * 1 + 0\nz = y - 0\nreturn z + x * 0"
        f1 = to_ssa(source)
        expected = Interpreter(f1).run({"x": 13}).return_value
        f2 = to_ssa(source)
        simplify_instructions(f2)
        propagate_copies(f2)
        assert Interpreter(f2).run({"x": 13}).return_value == expected


def _phi_result(f):
    for block in f:
        for inst in block:
            if isinstance(inst, Phi):
                return inst.result
    raise AssertionError("no phi found")


def _name_of(f, prefix):
    for block in f:
        for inst in block:
            if inst.result and inst.result.startswith(prefix):
                return inst.result
    raise AssertionError(f"no {prefix}* definition")


class TestGVN:
    def to_ssa_fn(self, source):
        return to_ssa(source)

    def test_redundant_binop_eliminated(self):
        from repro.scalar.gvn import run_gvn

        f = parse_function(
            "func f(a, b) {\ne:\n  %x = add %a, %b\n  %y = add %a, %b\n"
            "  %z = add %x, %y\n  return %z\n}"
        )
        assert run_gvn(f) == 1
        inst = f.block("e").instructions[1]
        assert isinstance(inst, Assign)
        # the final add now uses x twice
        final = f.block("e").instructions[2]
        assert str(final.lhs) == "%x" and str(final.rhs) == "%x"

    def test_commutative_operands(self):
        from repro.scalar.gvn import run_gvn

        f = parse_function(
            "func f(a, b) {\ne:\n  %x = add %a, %b\n  %y = add %b, %a\n  %z = add %x, %y\n  return %z\n}"
        )
        assert run_gvn(f) == 1

    def test_subtraction_not_commutative(self):
        from repro.scalar.gvn import run_gvn

        f = parse_function(
            "func f(a, b) {\ne:\n  %x = sub %a, %b\n  %y = sub %b, %a\n  %z = add %x, %y\n  return %z\n}"
        )
        assert run_gvn(f) == 0

    def test_scoping_respects_dominance(self):
        from repro.scalar.gvn import run_gvn

        # the same expression in two sibling branches must NOT unify
        f = parse_function(
            """
func f(c, a) {
e:
  branch %c, l, r
l:
  %x = add %a, 1
  jump j
r:
  %y = add %a, 1
  jump j
j:
  %p = phi [l: %x, r: %y]
  return %p
}
"""
        )
        assert run_gvn(f) == 0

    def test_dominating_definition_reused_in_branch(self):
        from repro.scalar.gvn import run_gvn

        f = parse_function(
            """
func f(c, a) {
e:
  %x = add %a, 1
  branch %c, l, j
l:
  %y = add %a, 1
  jump j
j:
  return %x
}
"""
        )
        assert run_gvn(f) == 1

    def test_numbers_through_copies(self):
        from repro.scalar.gvn import run_gvn

        f = parse_function(
            "func f(a) {\ne:\n  %x = copy %a\n  %y = add %x, 1\n  %z = add %a, 1\n  %w = add %y, %z\n  return %w\n}"
        )
        assert run_gvn(f) == 1

    def test_loads_not_unified(self):
        from repro.scalar.gvn import run_gvn

        f = parse_function(
            "func f(i) arrays(A) {\ne:\n  %x = load @A[%i]\n  store @A[%i], 9\n  %y = load @A[%i]\n  %z = add %x, %y\n  return %z\n}"
        )
        assert run_gvn(f) == 0  # the store may change the value

    def test_semantics_preserved(self):
        from repro.scalar.gvn import run_gvn

        source = (
            "x = a * b + a\ny = a * b + a\nz = 0\n"
            "for i = 1 to n do\n  z = z + x + y\nendfor\nreturn z"
        )
        f1 = to_ssa(source)
        expected = Interpreter(f1).run({"a": 2, "b": 3, "n": 4}).return_value
        f2 = to_ssa(source)
        run_gvn(f2)
        from repro.ir.verify import verify_function

        verify_function(f2, ssa=True)
        assert Interpreter(f2).run({"a": 2, "b": 3, "n": 4}).return_value == expected
