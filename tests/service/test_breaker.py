"""The per-fingerprint circuit breaker state machine (fake clock)."""

import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.service.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_s=30.0, clock=clock)


class TestClosed:
    def test_unknown_key_is_allowed(self, breaker):
        assert breaker.allow("fp")
        assert breaker.state("fp") == "closed"
        assert breaker.retry_after_s("fp") == 0.0

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure("fp")
        breaker.record_failure("fp")
        assert breaker.state("fp") == "closed"
        assert breaker.allow("fp")

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure("fp")
        breaker.record_failure("fp")
        breaker.record_success("fp")
        breaker.record_failure("fp")
        breaker.record_failure("fp")
        assert breaker.state("fp") == "closed"

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestOpen:
    def test_threshold_failures_open_the_circuit(self, breaker):
        with collecting(MetricsRegistry()) as registry:
            for _ in range(3):
                breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        assert registry.snapshot()["counters"]["service.breaker.opened"] == 1

    def test_open_circuit_sheds(self, breaker):
        for _ in range(3):
            breaker.record_failure("fp")
        with collecting(MetricsRegistry()) as registry:
            assert not breaker.allow("fp")
            assert not breaker.allow("fp")
        assert breaker.shed_total == 2
        assert registry.snapshot()["counters"]["service.breaker.shed"] == 2

    def test_other_keys_are_unaffected(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad")
        assert breaker.allow("good")

    def test_retry_after_counts_down(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("fp")
        assert breaker.retry_after_s("fp") == 30.0
        clock.advance(12.0)
        assert breaker.retry_after_s("fp") == 18.0


class TestHalfOpen:
    def test_cooldown_admits_one_trial(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("fp")
        clock.advance(30.0)
        assert breaker.allow("fp")  # the trial
        assert breaker.state("fp") == "half-open"
        assert not breaker.allow("fp")  # trial in flight: shed

    def test_trial_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("fp")
        clock.advance(30.0)
        assert breaker.allow("fp")
        breaker.record_success("fp")
        assert breaker.state("fp") == "closed"
        assert breaker.allow("fp")

    def test_trial_failure_reopens_immediately(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("fp")
        clock.advance(30.0)
        assert breaker.allow("fp")
        breaker.record_failure("fp")  # one failure, not threshold, reopens
        assert breaker.state("fp") == "open"
        assert not breaker.allow("fp")
        clock.advance(30.0)
        assert breaker.allow("fp")  # next cooldown, next trial

    def test_stale_trial_expires_into_a_fresh_one(self, breaker, clock):
        """A trial that never reports back must not shed the key forever."""
        for _ in range(3):
            breaker.record_failure("fp")
        clock.advance(30.0)
        assert breaker.allow("fp")  # the trial -- which never reports
        clock.advance(29.9)
        assert not breaker.allow("fp")  # still within the trial's cooldown
        clock.advance(0.1)
        assert breaker.allow("fp")  # stale trial expired: fresh trial
        assert breaker.state("fp") == "half-open"
        assert not breaker.allow("fp")  # the fresh trial is now in flight
        breaker.record_success("fp")
        assert breaker.state("fp") == "closed"


class TestSnapshot:
    def test_snapshot_lists_open_keys(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad")
        breaker.record_failure("meh")
        snapshot = breaker.snapshot()
        assert snapshot["tracked"] == 2
        assert snapshot["open"] == ["bad"]
        assert snapshot["threshold"] == 3
        assert snapshot["cooldown_s"] == 30.0
