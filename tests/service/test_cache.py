"""The bounded LRU result cache and its crash-tolerant wrappers."""

import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.resilience.faultinject import injecting
from repro.service.cache import ResultCache, cache_key, safe_lookup, safe_store


class TestCacheKey:
    def test_no_options_is_the_bare_fingerprint(self):
        assert cache_key("abc123") == "abc123"
        assert cache_key("abc123", {}) == "abc123"

    def test_options_change_the_key(self):
        assert cache_key("fp", {"ranges": True}) != cache_key("fp")
        assert cache_key("fp", {"ranges": True}) != cache_key(
            "fp", {"ranges": False}
        )

    def test_option_ordering_is_canonicalized(self):
        assert cache_key("fp", {"a": 1, "b": 2}) == cache_key(
            "fp", {"b": 2, "a": 1}
        )


class TestLRU:
    def test_get_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {"status": "ok"})
        assert cache.get("k") == {"status": "ok"}
        assert len(cache) == 1

    def test_eviction_drops_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh: b is now the LRU entry
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put("a", {"v": 10})  # refresh, not insert
        cache.put("c", {"v": 3})
        assert cache.get("a") == {"v": 10}
        assert cache.get("b") is None

    def test_capacity_zero_stores_nothing(self):
        cache = ResultCache(capacity=0)
        cache.put("a", {"v": 1})
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear_and_snapshot(self):
        cache = ResultCache(capacity=8)
        cache.put("a", {"v": 1})
        assert cache.snapshot() == {"entries": 1, "capacity": 8}
        cache.clear()
        assert cache.snapshot() == {"entries": 0, "capacity": 8}

    def test_metrics(self):
        with collecting(MetricsRegistry()) as registry:
            cache = ResultCache(capacity=1)
            cache.get("a")  # miss
            cache.put("a", {"v": 1})
            cache.get("a")  # hit
            cache.put("b", {"v": 2})  # evicts a
        counters = registry.snapshot()["counters"]
        assert counters["service.cache.misses"] == 1
        assert counters["service.cache.hits"] == 1
        assert counters["service.cache.evictions"] == 1


class TestContainment:
    """A broken cache degrades throughput, never a request."""

    def test_safe_lookup_contains_the_injected_fault(self):
        cache = ResultCache(capacity=4)
        cache.put("k", {"v": 1})
        with collecting(MetricsRegistry()) as registry:
            with injecting("serve.cache"):
                value, cache_ok = safe_lookup(cache, "k")
        assert value is None and not cache_ok
        assert registry.snapshot()["counters"]["service.cache.errors"] == 1

    def test_safe_store_contains_the_injected_fault(self):
        cache = ResultCache(capacity=4)
        with collecting(MetricsRegistry()) as registry:
            with injecting("serve.cache"):
                assert not safe_store(cache, "k", {"v": 1})
        assert len(cache) == 0
        assert registry.snapshot()["counters"]["service.cache.errors"] == 1

    def test_safe_wrappers_pass_through_when_healthy(self):
        cache = ResultCache(capacity=4)
        assert safe_store(cache, "k", {"v": 1})
        assert safe_lookup(cache, "k") == ({"v": 1}, True)
