"""The sharded worker pool: dispatch, crash respawn, hung-worker kill.

These spawn real worker processes, so each scenario uses the smallest
pool that exercises it and shuts it down promptly.
"""

import pytest

from repro.service.pool import WorkerPool
from repro.service.worker import CRASH_EXIT_CODE, run_job

GOOD = """\
i = 0
x = 0
L1: while i < 10 do
  x = x + i
  i = i + 1
endwhile
"""

BAD = "L1: while i <\n"


@pytest.fixture
def pool():
    pool = WorkerPool(size=2, request_timeout_s=30.0)
    pool.start()
    yield pool
    pool.shutdown(grace_s=5.0)


class TestSharding:
    def test_shard_is_deterministic_and_in_range(self):
        pool = WorkerPool(size=4)
        shards = {pool.shard_of(f"fp{i}") for i in range(64)}
        assert shards <= set(range(4))
        assert len(shards) > 1  # crc32 spreads fingerprints around
        assert pool.shard_of("fp1") == pool.shard_of("fp1")

    def test_size_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(size=0)

    def test_submit_before_start_is_misuse(self):
        with pytest.raises(RuntimeError, match="before start"):
            WorkerPool(size=1).submit({"source": GOOD})


class TestDispatch:
    def test_good_job_round_trips(self, pool):
        outcome = pool.submit(
            {"id": 1, "source": GOOD, "fingerprint": "fp", "options": {}}
        )
        assert outcome.ok
        assert outcome.response["ok"]
        assert not outcome.response["degraded"]
        assert outcome.response["record"]["function"] == "main"
        assert outcome.response["record"]["loops"]
        assert outcome.worker_id == pool.shard_of("fp")

    def test_frontend_error_is_a_structured_failure_not_a_crash(self, pool):
        outcome = pool.submit({"id": 2, "source": BAD, "fingerprint": "fp"})
        assert outcome.ok  # the *dispatch* succeeded
        assert not outcome.response["ok"]
        assert outcome.response["error"]["code"] == "frontend-error"
        assert pool.crashes == 0

    def test_jobs_shard_across_workers(self, pool):
        seen = set()
        for index in range(8):
            fingerprint = f"fp{index}"
            outcome = pool.submit(
                {"id": index, "source": GOOD, "fingerprint": fingerprint}
            )
            assert outcome.ok
            seen.add(outcome.worker_id)
        assert seen == {0, 1}

    def test_snapshot_counts_jobs(self, pool):
        pool.submit({"id": 1, "source": GOOD, "fingerprint": "fp"})
        snapshot = pool.snapshot()
        assert snapshot["size"] == 2
        assert snapshot["alive"] == 2
        assert snapshot["jobs"] >= 1


class TestCrash:
    def test_crash_detected_and_respawned(self):
        pool = WorkerPool(
            size=1,
            request_timeout_s=30.0,
            fault_spec={"points": ["serve.worker"], "rate": 1.0},
        )
        pool.start()
        try:
            outcome = pool.submit({"id": 1, "source": GOOD, "fingerprint": "fp"})
            assert not outcome.ok
            assert outcome.crashed
            assert outcome.error_code == "worker-crash"
            assert str(CRASH_EXIT_CODE) in outcome.error_message
            assert pool.crashes == 1
            assert pool.alive_count() == 1  # respawned
            assert pool.snapshot()["respawns"] >= 1
        finally:
            pool.shutdown(grace_s=5.0)

    def test_incarnation_seeds_differ_across_respawns(self):
        # rate-based plans must not replay the same stream after a
        # respawn, or "crash then succeed on retry" can never happen
        pool = WorkerPool(size=1, fault_spec={"points": ["x"], "seed": 7})
        worker = pool._workers[0]
        first = dict(pool.fault_spec)
        worker.respawns = 1
        # _spawn derives the per-incarnation seed without mutating the
        # pool-level spec
        assert pool.fault_spec == first


class TestHang:
    def test_hung_worker_is_killed_and_respawned(self):
        pool = WorkerPool(size=1, request_timeout_s=0.5)
        pool.start()
        try:
            outcome = pool.submit(
                {"id": 1, "source": GOOD, "fingerprint": "fp",
                 "chaos_sleep_s": 30.0}
            )
            assert not outcome.ok
            assert outcome.timed_out
            assert outcome.error_code == "request-timeout"
            assert pool.timeouts == 1
            # the respawned worker serves the next job
            outcome = pool.submit({"id": 2, "source": GOOD, "fingerprint": "fp"})
            assert outcome.ok
        finally:
            pool.shutdown(grace_s=5.0)

    def test_per_job_timeout_only_tightens(self):
        pool = WorkerPool(size=1, request_timeout_s=0.4)
        pool.start()
        try:
            outcome = pool.submit(
                {"id": 1, "source": GOOD, "fingerprint": "fp",
                 "chaos_sleep_s": 30.0},
                timeout_s=60.0,  # looser than the pool's: ignored
            )
            assert outcome.timed_out
        finally:
            pool.shutdown(grace_s=5.0)


class TestShutdown:
    def test_shutdown_is_idempotent_and_stops_workers(self):
        pool = WorkerPool(size=2)
        pool.start()
        pool.shutdown(grace_s=5.0)
        assert pool.alive_count() == 0
        pool.shutdown(grace_s=5.0)  # no raise


class TestRunJobInProcess:
    """run_job is the worker loop's body; exercised here without a process."""

    def test_missing_source_is_malformed(self):
        response = run_job({"id": 3})
        assert not response["ok"]
        assert response["error"]["code"] == "malformed-request"

    def test_good_source_builds_a_record(self):
        response = run_job({"id": 4, "source": GOOD, "options": {}})
        assert response["ok"]
        assert response["record"]["function"] == "main"
        assert response["record"]["loops"]
        assert response["report"] is None

    def test_report_option(self):
        response = run_job({"id": 5, "source": GOOD, "options": {"report": True}})
        assert "loop L1" in response["report"]
