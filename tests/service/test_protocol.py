"""The wire protocol: framing, oversize, truncation, undecodable frames."""

import json
import socket
import struct
import threading

import pytest

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    OversizedMessage,
    ProtocolError,
    error_response,
    recv_message,
    send_message,
)

_HEADER = struct.Struct("!I")


def pair():
    return socket.socketpair()


class TestRoundTrip:
    def test_send_then_recv(self):
        left, right = pair()
        try:
            send_message(left, {"op": "health", "n": 7})
            assert recv_message(right) == {"op": "health", "n": 7}
        finally:
            left.close()
            right.close()

    def test_multiple_frames_on_one_stream(self):
        left, right = pair()
        try:
            for index in range(3):
                send_message(left, {"id": index})
            assert [recv_message(right)["id"] for _ in range(3)] == [0, 1, 2]
        finally:
            left.close()
            right.close()

    def test_clean_eof_between_frames_is_none(self):
        left, right = pair()
        try:
            send_message(left, {"op": "health"})
            left.close()
            assert recv_message(right) == {"op": "health"}
            assert recv_message(right) is None
        finally:
            right.close()

    def test_large_frame_below_limit(self):
        left, right = pair()
        payload = {"source": "x" * 300000}
        try:
            writer = threading.Thread(target=send_message, args=(left, payload))
            writer.start()
            assert recv_message(right) == payload
            writer.join()
        finally:
            left.close()
            right.close()


class TestSendLimit:
    def test_oversized_frame_refused_before_sending(self):
        left, right = pair()
        try:
            with pytest.raises(OversizedMessage) as info:
                send_message(left, {"report": "x" * 256}, max_bytes=64)
            assert info.value.limit == 64
            # nothing hit the wire: the stream is still clean
            send_message(left, {"op": "health"}, max_bytes=64)
            assert recv_message(right) == {"op": "health"}
        finally:
            left.close()
            right.close()

    def test_frame_at_the_limit_is_sent(self):
        left, right = pair()
        payload = {"k": "v"}
        limit = len(json.dumps(payload, sort_keys=True).encode())
        try:
            send_message(left, payload, max_bytes=limit)
            assert recv_message(right) == payload
        finally:
            left.close()
            right.close()


class TestFailureModes:
    def test_oversized_header_raises_without_reading_body(self):
        left, right = pair()
        try:
            left.sendall(_HEADER.pack(MAX_MESSAGE_BYTES + 1))
            with pytest.raises(OversizedMessage) as info:
                recv_message(right)
            assert info.value.code == "request-overflow"
            assert info.value.size == MAX_MESSAGE_BYTES + 1
            assert info.value.limit == MAX_MESSAGE_BYTES
        finally:
            left.close()
            right.close()

    def test_custom_limit(self):
        left, right = pair()
        try:
            send_message(left, {"op": "x" * 64})
            with pytest.raises(OversizedMessage):
                recv_message(right, max_bytes=16)
        finally:
            left.close()
            right.close()

    def test_eof_mid_body_is_a_protocol_error(self):
        left, right = pair()
        try:
            body = json.dumps({"op": "health"}).encode()
            left.sendall(_HEADER.pack(len(body)) + body[: len(body) // 2])
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(right)
        finally:
            right.close()

    def test_eof_after_header_is_a_protocol_error(self):
        left, right = pair()
        try:
            left.sendall(_HEADER.pack(10))
            left.close()
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            right.close()

    def test_undecodable_payload(self):
        left, right = pair()
        try:
            body = b"not json at all"
            left.sendall(_HEADER.pack(len(body)) + body)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_non_object_payload(self):
        left, right = pair()
        try:
            body = json.dumps([1, 2, 3]).encode()
            left.sendall(_HEADER.pack(len(body)) + body)
            with pytest.raises(ProtocolError, match="not a JSON object"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_protocol_error_codes(self):
        assert ProtocolError.code == "malformed-request"
        assert OversizedMessage.code == "request-overflow"


class TestErrorResponse:
    def test_shape(self):
        response = error_response("malformed-request", "bad frame", op="analyze")
        assert response == {
            "status": "error",
            "op": "analyze",
            "error": {"code": "malformed-request", "message": "bad frame"},
        }

    def test_op_optional(self):
        assert "op" not in error_response("request-overflow", "too big")
