"""Retry policy: attempt bounds, backoff shape, taxonomy classification."""

import random

import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.resilience.errors import ReproError, TransientFault
from repro.resilience.retry import (
    SERVICE_RETRY,
    RetryPolicy,
    call_with_retry,
    seed_retry_rng,
)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)

    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=10.0, jitter=0.0,
        )
        assert [policy.delay_s(k) for k in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_delay_capped(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=3.0, jitter=0.0
        )
        assert policy.delay_s(5) == 3.0

    def test_seeded_jitter_is_reproducible(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.5)
        first = [policy.delay_s(k, random.Random(7)) for k in range(3)]
        second = [policy.delay_s(k, random.Random(7)) for k in range(3)]
        assert first == second
        assert all(0.5 <= d / policy.delay_s(k) <= 1.0
                   for k, d in enumerate(first))

    def test_retryable_follows_the_taxonomy(self):
        policy = RetryPolicy()
        assert policy.retryable("worker-crash")
        assert policy.retryable("transient-fault")
        assert not policy.retryable("request-timeout")  # DEGRADE
        assert not policy.retryable("frontend-error")  # ABORT
        assert not policy.retryable("no-such-code")

    def test_service_default_is_bounded(self):
        assert SERVICE_RETRY.max_attempts == 3
        assert SERVICE_RETRY.max_delay_s <= 1.0


class TestCallWithRetry:
    def test_first_success_never_sleeps(self):
        sleeps = []
        assert call_with_retry(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_failure_retried_to_success(self):
        sleeps, retries = [], []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise TransientFault("blip", phase="serve.worker")
            return "done"

        with collecting(MetricsRegistry()) as registry:
            result = call_with_retry(
                flaky,
                policy=RetryPolicy(max_attempts=3, jitter=0.0),
                sleep=sleeps.append,
                on_retry=lambda error, attempt: retries.append(
                    (error.code, attempt)
                ),
            )
        assert result == "done"
        assert attempts["n"] == 3
        assert len(sleeps) == 2
        assert retries == [("transient-fault", 0), ("transient-fault", 1)]
        assert registry.snapshot()["counters"]["service.retries"] == 2

    def test_non_retryable_code_raises_immediately(self):
        attempts = {"n": 0}

        def hopeless():
            attempts["n"] += 1
            raise ReproError("hung", code="request-timeout")

        with pytest.raises(ReproError) as info:
            call_with_retry(hopeless, sleep=lambda _s: None)
        assert attempts["n"] == 1
        assert info.value.code == "request-timeout"

    def test_exhausted_attempts_raise_the_original_error(self):
        attempts = {"n": 0}

        def always_crashing():
            attempts["n"] += 1
            raise ReproError("worker died", code="worker-crash")

        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(ReproError) as info:
            call_with_retry(always_crashing, policy=policy, sleep=lambda _s: None)
        assert attempts["n"] == 3
        assert info.value.code == "worker-crash"

    def test_unregistered_exception_classified_and_not_retried(self):
        # plain exceptions wrap to internal-error (DEGRADE): no retry
        attempts = {"n": 0}

        def broken():
            attempts["n"] += 1
            raise KeyError("boom")

        with pytest.raises(KeyError):
            call_with_retry(broken, sleep=lambda _s: None)
        assert attempts["n"] == 1

    def test_default_rng_applies_the_policy_jitter(self):
        """jitter > 0 must jitter even when the caller passes no rng."""
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=1.0, multiplier=1.0,
            max_delay_s=1.0, jitter=0.5,
        )

        def crashing():
            raise ReproError("x", code="worker-crash")

        def sleeps_for(seed):
            seed_retry_rng(seed)
            sleeps = []
            with pytest.raises(ReproError):
                call_with_retry(crashing, policy=policy, sleep=sleeps.append)
            return sleeps

        first = sleeps_for(7)
        assert len(first) == 3
        assert all(0.5 <= s <= 1.0 for s in first)
        assert len(set(first)) > 1  # not backing off in lockstep
        assert sleeps_for(7) == first  # seeded: reproducible

    def test_max_attempts_one_disables_retries(self):
        attempts = {"n": 0}

        def crashing():
            attempts["n"] += 1
            raise ReproError("x", code="worker-crash")

        with pytest.raises(ReproError):
            call_with_retry(
                crashing, policy=RetryPolicy(max_attempts=1),
                sleep=lambda _s: None,
            )
        assert attempts["n"] == 1
