"""End-to-end server tests: the serving contract over real sockets.

The contract under test: only a malformed or oversized request yields
``status: error``; every analysis failure comes back ``status: degraded``
with a matching DegradationRecord and RES5xx diagnostic; and the server
survives all of it.
"""

import socket
import struct

import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.runlog import source_fingerprint
from repro.resilience.retry import RetryPolicy
from repro.service import AnalysisServer, ServiceClient
from repro.service.cache import cache_key
from repro.service.protocol import recv_message

GOOD = """\
i = 0
x = 0
L1: while i < 10 do
  x = x + i
  i = i + 1
endwhile
"""

BAD = "L1: while i <\n"

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05)


@pytest.fixture(scope="class")
def served():
    """One healthy server + its registry, shared across a test class."""
    with collecting(MetricsRegistry()) as registry:
        server = AnalysisServer(pool_size=2, retry_policy=FAST_RETRY)
        host, port = server.start()
        try:
            yield server, host, port, registry
        finally:
            server.stop(grace_s=5.0)


def client_for(served):
    _server, host, port, _registry = served
    return ServiceClient(host, port, timeout_s=30.0)


class TestHappyPath:
    def test_analyze_ok(self, served):
        with client_for(served) as client:
            response = client.analyze(GOOD)
        assert response["status"] == "ok"
        (result,) = response["results"]
        assert result["status"] == "ok"
        assert result["fingerprint"] == source_fingerprint(GOOD)
        assert result["record"]["loops"]
        assert result["degradations"] == []
        assert response["elapsed_s"] >= 0

    def test_repeat_request_is_served_from_cache(self, served):
        source = GOOD.replace("10", "11")
        with client_for(served) as client:
            first = client.analyze(source)
            second = client.analyze(source)
        assert "cached" not in first["results"][0]
        assert second["results"][0]["cached"] is True
        assert second["status"] == "ok"

    def test_options_key_the_cache(self, served):
        source = GOOD.replace("10", "12")
        with client_for(served) as client:
            client.analyze(source)
            report = client.analyze(source, options={"report": True})
        # different options: a fresh analysis, not the cached plain one
        assert "cached" not in report["results"][0]
        assert "loop L1" in report["results"][0]["report"]

    def test_batch_shards_across_the_pool(self, served):
        programs = [
            {"name": f"f{i}", "source": GOOD.replace("10", str(20 + i))}
            for i in range(6)
        ]
        with client_for(served) as client:
            response = client.analyze_batch(programs)
        assert response["status"] == "ok"
        assert len(response["results"]) == 6
        assert {r["worker"] for r in response["results"]} == {0, 1}

    def test_frontend_error_degrades_with_record(self, served):
        with client_for(served) as client:
            response = client.analyze(BAD)
        assert response["status"] == "degraded"
        (result,) = response["results"]
        assert result["error"]["code"] == "frontend-error"
        (record,) = result["degradations"]
        assert record["phase"] == "serve.worker"
        assert record["code"] == "frontend-error"
        assert record["diag_code"] == "RES501"
        assert result["diagnostics"][0]["code"] == "RES501"

    def test_client_errors_do_not_trip_the_breaker(self, served):
        server = served[0]
        with client_for(served) as client:
            for _ in range(4):
                client.analyze(BAD)
            response = client.analyze(BAD)
        # still degraded (answered), never shed
        assert response["results"][0]["error"]["code"] == "frontend-error"
        assert server.breaker.snapshot()["open"] == []

    def test_health_ready_stats(self, served):
        with client_for(served) as client:
            health = client.health()
            ready = client.ready()
            stats = client.stats()
        assert health == {"status": "ok", "op": "health", "alive": True}
        assert ready["ready"] is True
        assert ready["pool"]["alive"] == 2
        assert stats["uptime_s"] >= 0
        assert stats["pool"]["size"] == 2
        assert "service.requests" in stats["metrics"]["counters"]

    def test_unknown_op_is_a_request_error(self, served):
        with client_for(served) as client:
            response = client.request({"op": "explode"})
        assert response["status"] == "error"
        assert response["error"]["code"] == "malformed-request"

    def test_missing_source_is_a_request_error(self, served):
        with client_for(served) as client:
            response = client.request({"op": "analyze"})
        assert response["status"] == "error"
        assert response["error"]["code"] == "malformed-request"

    def test_non_string_source_in_batch_is_a_request_error(self, served):
        with client_for(served) as client:
            response = client.analyze_batch([{"name": "f", "source": 42}])
        assert response["status"] == "error"
        assert "programs[0]" in response["error"]["message"]

    def test_oversized_frame_is_answered_then_closed(self, served):
        _server, host, port, _registry = served
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(struct.pack("!I", 64 * 1024 * 1024))
            response = recv_message(sock)
        assert response["status"] == "error"
        assert response["error"]["code"] == "request-overflow"

    def test_garbage_bytes_are_answered_then_closed(self, served):
        _server, host, port, _registry = served
        with socket.create_connection((host, port), timeout=10.0) as sock:
            body = b"\xff\xfe garbage"
            sock.sendall(struct.pack("!I", len(body)) + body)
            response = recv_message(sock)
        assert response["status"] == "error"
        assert response["error"]["code"] == "malformed-request"

    def test_non_numeric_deadline_is_a_request_error(self, served):
        with client_for(served) as client:
            response = client.analyze(GOOD, options={"deadline_s": "soon"})
            assert response["status"] == "error"
            assert response["error"]["code"] == "malformed-request"
            assert "deadline_s" in response["error"]["message"]
            # the connection survived: the same socket answers again
            assert client.health()["alive"] is True

    def test_bad_deadline_values_are_rejected(self, served):
        with client_for(served) as client:
            for bad in (True, -1, 0, "1.5", [1], float("nan")):
                response = client.analyze(GOOD, options={"deadline_s": bad})
                assert response["status"] == "error", bad
                assert response["error"]["code"] == "malformed-request", bad

    def test_numeric_deadline_is_accepted(self, served):
        source = GOOD.replace("10", "55")
        with client_for(served) as client:
            response = client.analyze(source, options={"deadline_s": 30})
        assert response["status"] == "ok"

    def test_server_survives_all_of_the_above(self, served):
        with client_for(served) as client:
            assert client.health()["alive"] is True


class TestPerRequestMetrics:
    def test_request_metrics_are_isolated(self, served):
        source_a = GOOD.replace("10", "31")
        source_b = GOOD.replace("10", "32")
        with client_for(served) as client:
            first = client.analyze(source_a)
            second = client.analyze(source_b)
        # each response carries only its own request's counters
        assert first["metrics"]["counters"]["service.cache.misses"] == 1
        assert second["metrics"]["counters"]["service.cache.misses"] == 1

    def test_degraded_response_counts_its_own_degradation(self, served):
        with client_for(served) as client:
            response = client.analyze(BAD)
        counters = response["metrics"]["counters"]
        assert counters["resilience.degraded.serve.worker"] == 1

    def test_request_counters_merge_into_the_server_registry(self, served):
        _server, _host, _port, registry = served
        counters = registry.snapshot()["counters"]
        assert counters["service.requests"] >= 1
        assert counters["service.requests.degraded"] >= 1
        assert counters["service.connections"] >= 1


class TestCrashIsolation:
    @pytest.fixture(scope="class")
    def crashing(self):
        with collecting(MetricsRegistry()) as registry:
            server = AnalysisServer(
                pool_size=1,
                retry_policy=FAST_RETRY,
                breaker_threshold=2,
                breaker_cooldown_s=60.0,
                fault_spec={"points": ["serve.worker"], "rate": 1.0},
            )
            host, port = server.start()
            try:
                yield server, host, port, registry
            finally:
                server.stop(grace_s=5.0)

    def test_crash_degrades_with_res506_and_server_survives(self, crashing):
        server, host, port, _registry = crashing
        with ServiceClient(host, port, timeout_s=30.0) as client:
            response = client.analyze(GOOD)
            assert client.health()["alive"] is True
        assert response["status"] == "degraded"
        (result,) = response["results"]
        assert result["error"]["code"] == "worker-crash"
        (record,) = result["degradations"]
        assert record["phase"] == "serve.worker"
        assert record["code"] == "worker-crash"
        assert record["diag_code"] == "RES506"
        assert result["diagnostics"][0]["code"] == "RES506"
        # all retry attempts burned a worker incarnation
        assert server.pool.crashes >= FAST_RETRY.max_attempts
        counters = response["metrics"]["counters"]
        assert counters["resilience.degraded.serve.worker"] == 1
        assert counters["service.retries"] == FAST_RETRY.max_attempts - 1

    def test_repeated_crashes_open_the_circuit(self, crashing):
        server, host, port, _registry = crashing
        with ServiceClient(host, port, timeout_s=30.0) as client:
            client.analyze(GOOD)  # failure #2 (test above was #1): opens
            response = client.analyze(GOOD)
        assert server.breaker.state(source_fingerprint(GOOD)) == "open"
        (result,) = response["results"]
        assert result["error"]["code"] == "circuit-open"
        assert result["degradations"][0]["diag_code"] == "RES508"
        assert result["degradations"][0]["action"] == "shed"
        assert result["retry_after_s"] > 0
        # a shed request costs no dispatch
        assert result["diagnostics"][0]["code"] == "RES508"

    def test_other_fingerprints_still_crash_independently(self, crashing):
        _server, host, port, _registry = crashing
        other = GOOD.replace("10", "41")
        with ServiceClient(host, port, timeout_s=30.0) as client:
            response = client.analyze(other)
        assert response["results"][0]["error"]["code"] == "worker-crash"


class TestHangIsolation:
    def test_hang_degrades_with_res507_and_pool_recovers(self):
        with collecting(MetricsRegistry()):
            server = AnalysisServer(
                pool_size=1, request_timeout_s=0.5, retry_policy=FAST_RETRY
            )
            host, port = server.start()
            try:
                with ServiceClient(host, port, timeout_s=30.0) as client:
                    hung = client.analyze(GOOD, chaos_sleep_s=30.0)
                    healthy = client.analyze(GOOD)
            finally:
                server.stop(grace_s=5.0)
        (result,) = hung["results"]
        assert result["error"]["code"] == "request-timeout"
        assert result["degradations"][0]["diag_code"] == "RES507"
        # request-timeout is DEGRADE policy: exactly one kill, no retry
        assert server.pool.timeouts == 1
        assert healthy["results"][0]["status"] == "ok"


class TestDrain:
    def test_stop_drains_and_is_idempotent(self):
        server = AnalysisServer(pool_size=1, retry_policy=FAST_RETRY)
        host, port = server.start()
        with ServiceClient(host, port, timeout_s=10.0) as client:
            assert client.analyze(GOOD)["status"] == "ok"
        server.stop(grace_s=5.0)
        assert server.wait(timeout=1.0)
        assert server.pool.alive_count() == 0
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)
        server.stop(grace_s=1.0)  # no raise

    def test_start_is_idempotent(self):
        server = AnalysisServer(pool_size=1)
        address = server.start()
        assert server.start() == address
        server.stop(grace_s=5.0)


class TestServingContractBackstops:
    """Unexpected exceptions must be answered, never drop the connection."""

    def test_handler_bug_is_answered_not_dropped(self, monkeypatch):
        server = AnalysisServer(pool_size=1, retry_policy=FAST_RETRY)
        host, port = server.start()

        def raiser(request):
            raise RuntimeError("boom")

        monkeypatch.setattr(server, "_handle_analyze", raiser)
        try:
            with ServiceClient(host, port, timeout_s=10.0) as client:
                response = client.analyze(GOOD)
                assert response["status"] == "error"
                assert response["error"]["code"] == "internal-error"
                assert "boom" in response["error"]["message"]
                assert client.health()["alive"] is True
        finally:
            server.stop(grace_s=5.0)

    def test_program_level_bug_degrades_the_program(self, monkeypatch):
        # e.g. a dispatch-path TypeError: not a ReproError, not retryable
        server = AnalysisServer(pool_size=1)

        def boom(job):
            raise TypeError("float() argument must be a number")

        monkeypatch.setattr(server, "_dispatch", boom)
        result = server._run_program({"name": "main", "source": GOOD}, {})
        assert result["status"] == "degraded"
        assert result["error"]["code"] == "internal-error"
        assert result["degradations"][0]["code"] == "internal-error"
        assert result["diagnostics"][0]["code"] == "RES501"


class TestCacheBeforeBreaker:
    def test_cache_hit_is_served_while_the_circuit_is_open(self):
        """A hit costs no worker, so an open circuit must not shed it --
        and a cached options-set must never absorb the half-open trial."""
        server = AnalysisServer(pool_size=1)
        fingerprint = source_fingerprint(GOOD)
        cached = {
            "name": "main", "fingerprint": fingerprint,
            "status": "ok", "record": {},
        }
        server.cache.put(cache_key(fingerprint, {}), cached)
        for _ in range(3):
            server.breaker.record_failure(fingerprint)
        assert server.breaker.state(fingerprint) == "open"
        result = server._run_program({"name": "main", "source": GOOD}, {})
        assert result["cached"] is True
        assert result["status"] == "ok"
        # an uncached options-set for the same fingerprint is still shed
        shed = server._run_program(
            {"name": "main", "source": GOOD}, {"report": True}
        )
        assert shed["error"]["code"] == "circuit-open"


class TestIdleTimeout:
    def test_stalled_connection_is_dropped_and_server_survives(self):
        server = AnalysisServer(
            pool_size=1, idle_timeout_s=0.3, retry_policy=FAST_RETRY
        )
        host, port = server.start()
        try:
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(b"\x00\x00")  # partial frame header, then stall
                sock.settimeout(5.0)
                assert sock.recv(1) == b""  # server dropped the connection
            with ServiceClient(host, port, timeout_s=10.0) as client:
                assert client.health()["alive"] is True
        finally:
            server.stop(grace_s=5.0)


class TestResponseBounding:
    def test_oversized_response_is_truncated_not_unreceivable(self):
        server = AnalysisServer(pool_size=1, max_message_bytes=2048)
        left, right = socket.socketpair()
        response = {
            "status": "ok",
            "op": "analyze",
            "results": [
                {
                    "name": "main", "fingerprint": "f", "status": "ok",
                    "record": {"big": "x" * 4096}, "report": "y" * 4096,
                    "degradations": [], "diagnostics": [],
                }
            ],
            "metrics": {"counters": {}},
        }
        try:
            server._send_response(left, response)
            received = recv_message(right, 2048)  # same limit as the server
        finally:
            left.close()
            right.close()
        assert received["status"] == "degraded"
        (result,) = received["results"]
        assert result["truncated"] is True
        assert "report" not in result and "record" not in result
        assert result["degradations"][-1]["code"] == "response-overflow"
        assert result["degradations"][-1]["diag_code"] == "RES509"
        assert result["diagnostics"][-1]["code"] == "RES509"
        assert "metrics" not in received

    def test_fitting_response_is_untouched(self):
        server = AnalysisServer(pool_size=1)
        left, right = socket.socketpair()
        response = {"status": "ok", "op": "health", "alive": True}
        try:
            server._send_response(left, response)
            assert recv_message(right) == response
        finally:
            left.close()
            right.close()


class TestRunlog:
    def test_clean_results_are_recorded(self, tmp_path):
        directory = str(tmp_path / "runs")
        server = AnalysisServer(
            pool_size=1, retry_policy=FAST_RETRY, runlog_dir=directory
        )
        host, port = server.start()
        try:
            with ServiceClient(host, port, timeout_s=10.0) as client:
                client.analyze(GOOD)
                client.analyze(BAD)  # degraded: not a record
        finally:
            server.stop(grace_s=5.0)
        import repro.obs.aggregate as agg

        records = agg.load_records(directory)
        assert len(records) == 1
        assert records[0]["fingerprint"] == source_fingerprint(GOOD)
