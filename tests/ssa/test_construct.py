"""Tests for SSA construction."""

import pytest

from repro.frontend.source import compile_source
from repro.ir.function import IRError
from repro.ir.instructions import Phi
from repro.ir.interp import Interpreter
from repro.ir.verify import verify_function
from repro.ssa.construct import construct_ssa


def build(source):
    f = compile_source(source)
    info = construct_ssa(f)
    return f, info


class TestBasics:
    def test_loop_gets_header_phi(self):
        f, info = build("i = 0\nL1: loop\n  i = i + 1\n  if i > n then\n    break\n  endif\nendloop\nreturn i")
        phis = f.block("L1").phis()
        assert len(phis) == 1
        assert info.origin[phis[0].result] == "i"

    def test_unique_definitions(self):
        f, _ = build("x = 1\nx = x + 1\nx = x * 2\nreturn x")
        names = [i.result for b in f for i in b if i.result]
        assert len(names) == len(set(names))

    def test_verifies_as_ssa(self):
        f, _ = build(
            "s = 0\nfor i = 1 to n do\n  if i > 3 then\n    s = s + i\n  endif\nendfor\nreturn s"
        )
        verify_function(f, ssa=True)

    def test_diamond_phi(self):
        f, info = build("if c > 0 then\n  x = 1\nelse\n  x = 2\nendif\nreturn x")
        all_phis = [i for b in f for i in b if isinstance(i, Phi)]
        assert len(all_phis) == 1
        assert info.origin[all_phis[0].result] == "x"

    def test_pruned_no_dead_phis(self):
        # `t` is dead after the if; pruned SSA must not merge it
        f, info = build(
            "x = 0\nif c > 0 then\n  t = 1\nelse\n  t = 2\nendif\nreturn x"
        )
        all_phis = [i for b in f for i in b if isinstance(i, Phi)]
        assert all(info.origin[p.result] != "t" for p in all_phis)

    def test_rejects_existing_phis(self):
        f, _ = build("x = 0\nfor i = 1 to n do\n  x = x + 1\nendfor\nreturn x")
        with pytest.raises(IRError):
            construct_ssa(f)


class TestSemantics:
    def runs_same(self, source, args, arrays=None):
        f1 = compile_source(source)
        before = Interpreter(f1).run(dict(args), arrays and {k: dict(v) for k, v in arrays.items()})
        f2 = compile_source(source)
        construct_ssa(f2)
        after = Interpreter(f2).run(dict(args), arrays and {k: dict(v) for k, v in arrays.items()})
        assert before.return_value == after.return_value
        assert before.arrays == after.arrays

    def test_loop_sum(self):
        self.runs_same("s = 0\nfor i = 1 to n do\n  s = s + i\nendfor\nreturn s", {"n": 9})

    def test_swap_rotation(self):
        self.runs_same(
            "a = 1\nb = 2\nc = 3\nfor i = 1 to n do\n  t = a\n  a = b\n  b = c\n  c = t\nendfor\nreturn a * 100 + b * 10 + c",
            {"n": 5},
        )

    def test_conditional_updates(self):
        self.runs_same(
            "k = 0\nfor i = 1 to n do\n  if i % 2 == 0 then\n    k = k + 1\n  else\n    k = k + 3\n  endif\nendfor\nreturn k",
            {"n": 8},
        )

    def test_nested_loops(self):
        self.runs_same(
            "s = 0\nfor i = 1 to n do\n  for j = 1 to i do\n    s = s + 1\n  endfor\nendfor\nreturn s",
            {"n": 6},
        )


class TestUndef:
    def test_maybe_uninitialized_becomes_input(self):
        f = compile_source("if c > 0 then\n  x = 1\nendif\nreturn x")
        info = construct_ssa(f)
        assert any(name.endswith(".undef") for name in info.undef_inputs)
        # the undef input behaves like a parameter
        result = Interpreter(f).run({"c": 0, info.undef_inputs[0]: 42})
        assert result.return_value == 42


class TestOrigin:
    def test_names_of(self):
        f, info = build("i = 0\nfor i = 1 to n do\n  x = i\nendfor\nreturn i")
        names = info.names_of("i")
        assert len(names) >= 3
        assert all(info.origin[n] == "i" for n in names)

    def test_params_map_to_themselves(self):
        _, info = build("return n")
        assert info.origin["n"] == "n"
