"""Tests for SSA destruction and the SSA graph."""

from repro.frontend.source import compile_source
from repro.ir.instructions import Phi
from repro.ir.interp import Interpreter
from repro.ssa.construct import construct_ssa
from repro.ssa.destruct import destruct_ssa
from repro.ssa.graph import build_ssa_graph


def to_ssa(source):
    f = compile_source(source)
    construct_ssa(f)
    return f


class TestDestruct:
    def check_roundtrip(self, source, args):
        f_named = compile_source(source)
        expected = Interpreter(f_named).run(dict(args))
        f = to_ssa(source)
        destruct_ssa(f)
        assert not any(isinstance(i, Phi) for b in f for i in b)
        actual = Interpreter(f).run(dict(args))
        assert actual.return_value == expected.return_value
        assert actual.arrays == expected.arrays

    def test_simple_loop(self):
        self.check_roundtrip("s = 0\nfor i = 1 to n do\n  s = s + i\nendfor\nreturn s", {"n": 7})

    def test_swap_cycle_needs_temp(self):
        """The periodic rotation is the classic swap problem."""
        self.check_roundtrip(
            "a = 1\nb = 2\nfor i = 1 to n do\n  t = a\n  a = b\n  b = t\nendfor\nreturn a * 10 + b",
            {"n": 3},
        )

    def test_three_way_rotation(self):
        self.check_roundtrip(
            "a = 1\nb = 2\nc = 3\nfor i = 1 to n do\n  t = a\n  a = b\n  b = c\n  c = t\nendfor\n"
            "return a * 100 + b * 10 + c",
            {"n": 4},
        )

    def test_conditional_merge(self):
        self.check_roundtrip(
            "x = 0\nif c > 0 then\n  x = 1\nelse\n  x = 2\nendif\nreturn x",
            {"c": 1},
        )


class TestSSAGraph:
    def test_whole_function_graph(self):
        f = to_ssa("i = 0\nL1: loop\n  i = i + 1\n  if i > n then\n    break\n  endif\nendloop")
        g = build_ssa_graph(f)
        assert len(g.nodes()) == f.instruction_count() - sum(
            1 for b in f for inst in b if inst.result is None
        )

    def test_edges_point_to_operand_defs(self):
        f = to_ssa("i = 0\nL1: loop\n  i = i + 1\n  if i > n then\n    break\n  endif\nendloop")
        g = build_ssa_graph(f)
        phi = f.block("L1").phis()[0]
        # the phi uses the add; the add uses the phi: a 2-cycle
        add_name = next(
            n for n in g.nodes() if phi.result in g.successors(n)
        )
        assert add_name in g.successors(phi.result)

    def test_region_restriction(self):
        f = to_ssa("i = 0\nL1: loop\n  i = i + n\n  if i > m then\n    break\n  endif\nendloop")
        g = build_ssa_graph(f, region={"L1", "then", "endif"})
        phi = f.block("L1").phis()[0]
        # n is defined outside the region
        add_node = next(n for n in g.successors(phi.result))
        assert "n" in g.external_operands(add_node)

    def test_size_counts_nodes_plus_edges(self):
        f = to_ssa("x = a + b\nreturn x")
        g = build_ssa_graph(f)
        # x = add a b: a,b are params (not nodes): 1 node, 0 internal edges
        assert g.size() == 1

    def test_block_of_and_instruction(self):
        f = to_ssa("x = a + b\nreturn x")
        g = build_ssa_graph(f)
        name = g.nodes()[0]
        assert g.block_of(name) == "entry"
        assert g.instruction(name).result == name
