"""Tests for the closed-form sequence domain and the recurrence solver."""

from fractions import Fraction

import pytest

from repro.symbolic.closedform import ClosedForm, ClosedFormError, solve_affine_recurrence
from repro.symbolic.expr import Expr


def sym(name):
    return Expr.sym(name)


class TestConstruction:
    def test_invariant(self):
        cf = ClosedForm.invariant(5)
        assert cf.is_invariant and cf.is_linear and cf.is_polynomial
        assert cf.init == 5
        assert cf.step == 0

    def test_linear(self):
        cf = ClosedForm.linear(sym("n"), 2)
        assert cf.is_linear and not cf.is_invariant
        assert cf.init == sym("n")
        assert cf.step == 2

    def test_counter(self):
        h = ClosedForm.counter()
        assert [h.value_at(k).constant_value() for k in range(4)] == [0, 1, 2, 3]

    def test_trailing_zero_normalized(self):
        assert ClosedForm([1, 0, 0]) == ClosedForm([1])

    def test_zero_geo_dropped(self):
        assert ClosedForm([1], {2: 0}) == ClosedForm([1])

    def test_bad_base_rejected(self):
        with pytest.raises(ClosedFormError):
            ClosedForm([], {1: 1})
        with pytest.raises(ClosedFormError):
            ClosedForm([], {0: 1})

    def test_step_of_nonlinear_raises(self):
        with pytest.raises(ClosedFormError):
            _ = ClosedForm([0, 1, 1]).step


class TestEvaluation:
    def test_polynomial_value_at(self):
        # (h^2 + 3h + 4)/2: the paper's closed form for j in L14
        cf = ClosedForm([2, Fraction(3, 2), Fraction(1, 2)])
        assert [cf.value_at(h).constant_value() for h in range(4)] == [2, 4, 7, 11]

    def test_geometric_value_at(self):
        # 2^(h+2) - 1: the paper's closed form for l in L14
        cf = ClosedForm([-1], {2: 4})
        assert [cf.value_at(h).constant_value() for h in range(4)] == [3, 7, 15, 31]

    def test_symbolic_iteration_polynomial(self):
        cf = ClosedForm.linear(1, 2)
        assert cf.value_at(sym("t")) == 1 + 2 * sym("t")

    def test_symbolic_iteration_geometric_raises(self):
        with pytest.raises(ClosedFormError):
            ClosedForm([], {2: 1}).value_at(sym("t"))

    def test_negative_iteration_raises(self):
        with pytest.raises(ClosedFormError):
            ClosedForm.counter().value_at(-1)

    def test_evaluate_with_env(self):
        cf = ClosedForm.linear(sym("n"), 1)
        assert cf.evaluate(3, {"n": 10}) == 13

    def test_init_includes_geo(self):
        cf = ClosedForm([1], {2: 3})
        assert cf.init == 4


class TestArithmetic:
    def test_add(self):
        a = ClosedForm.linear(1, 2)
        b = ClosedForm([0, 0, 1], {3: 1})
        total = a + b
        for h in range(5):
            assert total.value_at(h) == a.value_at(h) + b.value_at(h)

    def test_sub_neg(self):
        a = ClosedForm([5, 1], {2: 2})
        assert (a - a).is_zero
        assert (-a).value_at(3) == -(a.value_at(3))

    def test_scale(self):
        a = ClosedForm.linear(1, 1)
        assert a.scale(sym("c")).value_at(2) == 3 * sym("c")

    def test_mul_poly_poly(self):
        a = ClosedForm.linear(1, 1)  # h + 1
        product = a.try_mul(a)
        assert product == ClosedForm([1, 2, 1])

    def test_mul_geo_geo(self):
        a = ClosedForm([], {2: 1})
        b = ClosedForm([], {3: 1})
        assert a.try_mul(b) == ClosedForm([], {6: 1})

    def test_mul_const_geo(self):
        a = ClosedForm.invariant(5)
        b = ClosedForm([7], {2: 1})
        assert a.try_mul(b) == ClosedForm([35], {2: 5})

    def test_mul_poly_geo_unrepresentable(self):
        a = ClosedForm.linear(0, 1)  # h
        b = ClosedForm([], {2: 1})  # 2^h
        assert a.try_mul(b) is None  # would need h * 2^h

    def test_mul_geo_geo_base_collapse_to_one_fails(self):
        a = ClosedForm([], {2: 1})
        b = ClosedForm([], {-1: 1})
        # 2^h * (-1)^h = (-2)^h is fine
        assert a.try_mul(b) == ClosedForm([], {-2: 1})
        c = ClosedForm([], {Fraction: 1} if False else {-1: 1})
        # (-1)^h * (-1)^h = 1^h: not representable as a geo term
        assert c.try_mul(ClosedForm([], {-1: 1})) is None


class TestShift:
    def test_polynomial_shift(self):
        cf = ClosedForm([0, 0, 1])  # h^2
        shifted = cf.shift(1)  # (h+1)^2
        for h in range(5):
            assert shifted.value_at(h) == cf.value_at(h + 1)

    def test_negative_shift(self):
        cf = ClosedForm([0, 1, 1], {2: 4})
        shifted = cf.shift(-1)
        for h in range(1, 5):
            assert shifted.value_at(h) == cf.value_at(h - 1)

    def test_shift_roundtrip(self):
        cf = ClosedForm([sym("a"), 2, 3], {2: sym("g")})
        assert cf.shift(3).shift(-3) == cf


class TestPrefixSumAndFit:
    def test_prefix_sum_of_constant(self):
        assert ClosedForm.invariant(3).prefix_sum() == ClosedForm.linear(0, 3)

    def test_prefix_sum_of_counter(self):
        # sum_{t<h} t = h(h-1)/2
        s = ClosedForm.counter().prefix_sum()
        assert [s.value_at(h).constant_value() for h in range(5)] == [0, 0, 1, 3, 6]

    def test_prefix_sum_symbolic_coefficients(self):
        s = ClosedForm.linear(sym("a"), sym("b")).prefix_sum()
        # sum_{t<h} (a + b t) = a h + b h(h-1)/2
        assert s.value_at(3) == 3 * sym("a") + 3 * sym("b")

    def test_prefix_sum_geometric(self):
        # sum_{t<h} 2^t = 2^h - 1
        s = ClosedForm([], {2: 1}).prefix_sum()
        assert [s.value_at(h).constant_value() for h in range(5)] == [0, 1, 3, 7, 15]

    def test_fit_polynomial(self):
        cf = ClosedForm.fit_polynomial([4, 9, 17, 29])
        assert cf == ClosedForm([4, Fraction(23, 6), 1, Fraction(1, 6)])

    def test_fit_polynomial_empty_raises(self):
        with pytest.raises(ClosedFormError):
            ClosedForm.fit_polynomial([])

    def test_fit_with_bases(self):
        # 6*3^h - h - 3: the paper's m example
        values = [3, 14, 49, 156]
        cf = ClosedForm.fit(values, 2, [3])
        assert cf == ClosedForm([-3, -1], {3: 6})

    def test_fit_wrong_count_raises(self):
        with pytest.raises(ClosedFormError):
            ClosedForm.fit([1, 2], 2, [2])


class TestRecurrenceSolver:
    def test_pure_accumulation(self):
        # x' = x + (h+1), x0 = 1  ->  the paper's j in L14
        form = solve_affine_recurrence(1, ClosedForm.linear(1, 1), 1)
        assert form == ClosedForm([1, Fraction(1, 2), Fraction(1, 2)])

    def test_geometric_paper_l(self):
        # l' = 2l + 1, l0 = 1  ->  2^(h+1) ... value sequence 1, 3, 7, 15
        form = solve_affine_recurrence(2, ClosedForm.invariant(1), 1)
        assert form == ClosedForm([-1], {2: 2})

    def test_geometric_with_linear_addend_paper_m(self):
        # m' = 3m + (2h + 3), m0 = 0  ->  2*3^h - h - 2
        form = solve_affine_recurrence(3, ClosedForm.linear(3, 2), 0)
        assert form == ClosedForm([-2, -1], {3: 2})
        # and the paper's quadratic coefficient is indeed zero
        assert form.coeff(2).is_zero

    def test_symbolic_init(self):
        form = solve_affine_recurrence(1, ClosedForm.invariant(sym("s")), sym("x0"))
        assert form == ClosedForm([sym("x0"), sym("s")])

    def test_resonance_returns_none(self):
        # x' = 2x + 2^h needs h*2^h: unrepresentable
        assert solve_affine_recurrence(2, ClosedForm([], {2: 1}), 0) is None

    def test_multiplier_zero_none(self):
        assert solve_affine_recurrence(0, ClosedForm.invariant(1), 0) is None

    def test_minus_one_is_flip_flop(self):
        # x' = -x + 3, x0 = 1: 1, 2, 1, 2, ...  (geo base -1 form)
        form = solve_affine_recurrence(-1, ClosedForm.invariant(3), 1)
        assert form is not None
        assert [form.value_at(h).constant_value() for h in range(4)] == [1, 2, 1, 2]

    def test_validation_against_next_iterate(self):
        """The solver simulates one extra step to reject accidental fits."""
        # a contrived recurrence that genuinely solves: x' = 5x, x0 = 7
        form = solve_affine_recurrence(5, ClosedForm.zero(), 7)
        assert form == ClosedForm([], {5: 7})

    def test_matches_simulation_generic(self):
        import random

        rng = random.Random(42)
        for _ in range(25):
            mult = rng.choice([1, 2, 3, -2, 5])
            addend = ClosedForm([rng.randint(-3, 3) for _ in range(rng.randint(0, 3))])
            x0 = rng.randint(-5, 5)
            form = solve_affine_recurrence(mult, addend, x0)
            assert form is not None
            x = Fraction(x0)
            for h in range(8):
                assert form.value_at(h).constant_value() == x
                x = mult * x + addend.value_at(h).constant_value()


class TestDunder:
    def test_equality_hash(self):
        a = ClosedForm([1, 2], {2: 3})
        b = ClosedForm([1, 2], {2: 3})
        assert a == b and hash(a) == hash(b)

    def test_str(self):
        assert str(ClosedForm.zero()) == "0"
        text = str(ClosedForm([1, 2], {2: 3}))
        assert "h" in text and "2^h" in text
        assert "(-2)^h" in str(ClosedForm([], {-2: 1}))

    def test_free_symbols(self):
        cf = ClosedForm([sym("a")], {2: sym("b")})
        assert cf.free_symbols() == {"a", "b"}

    def test_substitute(self):
        cf = ClosedForm([sym("a"), 1])
        assert cf.substitute({"a": Expr.const(9)}) == ClosedForm([9, 1])
