"""Tests for symbolic polynomial expressions."""

from fractions import Fraction

import pytest

from repro.symbolic.expr import Expr, ExprError


def sym(name):
    return Expr.sym(name)


class TestConstruction:
    def test_const(self):
        e = Expr.const(5)
        assert e.is_constant and e.constant_value() == 5

    def test_zero(self):
        assert Expr.zero().is_zero
        assert Expr.const(0).is_zero
        assert not Expr.const(1).is_zero

    def test_sym(self):
        e = sym("n")
        assert not e.is_constant
        assert e.free_symbols() == {"n"}

    def test_empty_symbol_rejected(self):
        with pytest.raises(ExprError):
            Expr.sym("")

    def test_zero_coefficients_dropped(self):
        e = sym("x") - sym("x")
        assert e.is_zero
        assert e.terms() == {}


class TestArithmetic:
    def test_add_commutes_with_ints(self):
        assert sym("x") + 1 == 1 + sym("x")

    def test_polynomial_product(self):
        # (x + 1)(x - 1) = x^2 - 1
        e = (sym("x") + 1) * (sym("x") - 1)
        assert e == sym("x") ** 2 - 1

    def test_multivariate(self):
        e = (sym("a") + sym("b")) ** 2
        assert e == sym("a") ** 2 + 2 * sym("a") * sym("b") + sym("b") ** 2

    def test_negate_and_sub(self):
        assert -(sym("x") - 3) == 3 - sym("x")

    def test_pow_zero_and_one(self):
        assert sym("x") ** 0 == Expr.one()
        assert sym("x") ** 1 == sym("x")

    def test_pow_negative_rejected(self):
        with pytest.raises(ExprError):
            sym("x") ** -1

    def test_fraction_coefficients(self):
        e = sym("h") / 2
        assert e * 2 == sym("h")

    def test_division_by_constant(self):
        assert (2 * sym("x") + 4) / 2 == sym("x") + 2

    def test_division_by_zero(self):
        with pytest.raises(ExprError):
            sym("x") / 0

    def test_exact_symbolic_division(self):
        e = sym("x") * sym("y") + sym("x")
        assert e / sym("x") == sym("y") + 1

    def test_inexact_division_raises(self):
        with pytest.raises(ExprError):
            (sym("x") + 1) / sym("y")

    def test_try_div(self):
        assert (sym("x") ** 2).try_div(sym("x")) == sym("x")
        assert (sym("x") + 1).try_div(sym("x")) is None
        assert sym("x").try_div(Expr.zero()) is None


class TestInspection:
    def test_degree(self):
        assert Expr.zero().degree() == 0
        assert Expr.const(7).degree() == 0
        assert (sym("x") * sym("y") + sym("x")).degree() == 2

    def test_degree_in(self):
        e = sym("x") ** 3 * sym("y") + sym("y") ** 5
        assert e.degree_in("x") == 3
        assert e.degree_in("y") == 5
        assert e.degree_in("z") == 0

    def test_coefficient_extraction(self):
        e = 3 * sym("x") ** 2 + sym("y") * sym("x") + 5
        assert e.coefficient("x", 2) == Expr.const(3)
        assert e.coefficient("x", 1) == sym("y")
        assert e.coefficient("x", 0) == Expr.const(5)

    def test_as_affine(self):
        const, coeffs = (2 * sym("i") - 3 * sym("j") + 7).as_affine()
        assert const == 7
        assert coeffs == {"i": 2, "j": -3}

    def test_as_affine_rejects_quadratic(self):
        assert (sym("i") ** 2).as_affine() is None
        assert (sym("i") * sym("j")).as_affine() is None

    def test_constant_value_raises_on_symbolic(self):
        with pytest.raises(ExprError):
            sym("x").constant_value()

    def test_as_int(self):
        assert Expr.const(4).as_int() == 4
        with pytest.raises(ExprError):
            Expr.const(Fraction(1, 2)).as_int()

    def test_known_sign(self):
        assert Expr.const(3).known_sign() == 1
        assert Expr.const(-3).known_sign() == -1
        assert Expr.zero().known_sign() == 0
        assert sym("x").known_sign() is None


class TestSubstitutionEvaluation:
    def test_substitute(self):
        e = sym("i") ** 2 + sym("j")
        out = e.substitute({"i": sym("k") + 1})
        assert out == sym("k") ** 2 + 2 * sym("k") + 1 + sym("j")

    def test_substitute_simultaneous(self):
        e = sym("a") + sym("b")
        out = e.substitute({"a": sym("b"), "b": sym("a")})
        assert out == sym("a") + sym("b")

    def test_substitute_irrelevant_is_identity(self):
        e = sym("a") + 1
        assert e.substitute({"z": Expr.const(9)}) is e

    def test_evaluate(self):
        e = 2 * sym("x") ** 2 + sym("y")
        assert e.evaluate({"x": 3, "y": 4}) == 22

    def test_evaluate_unbound_raises(self):
        with pytest.raises(ExprError):
            sym("x").evaluate({})

    def test_rename(self):
        e = sym("a") * sym("b")
        assert e.rename({"a": "c"}) == sym("c") * sym("b")

    def test_rename_merging(self):
        e = sym("a") + sym("b")
        assert e.rename({"a": "b"}) == 2 * sym("b")


class TestDunder:
    def test_equality_with_numbers(self):
        assert Expr.const(5) == 5
        assert Expr.const(Fraction(1, 2)) == Fraction(1, 2)
        assert sym("x") != 5

    def test_hash_consistency(self):
        assert hash(sym("x") + 1) == hash(1 + sym("x"))

    def test_bool(self):
        assert not Expr.zero()
        assert sym("x")

    def test_str_forms(self):
        assert str(Expr.zero()) == "0"
        assert str(sym("x")) == "x"
        assert str(-sym("x")) == "-x"
        assert "x^2" in str(sym("x") ** 2)
        assert str(sym("x") - 1) == "-1 + x"

    def test_coerce_rejects_junk(self):
        with pytest.raises(ExprError):
            sym("x") + "hello"  # type: ignore[operator]
