"""Tests for exact rational matrices."""

from fractions import Fraction

import pytest

from repro.symbolic.rational import Matrix, MatrixError


class TestConstruction:
    def test_basic(self):
        m = Matrix([[1, 2], [3, 4]])
        assert m.rows == 2 and m.ncols == 2
        assert m[0, 1] == 2
        assert isinstance(m[0, 0], Fraction)

    def test_fraction_entries(self):
        m = Matrix([[Fraction(1, 2)]])
        assert m[0, 0] == Fraction(1, 2)

    def test_ragged_rejected(self):
        with pytest.raises(MatrixError):
            Matrix([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(MatrixError):
            Matrix([])
        with pytest.raises(MatrixError):
            Matrix([[]])

    def test_bad_entry_type(self):
        with pytest.raises(MatrixError):
            Matrix([[1.5]])

    def test_identity(self):
        i3 = Matrix.identity(3)
        assert i3[0, 0] == 1 and i3[0, 1] == 0 and i3[2, 2] == 1

    def test_identity_bad_size(self):
        with pytest.raises(MatrixError):
            Matrix.identity(0)

    def test_vandermonde_is_the_papers_matrix(self):
        # the paper's third-order matrix for k in L14 (section 4.3)
        m = Matrix.vandermonde([0, 1, 2, 3], 3)
        assert m.tolists() == [
            [1, 0, 0, 0],
            [1, 1, 1, 1],
            [1, 2, 4, 8],
            [1, 3, 9, 27],
        ]


class TestArithmetic:
    def test_add_sub(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[5, 6], [7, 8]])
        assert (a + b).tolists() == [[6, 8], [10, 12]]
        assert (b - a).tolists() == [[4, 4], [4, 4]]

    def test_shape_mismatch(self):
        with pytest.raises(MatrixError):
            Matrix([[1]]) + Matrix([[1, 2]])

    def test_scale(self):
        assert Matrix([[2, 4]]).scale(Fraction(1, 2)).tolists() == [[1, 2]]

    def test_matmul(self):
        a = Matrix([[1, 2], [3, 4]])
        assert (a @ Matrix.identity(2)) == a
        b = Matrix([[0, 1], [1, 0]])
        assert (a @ b).tolists() == [[2, 1], [4, 3]]

    def test_matmul_shape_mismatch(self):
        with pytest.raises(MatrixError):
            Matrix([[1, 2]]) @ Matrix([[1, 2]])

    def test_mul_vector(self):
        a = Matrix([[1, 2], [3, 4]])
        assert a.mul_vector([1, 1]) == [3, 7]

    def test_transpose(self):
        assert Matrix([[1, 2, 3]]).transpose().tolists() == [[1], [2], [3]]


class TestInverse:
    def test_identity_inverse(self):
        assert Matrix.identity(4).inverse() == Matrix.identity(4)

    def test_paper_inverse_roundtrip(self):
        """The paper inverts the 4x4 Vandermonde matrix exactly."""
        m = Matrix.vandermonde([0, 1, 2, 3], 3)
        inv = m.inverse()
        assert m @ inv == Matrix.identity(4)
        assert inv @ m == Matrix.identity(4)
        # all-rational entries (the paper's observation)
        assert all(isinstance(x, Fraction) for row in inv.tolists() for x in row)

    def test_paper_k_coefficients(self):
        """A^-1 [4 9 17 29]^T = [4 23/6 1 1/6]^T (paper, section 4.3)."""
        inv = Matrix.vandermonde([0, 1, 2, 3], 3).inverse()
        coeffs = inv.mul_vector([4, 9, 17, 29])
        assert coeffs == [4, Fraction(23, 6), 1, Fraction(1, 6)]

    def test_geometric_basis_matrix(self):
        """The paper's matrix for m = 3m + 2i + 1: columns 1, h, h^2, 3^h."""
        rows = [[1, h, h * h, 3**h] for h in range(4)]
        m = Matrix(rows)
        assert m.tolists() == [
            [1, 0, 0, 1],
            [1, 1, 1, 3],
            [1, 2, 4, 9],
            [1, 3, 9, 27],
        ]
        inv = m.inverse()
        # first four values of m3 are 3, 14, 49, 156 (see closedform tests)
        coeffs = inv.mul_vector([3, 14, 49, 156])
        # closed form 6*3^h - h - 3: constant -3, h coeff -1, no h^2, 6*3^h
        assert coeffs == [-3, -1, 0, 6]

    def test_singular_raises(self):
        with pytest.raises(MatrixError):
            Matrix([[1, 2], [2, 4]]).inverse()

    def test_non_square_raises(self):
        with pytest.raises(MatrixError):
            Matrix([[1, 2]]).inverse()

    def test_pivoting_handles_zero_leading_entry(self):
        m = Matrix([[0, 1], [1, 0]])
        assert m.inverse() == m


class TestSolveAndDeterminant:
    def test_solve(self):
        a = Matrix([[2, 1], [1, 3]])
        x = a.solve([3, 5])
        assert a.mul_vector(x) == [3, 5]

    def test_solve_singular(self):
        with pytest.raises(MatrixError):
            Matrix([[1, 1], [1, 1]]).solve([1, 2])

    def test_solve_wrong_rhs_length(self):
        with pytest.raises(MatrixError):
            Matrix.identity(2).solve([1, 2, 3])

    def test_determinant(self):
        assert Matrix([[1, 2], [3, 4]]).determinant() == -2
        assert Matrix([[1, 2], [2, 4]]).determinant() == 0
        assert Matrix.identity(5).determinant() == 1

    def test_determinant_with_row_swap(self):
        assert Matrix([[0, 1], [1, 0]]).determinant() == -1

    def test_determinant_non_square(self):
        with pytest.raises(MatrixError):
            Matrix([[1, 2]]).determinant()


class TestDunder:
    def test_eq_and_hash(self):
        a = Matrix([[1, 2]])
        b = Matrix([[1, 2]])
        assert a == b and hash(a) == hash(b)
        assert a != Matrix([[2, 1]])

    def test_repr(self):
        assert "1" in repr(Matrix([[1]]))
