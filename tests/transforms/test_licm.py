"""Tests for loop-invariant code motion."""

from repro.ir.instructions import BinOp
from repro.ir.interp import Interpreter
from repro.ir.verify import verify_function
from repro.pipeline import analyze
from repro.transforms import hoist_invariants


def hoist(source, header="L1"):
    program = analyze(source)
    loop = program.nest.loop_of_header(header)
    names = hoist_invariants(program.ssa, program.result, loop)
    verify_function(program.ssa, ssa=True)
    return program, names


def equivalent(source, cases, header="L1"):
    reference = analyze(source)
    program, names = hoist(source, header)
    for args in cases:
        r1 = Interpreter(reference.ssa).run(dict(args))
        r2 = Interpreter(program.ssa).run(dict(args))
        assert r1.return_value == r2.return_value
        assert r1.arrays == r2.arrays
    return program, names


class TestHoisting:
    def test_simple_invariant_hoisted(self):
        program, names = hoist(
            "L1: for i = 1 to n do\n  x = a + b\n  A[i] = x\nendfor"
        )
        assert len(names) == 1
        preheader = program.nest.loop_of_header("L1").preheader(program.ssa)
        block = program.ssa.block(preheader)
        assert any(inst.result == names[0] for inst in block.instructions)

    def test_chain_hoisted_in_order(self):
        program, names = hoist(
            "L1: for i = 1 to n do\n  x = a + b\n  y = x * 2\n  A[i] = y\nendfor"
        )
        assert len(names) == 2

    def test_iv_not_hoisted(self):
        _, names = hoist("L1: for i = 1 to n do\n  A[i] = i\nendfor")
        assert names == []

    def test_conditional_not_hoisted(self):
        _, names = hoist(
            "L1: for i = 1 to n do\n  if A[i] > 0 then\n    x = a + b\n    B[i] = x\n  endif\nendfor"
        )
        assert names == []

    def test_division_not_hoisted(self):
        _, names = hoist(
            "L1: for i = 1 to n do\n  x = a / b\n  A[i] = x\nendfor"
        )
        assert names == []

    def test_load_from_readonly_array_hoisted(self):
        program, names = hoist(
            "L1: for i = 1 to n do\n  x = T[5]\n  A[i] = x\nendfor"
        )
        assert len(names) == 1

    def test_load_from_written_array_not_hoisted(self):
        _, names = hoist(
            "L1: for i = 1 to n do\n  x = A[5]\n  A[i] = x\nendfor"
        )
        assert names == []

    def test_semantics_preserved(self):
        equivalent(
            "s = 0\nL1: for i = 1 to n do\n  x = a * b + a\n  s = s + x\nendfor\nreturn s",
            [{"n": k, "a": 3, "b": 4} for k in (0, 1, 7)],
        )

    def test_inner_loop_hoist(self):
        program, names = equivalent(
            "s = 0\nL1: for i = 1 to n do\n  L2: for j = 1 to n do\n"
            "    x = a + a\n    s = s + x\n  endfor\nendfor\nreturn s",
            [{"n": k, "a": 5} for k in (0, 2, 4)],
            header="L2",
        )
        assert names
