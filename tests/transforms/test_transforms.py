"""Tests for strength reduction, IV substitution, peeling, normalization.

Every transform is validated two ways: structurally (the expected shape
appears) and semantically (the interpreter observes identical results on a
spread of inputs).
"""

import pytest

from repro.analysis.loopsimplify import simplify_loops
from repro.frontend.source import compile_source
from repro.ir.clone import clone_function
from repro.ir.instructions import BinOp, Phi
from repro.ir.interp import Interpreter
from repro.ir.opcodes import BinaryOp
from repro.ir.verify import verify_function
from repro.pipeline import analyze_function
from repro.transforms import (
    materialize_expr,
    normalize_loop,
    peel_first_iteration,
    strength_reduce,
    substitute_induction_variables,
)


def equivalent(f1, f2, cases):
    for args in cases:
        r1 = Interpreter(f1).run(dict(args))
        r2 = Interpreter(f2).run(dict(args))
        assert r1.return_value == r2.return_value, args
        assert r1.arrays == r2.arrays, args


class TestMaterialize:
    def test_constant(self):
        from repro.ir.function import Function
        from repro.ir.values import Const
        from repro.symbolic.expr import Expr

        f = Function("f")
        block = f.add_block("entry")
        value, nxt = materialize_expr(f, block, 0, Expr.const(42))
        assert value == Const(42) and nxt == 0
        assert block.instructions == []

    def test_polynomial(self):
        from repro.ir.function import Function
        from repro.ir.instructions import Return
        from repro.symbolic.expr import Expr

        f = Function("f", params=["a", "b"])
        block = f.add_block("entry")
        expr = Expr.sym("a") * Expr.sym("a") * 3 + Expr.sym("b") * -1 + 7
        value, _ = materialize_expr(f, block, 0, expr)
        block.terminator = Return(value)
        result = Interpreter(f).run({"a": 5, "b": 2})
        assert result.return_value == 3 * 25 - 2 + 7

    def test_opaque_rejected(self):
        from repro.ir.function import Function
        from repro.symbolic.expr import Expr
        from repro.transforms.materialize import MaterializeError

        f = Function("f")
        block = f.add_block("entry")
        with pytest.raises(MaterializeError):
            materialize_expr(f, block, 0, Expr.sym("$k1"))

    def test_fractional_rejected(self):
        from fractions import Fraction
        from repro.ir.function import Function
        from repro.symbolic.expr import Expr
        from repro.transforms.materialize import MaterializeError

        f = Function("f")
        block = f.add_block("entry")
        with pytest.raises(MaterializeError):
            materialize_expr(f, block, 0, Expr.sym("x") * Fraction(1, 2))


class TestStrengthReduce:
    SOURCE = "L1: for i = 0 to n do\n  A[i * 8] = i\nendfor\nreturn 0"

    def reduced(self, source=None):
        p = __import__("repro.pipeline", fromlist=["analyze"]).analyze(source or self.SOURCE)
        loop = p.nest.loop_of_header("L1")
        records = strength_reduce(p.ssa, p.result, loop)
        verify_function(p.ssa, ssa=True)
        return p, records

    def test_multiplication_reduced(self):
        p, records = self.reduced()
        assert len(records) == 1
        muls = [
            i
            for b in p.ssa
            for i in b
            if isinstance(i, BinOp) and i.op is BinaryOp.MUL
        ]
        # the body multiplication is gone; only the latch add remains new
        assert muls == []

    def test_new_phi_in_header(self):
        p, records = self.reduced()
        phis = p.ssa.block("L1").phis()
        assert any(ph.result == records[0].new_phi for ph in phis)

    def test_semantics_preserved(self):
        from repro.pipeline import analyze

        p1 = analyze(self.SOURCE)
        p2, _ = self.reduced()
        equivalent(p1.ssa, p2.ssa, [{"n": k} for k in (0, 1, 5, 17)])

    def test_symbolic_invariant_multiplier(self):
        source = "L1: for i = 0 to n do\n  A[i * c] = i\nendfor\nreturn 0"
        from repro.pipeline import analyze

        p1 = analyze(source)
        p2, records = self.reduced(source)
        assert records
        equivalent(p1.ssa, p2.ssa, [{"n": 5, "c": 3}, {"n": 0, "c": -2}])

    def test_nothing_to_reduce(self):
        p, records = self.reduced("L1: for i = 0 to n do\n  A[i] = i\nendfor\nreturn 0")
        assert records == []


class TestIVSubstitution:
    def test_rewrites_to_closed_form(self):
        from repro.pipeline import analyze

        source = "s = b\nL1: for i = 0 to n do\n  s = s + 4\n  A[s] = i\nendfor\nreturn s"
        p1 = analyze(source)
        p2 = analyze(source)
        loop = p2.nest.loop_of_header("L1")
        rewritten = substitute_induction_variables(p2.ssa, p2.result, loop)
        assert rewritten
        verify_function(p2.ssa, ssa=True)
        equivalent(p1.ssa, p2.ssa, [{"n": k, "b": 3} for k in (0, 2, 9)])

    def test_nested_untouched(self):
        from repro.pipeline import analyze

        source = (
            "s = 0\nL1: for i = 0 to 5 do\n  L2: for j = 0 to 3 do\n    s = s + 1\n  endfor\nendfor\nreturn s"
        )
        p1 = analyze(source)
        p2 = analyze(source)
        loop = p2.nest.loop_of_header("L1")
        substitute_induction_variables(p2.ssa, p2.result, loop)
        verify_function(p2.ssa, ssa=True)
        equivalent(p1.ssa, p2.ssa, [{}])


class TestPeel:
    WRAP = (
        "iml = n\ns = 0\nL9: for i = 1 to n do\n  s = s + A[iml]\n  A[i] = i\n  iml = i\nendfor\nreturn s"
    )

    def test_semantics(self):
        named = compile_source(self.WRAP)
        peeled = clone_function(named)
        peel_first_iteration(peeled, "L9")
        verify_function(peeled)
        arrays = {"A": {(k,): k * 10 for k in range(12)}}
        for n in (0, 1, 2, 7):
            r1 = Interpreter(named).run({"n": n}, {k: dict(v) for k, v in arrays.items()})
            r2 = Interpreter(peeled).run({"n": n}, {k: dict(v) for k, v in arrays.items()})
            assert r1.return_value == r2.return_value
            assert r1.arrays == r2.arrays

    def test_wraparound_becomes_iv(self):
        """The paper's motivation: after peeling, the wrap-around variable
        'is replaced with the appropriate induction variable'."""
        from repro.core.classes import InductionVariable, WrapAround

        named = compile_source(self.WRAP)
        before = analyze_function(clone_function(named))
        iml_before = before.classification(before.ssa_name("iml", "L9"))
        assert isinstance(iml_before, WrapAround)

        peeled = clone_function(named)
        peel_first_iteration(peeled, "L9")
        simplify_loops(peeled)
        after = analyze_function(peeled)
        iml_after = after.classification(after.ssa_name("iml", "L9"))
        assert isinstance(iml_after, InductionVariable)

    def test_requires_named_ir(self):
        from repro.ir.function import IRError
        from repro.pipeline import analyze

        p = analyze(self.WRAP)
        with pytest.raises(IRError, match="named"):
            peel_first_iteration(p.ssa, "L9")

    def test_requires_existing_loop(self):
        from repro.ir.function import IRError

        named = compile_source(self.WRAP)
        with pytest.raises(IRError, match="no loop"):
            peel_first_iteration(named, "nope")


class TestNormalize:
    def test_equivalence_sweep(self):
        named = compile_source(
            "s = 0\nL5: for i = 2 to m by 3 do\n  s = s + i\nendfor\nreturn s"
        )
        normalized = clone_function(named)
        assert normalize_loop(normalized, "L5") is not None
        verify_function(normalized)
        equivalent(named, normalized, [{"m": v} for v in range(-3, 15)])

    def test_downward(self):
        named = compile_source(
            "s = 0\nL5: for i = m downto 1 by -2 do\n  s = s + i\nendfor\nreturn s"
        )
        normalized = clone_function(named)
        assert normalize_loop(normalized, "L5") is not None
        equivalent(named, normalized, [{"m": v} for v in range(-2, 12)])

    def test_analysis_same_after_normalization(self):
        """Section 6.1: the classification is invariant under normalization."""
        named = compile_source(
            "L5: for i = 2 to m by 3 do\n  A[i] = 0\nendfor"
        )
        normalized = clone_function(named)
        normalize_loop(normalized, "L5")
        simplify_loops(normalized)
        p1 = analyze_function(named)
        p2 = analyze_function(normalized)
        iv1 = p1.classification(p1.ssa_name("i", "L5"))
        # after normalization `i` is recomputed in the body; find its class
        recomputed = [
            p2.classification(n)
            for n in p2.ssa_names("i")
            if p2.result.defining_loop(n) is not None
        ]
        assert any(c == iv1 for c in recomputed)

    def test_non_counted_loop_returns_none(self):
        named = compile_source(
            "i = 0\nL1: loop\n  i = i + 1\n  if A[i] > 0 then\n    break\n  endif\nendloop"
        )
        assert normalize_loop(named, "L1") is None


class TestUnroll:
    def test_constant_trip_unrolled(self):
        from repro.transforms import fully_unroll

        named = compile_source(
            "s = 0\nL1: for i = 1 to 5 do\n  s = s + i\n  A[i] = s\nendfor\nreturn s"
        )
        reference = Interpreter(clone_function(named)).run({})
        count = fully_unroll(named, "L1")
        assert count == 5
        result = Interpreter(named).run({})
        assert result.return_value == reference.return_value == 15
        assert result.arrays == reference.arrays
        # 5 peeled copies of the header exist (L1.peel, L1.peel.1, ...)
        peeled_headers = [
            label for label in named.blocks if label.startswith("L1.peel")
        ]
        assert len(peeled_headers) == 5

    def test_mid_exit_loop_unrolls_correctly(self):
        """The Figure 7 shape: increments above the exit run tc+1 times."""
        from repro.transforms import fully_unroll

        source = (
            "k = 0\ni = 1\nL18: loop\n  k = k + 2\n  if i > 4 then\n    break\n  endif\n"
            "  i = i + 1\nendloop\nreturn k"
        )
        named = compile_source(source)
        reference = Interpreter(clone_function(named)).run({})
        count = fully_unroll(named, "L18")
        assert count == 4
        assert Interpreter(named).run({}).return_value == reference.return_value == 10

    def test_symbolic_trip_refused(self):
        from repro.transforms import fully_unroll

        named = compile_source("s = 0\nL1: for i = 1 to n do\n  s = s + 1\nendfor\nreturn s")
        assert fully_unroll(named, "L1") is None
        # untouched
        assert not any(".peel" in label for label in named.blocks)

    def test_above_limit_refused(self):
        from repro.transforms import fully_unroll

        named = compile_source("s = 0\nL1: for i = 1 to 100 do\n  s = s + 1\nendfor\nreturn s")
        assert fully_unroll(named, "L1", max_trips=16) is None

    def test_zero_trip_loop(self):
        from repro.transforms import fully_unroll

        named = compile_source("s = 7\nL1: for i = 5 to 1 do\n  s = 0\nendfor\nreturn s")
        count = fully_unroll(named, "L1")
        assert count == 0
        assert Interpreter(named).run({}).return_value == 7
